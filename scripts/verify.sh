#!/usr/bin/env bash
# Tier-1 verification: offline release build, the full test suite, bench
# smoke runs that exercise the parallel scan end to end (leaving a
# BENCH_parallel.json report at the workspace root), and a profile smoke
# that checks the --profile-json schema and that tracing never changes
# query output bytes (leaving BENCH_profile_smoke.json).
#
# Usage: scripts/verify.sh [--full]
#   --full   run the benchmark at paper scale (>= 50 MB document)
#            instead of the quick smoke size.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES=300000
if [[ "${1:-}" == "--full" ]]; then
    NODES=7000000
fi

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== differential smoke (engine matrix vs oracle, fixed seeds) =="
# A bounded slice of the differential harness: 150 seeded rounds across
# the five paper datasets, every engine configuration checked against
# the spec-direct oracle in crates/oracle. The full loop is the same
# binary with a bigger budget, e.g.:
#   cargo run --release -p blossom-bench --bin diff -- --rounds 1000
DIFF_ROUNDS=150
if [[ "${1:-}" == "--full" ]]; then
    DIFF_ROUNDS=1000
fi
cargo run --release -q -p blossom-bench --bin diff -- \
    --rounds "${DIFF_ROUNDS}" --nodes 160 --out target/diff-fixtures
cargo run --release -q -p blossom-bench --bin diff -- \
    --replay tests/fixtures/diff

echo "== bench smoke (parallel scan, ${NODES} nodes) =="
cargo run --release -q -p blossom-bench --bin parallel -- \
    --dataset d1 --nodes "${NODES}" --threads 4 --runs 3 \
    --out BENCH_parallel.json

echo "== bench smoke (skip-joins + micro) =="
cargo run --release -q -p blossom-bench --bin joins -- \
    --nodes 8000 --runs 1 --out BENCH_joins_smoke.json
cargo run --release -q -p blossom-bench --bin micro -- \
    --nodes 8000 --runs 1 --out BENCH_micro_smoke.json

echo "== profile smoke (query tracing is observational + schema-stable) =="
# Run the same query profiled and unprofiled: the profile must carry
# every version-1 schema key, and profiling must not change a single
# byte of the query result on stdout.
PROFILE_DOC=target/profile-smoke.xml
PROFILE_JSON=BENCH_profile_smoke.json
PROFILE_QUERY='//item[publisher]/title'
cargo run --release -q --bin blossom -- gen d3 "${PROFILE_DOC}" --nodes 20000
cargo run --release -q --bin blossom -- query "${PROFILE_DOC}" "${PROFILE_QUERY}" \
    > target/profile-smoke-plain.out
cargo run --release -q --bin blossom -- query "${PROFILE_DOC}" "${PROFILE_QUERY}" \
    --profile --profile-json "${PROFILE_JSON}" \
    > target/profile-smoke-traced.out 2>/dev/null
for key in blossom_profile query strategy fallbacks operators totals \
           phases_us cache threads skip_joins counters_enabled; do
    grep -q "\"${key}\"" "${PROFILE_JSON}" \
        || { echo "profile JSON missing key: ${key}"; exit 1; }
done
cmp target/profile-smoke-plain.out target/profile-smoke-traced.out \
    || { echo "profiling changed the query output bytes"; exit 1; }
echo "verify: OK"
