#!/usr/bin/env bash
# Tier-1 verification: offline release build, the full test suite, and a
# bench smoke run that exercises the parallel scan end to end and leaves
# a BENCH_parallel.json report at the workspace root.
#
# Usage: scripts/verify.sh [--full]
#   --full   run the benchmark at paper scale (>= 50 MB document)
#            instead of the quick smoke size.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES=300000
if [[ "${1:-}" == "--full" ]]; then
    NODES=7000000
fi

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== bench smoke (parallel scan, ${NODES} nodes) =="
cargo run --release -q -p blossom-bench --bin parallel -- \
    --dataset d1 --nodes "${NODES}" --threads 4 --runs 3 \
    --out BENCH_parallel.json

echo "== bench smoke (skip-joins + micro) =="
cargo run --release -q -p blossom-bench --bin joins -- \
    --nodes 8000 --runs 1 --out BENCH_joins_smoke.json
cargo run --release -q -p blossom-bench --bin micro -- \
    --nodes 8000 --runs 1 --out BENCH_micro_smoke.json
echo "verify: OK"
