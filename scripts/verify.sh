#!/usr/bin/env bash
# Tier-1 verification: offline release build, the full test suite, bench
# smoke runs that exercise the parallel scan end to end (leaving a
# BENCH_parallel.json report at the workspace root), a server smoke that
# load-tests blossomd in-process and as a real child process (leaving
# BENCH_server.json), an observability smoke that checks the structured
# slow-query log and the Prometheus exposition (leaving the scrape in
# METRICS_scrape.txt), a storage smoke that checks BLM2 snapshots,
# zero-copy opens and the over-capacity catalog sweep (leaving
# BENCH_storage_smoke.json), and a profile smoke that checks the
# --profile-json schema and that tracing never changes query output
# bytes (leaving BENCH_profile_smoke.json).
#
# Usage: scripts/verify.sh [--full]
#   --full   run the benchmark at paper scale (>= 50 MB document)
#            instead of the quick smoke size.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES=300000
if [[ "${1:-}" == "--full" ]]; then
    NODES=7000000
fi

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== differential smoke (engine matrix vs oracle, fixed seeds) =="
# A bounded slice of the differential harness: 150 seeded rounds across
# the five paper datasets, every engine configuration checked against
# the spec-direct oracle in crates/oracle. The full loop is the same
# binary with a bigger budget, e.g.:
#   cargo run --release -p blossom-bench --bin diff -- --rounds 1000
DIFF_ROUNDS=150
if [[ "${1:-}" == "--full" ]]; then
    DIFF_ROUNDS=1000
fi
cargo run --release -q -p blossom-bench --bin diff -- \
    --rounds "${DIFF_ROUNDS}" --nodes 160 --out target/diff-fixtures
cargo run --release -q -p blossom-bench --bin diff -- \
    --replay tests/fixtures/diff --server

echo "== mutation differential smoke (incremental update path vs rebuild) =="
# Every round also applies a seeded mutation script through the
# incremental update path (arena splice + TagIndex::splice), checks the
# snapshot byte-for-byte against a rebuild-from-scratch reference, then
# runs the full configuration matrix on the maintained parts. The long
# sweep is the CI `mutation-fuzz` job (1000 rounds).
cargo run --release -q -p blossom-bench --bin diff -- \
    --rounds "${DIFF_ROUNDS}" --nodes 120 --mutations 5 \
    --out target/mutation-fixtures

echo "== storage smoke (BLM2 snapshots, owned-vs-mapped differential) =="
# Every differential round additionally encodes the document to a BLM2
# snapshot, reopens it zero-copy, and runs the whole configuration
# matrix once over the owned arena and once over the mapped columns —
# the answers must be byte-identical.
cargo run --release -q -p blossom-bench --bin diff -- \
    --rounds 40 --nodes 160 --storage --out target/storage-fixtures

# Snapshot CLI round-trip: XML → BLM2 (with the succinct section and
# the per-section stats report) → XML again; queries over all three
# forms must produce the same bytes, and the BLM2 must open mapped.
SNAP_DOC=target/snapshot-smoke.xml
SNAP_BLM2=target/snapshot-smoke.blm2
SNAP_BACK=target/snapshot-smoke-back.xml
cargo run --release -q --bin blossom -- gen d1 "${SNAP_DOC}" --nodes 6000
cargo run --release -q --bin blossom -- snapshot "${SNAP_DOC}" \
    --output "${SNAP_BLM2}" --succinct --stats > target/snapshot-stats.out
grep -q 'format blm2' target/snapshot-stats.out \
    || { echo "snapshot CLI did not report the blm2 format"; exit 1; }
cargo run --release -q --bin blossom -- snapshot "${SNAP_BLM2}" \
    --output "${SNAP_BACK}" --format xml
cargo run --release -q --bin blossom -- query "${SNAP_DOC}" '//item[//bold]' \
    > target/snapshot-xml.out
cargo run --release -q --bin blossom -- query "${SNAP_BLM2}" '//item[//bold]' \
    > target/snapshot-blm2.out
cargo run --release -q --bin blossom -- query "${SNAP_BACK}" '//item[//bold]' \
    > target/snapshot-back.out
cmp target/snapshot-xml.out target/snapshot-blm2.out \
    || { echo "mapped BLM2 query differs from the XML source"; exit 1; }
cmp target/snapshot-xml.out target/snapshot-back.out \
    || { echo "BLM2 → XML conversion changed query results"; exit 1; }

# A quick pass of the storage bench (cold-load, owned-vs-mapped
# latency, and the over-capacity catalog sweep with spill + remap
# counters); the full-size run is the CI storage job.
cargo run --release -q -p blossom-bench --bin storage -- \
    --nodes 8000 --runs 1 --docs 4 --out BENCH_storage_smoke.json
for key in cold_load map_blm2_min_s map_speedup_vs_parse query_latency \
           catalog_sweep resident_bytes spilled_docs remaps; do
    grep -q "\"${key}\"" BENCH_storage_smoke.json \
        || { echo "BENCH_storage_smoke.json missing key: ${key}"; exit 1; }
done

echo "== server smoke (blossomd: load, concurrent queries, open-loop, drain) =="
# In-process run of the load harness, both phases: four connections
# sweep the Table-3 query matrix closed-loop with every response
# byte-compared against direct in-process evaluation, then the
# open-loop generator drives 256 keep-alive connections on a fixed
# arrival schedule at three offered rates against both serving models
# (event-loop vs thread-per-request). Writes BENCH_server.json.
cargo run --release -q -p blossom-bench --bin serve_load -- \
    --connections 4 --rounds 2 --nodes 4000 \
    --open-connections 256 --rates 500,2000,8000 --open-seconds 1 \
    --out BENCH_server.json
for key in closed_loop throughput_rps p50 p95 p99 response_mismatches \
           open_loop offered_rps achieved_rps rejected_503 \
           latency_from_arrival_us service_us; do
    grep -q "\"${key}\"" BENCH_server.json \
        || { echo "BENCH_server.json missing key: ${key}"; exit 1; }
done
for model in event-loop thread-per-request; do
    grep -q "\"io_model\": \"${model}\"" BENCH_server.json \
        || { echo "BENCH_server.json missing open-loop model: ${model}"; exit 1; }
done

# The same harness against a real `blossom serve` process: ephemeral
# port, a preloaded document, concurrent queries (the harness also sends
# one malformed request and one profile=1 request), one raw-HTTP query
# byte-compared with the CLI, then a graceful POST /shutdown drain.
SERVE_DOC=target/serve-smoke.xml
SERVE_LOG=target/serve-smoke.log
ACCESS_LOG=target/serve-access.log
rm -f "${ACCESS_LOG}"
cargo run --release -q --bin blossom -- gen d3 "${SERVE_DOC}" --nodes 20000
# Preloaded under a name the load harness will not overwrite (it loads
# its own generated documents as d1..d5). The slow-query log is armed so
# the observability smoke below can check its records; logging must not
# change a single response byte (the cmp below would catch it).
./target/release/blossom serve --addr 127.0.0.1:0 --workers 2 \
    --load smoke="${SERVE_DOC}" \
    --slow-ms 50 --access-log "${ACCESS_LOG}" > "${SERVE_LOG}" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 100); do
    ADDR=$(sed -n 's/^blossomd listening on //p' "${SERVE_LOG}")
    [[ -n "${ADDR}" ]] && break
    sleep 0.1
done
[[ -n "${ADDR}" ]] \
    || { echo "blossom serve never reported its address"; cat "${SERVE_LOG}"; exit 1; }
HOST=${ADDR%:*}
PORT=${ADDR##*:}
cargo run --release -q -p blossom-bench --bin serve_load -- \
    --addr "${ADDR}" --connections 4 --rounds 1 --nodes 2000 --no-open \
    --out target/BENCH_server_external.json

exec 3<>"/dev/tcp/${HOST}/${PORT}"
printf 'GET /query?doc=smoke&q=//item/title HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' >&3
HTTP_RESPONSE=$(cat <&3)
exec 3<&- 3>&-
printf '%s\n' "${HTTP_RESPONSE}" | tr -d '\r' | sed '1,/^$/d' > target/serve-smoke-http.out
./target/release/blossom query "${SERVE_DOC}" '//item/title' > target/serve-smoke-cli.out
cmp target/serve-smoke-cli.out target/serve-smoke-http.out \
    || { echo "server response differs from CLI output"; exit 1; }

echo "== update smoke (CLI update vs server incremental maintenance) =="
# The same mutation script travels two roads: `blossom update` writes
# the spliced document to disk (queried after a from-scratch reparse =
# the rebuild reference), while POST /update mutates the live server
# snapshot through the incremental index-maintenance path. Both answers
# must be byte-identical.
UPDATE_SCRIPT=$'insert 1 0 <item><title>zz-update-smoke</title></item>\ndelete 1.2'
UPDATED_DOC=target/update-smoke-updated.xml
cargo run --release -q --bin blossom -- update "${SERVE_DOC}" \
    --apply 'insert 1 0 <item><title>zz-update-smoke</title></item>' \
    --apply 'delete 1.2' \
    --output "${UPDATED_DOC}"
cargo run --release -q --bin blossom -- query "${UPDATED_DOC}" '//item/title' \
    > target/update-smoke-rebuild.out
grep -q 'zz-update-smoke' target/update-smoke-rebuild.out \
    || { echo "CLI update lost the inserted subtree"; exit 1; }

exec 3<>"/dev/tcp/${HOST}/${PORT}"
printf 'POST /update?doc=smoke HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s' \
    "${#UPDATE_SCRIPT}" "${UPDATE_SCRIPT}" >&3
UPDATE_RESPONSE=$(cat <&3)
exec 3<&- 3>&-
printf '%s\n' "${UPDATE_RESPONSE}" | grep -q '"mutations": 2' \
    || { echo "POST /update did not apply the script: ${UPDATE_RESPONSE}"; exit 1; }

exec 3<>"/dev/tcp/${HOST}/${PORT}"
printf 'GET /query?doc=smoke&q=//item/title HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' >&3
HTTP_RESPONSE=$(cat <&3)
exec 3<&- 3>&-
printf '%s\n' "${HTTP_RESPONSE}" | tr -d '\r' | sed '1,/^$/d' > target/update-smoke-server.out
cmp target/update-smoke-rebuild.out target/update-smoke-server.out \
    || { echo "incrementally maintained snapshot differs from rebuild"; exit 1; }

echo "== observability smoke (slow-query log, request ids, /metrics scrape) =="
# A three-way FLWOR Cartesian product cannot finish inside 120ms on the
# 20k-node smoke document, so the request burns its whole deadline
# budget and aborts: wall ~120ms >= --slow-ms 50, which must produce a
# structured slow-query record with outcome "deadline" and per-stage
# durations (DESIGN.md §14).
SLOW_Q='for%20%24x%20in%20//item%20for%20%24y%20in%20//item%20for%20%24z%20in%20//item%20return%20%24x'
exec 3<>"/dev/tcp/${HOST}/${PORT}"
printf 'GET /query?doc=smoke&q=%s&deadline_ms=120 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' \
    "${SLOW_Q}" >&3
SLOW_RESPONSE=$(cat <&3)
exec 3<&- 3>&-
# (status-line checks use parameter expansion, not `| head -1`: with
# pipefail a large response makes printf die of SIGPIPE when head
# exits early, failing the pipeline even though the grep matched.)
[[ "${SLOW_RESPONSE%%[$'\r\n']*}" == *' 503 '* ]] \
    || { echo "Cartesian query under deadline_ms=120 did not 503"; exit 1; }
printf '%s\n' "${SLOW_RESPONSE}" | tr -d '\r' | grep -qi '^x-request-id: [0-9]' \
    || { echo "503 response missing X-Request-Id header"; exit 1; }
# The record is written when the response bytes drain; allow a beat.
for _ in $(seq 50); do
    grep -q '"outcome": "deadline"' "${ACCESS_LOG}" 2>/dev/null && break
    sleep 0.1
done
SLOW_RECORD=$(grep -m1 '"outcome": "deadline"' "${ACCESS_LOG}")
[[ -n "${SLOW_RECORD}" ]] \
    || { echo "no deadline record in ${ACCESS_LOG}"; cat "${ACCESS_LOG}" 2>/dev/null; exit 1; }
for field in '"ts_ms": ' '"id": ' '"endpoint": "/query"' '"status": 503' \
             '"slow": true' '"wall_us": ' '"stages_us": {"read": ' \
             '"execute": ' '"deadline_budget_ms": 120' '"doc": "smoke"' \
             '"query": '; do
    grep -qF -- "${field}" <<< "${SLOW_RECORD}" \
        || { echo "slow-log record missing ${field}: ${SLOW_RECORD}"; exit 1; }
done

# Scrape the Prometheus exposition and keep it as a CI artifact next to
# BENCH_server.json.
exec 3<>"/dev/tcp/${HOST}/${PORT}"
printf 'GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' >&3
METRICS_RESPONSE=$(cat <&3)
exec 3<&- 3>&-
[[ "${METRICS_RESPONSE%%[$'\r\n']*}" == *' 200 '* ]] \
    || { echo "GET /metrics did not 200"; exit 1; }
printf '%s\n' "${METRICS_RESPONSE}" | tr -d '\r' | sed '1,/^$/d' > METRICS_scrape.txt
for series in '# TYPE blossomd_requests_total counter' \
              '# TYPE blossomd_request_duration_seconds histogram' \
              'blossomd_request_stage_duration_seconds_bucket' \
              'blossomd_deadline_aborts_total' \
              'blossomd_catalog_documents'; do
    grep -qF -- "${series}" METRICS_scrape.txt \
        || { echo "METRICS_scrape.txt missing ${series}"; exit 1; }
done

exec 3<>"/dev/tcp/${HOST}/${PORT}"
printf 'POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' >&3
cat <&3 > /dev/null
exec 3<&- 3>&-
for _ in $(seq 100); do
    kill -0 "${SERVE_PID}" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "${SERVE_PID}" 2>/dev/null; then
    kill -9 "${SERVE_PID}"
    echo "blossom serve did not drain after POST /shutdown"
    exit 1
fi
wait "${SERVE_PID}" || { echo "blossom serve exited nonzero"; cat "${SERVE_LOG}"; exit 1; }
grep -q "drained and stopped" "${SERVE_LOG}" \
    || { echo "blossom serve missing drain message"; cat "${SERVE_LOG}"; exit 1; }

echo "== bench smoke (parallel scan, ${NODES} nodes) =="
cargo run --release -q -p blossom-bench --bin parallel -- \
    --dataset d1 --nodes "${NODES}" --threads 4 --runs 3 \
    --out BENCH_parallel.json

echo "== bench smoke (skip-joins + micro) =="
cargo run --release -q -p blossom-bench --bin joins -- \
    --nodes 8000 --runs 1 --out BENCH_joins_smoke.json
cargo run --release -q -p blossom-bench --bin micro -- \
    --nodes 8000 --runs 1 --out BENCH_micro_smoke.json

echo "== profile smoke (query tracing is observational + schema-stable) =="
# Run the same query profiled and unprofiled: the profile must carry
# every version-1 schema key, and profiling must not change a single
# byte of the query result on stdout.
PROFILE_DOC=target/profile-smoke.xml
PROFILE_JSON=BENCH_profile_smoke.json
PROFILE_QUERY='//item[publisher]/title'
cargo run --release -q --bin blossom -- gen d3 "${PROFILE_DOC}" --nodes 20000
cargo run --release -q --bin blossom -- query "${PROFILE_DOC}" "${PROFILE_QUERY}" \
    > target/profile-smoke-plain.out
cargo run --release -q --bin blossom -- query "${PROFILE_DOC}" "${PROFILE_QUERY}" \
    --profile --profile-json "${PROFILE_JSON}" \
    > target/profile-smoke-traced.out 2>/dev/null
for key in blossom_profile query strategy fallbacks operators totals \
           phases_us cache threads skip_joins counters_enabled; do
    grep -q "\"${key}\"" "${PROFILE_JSON}" \
        || { echo "profile JSON missing key: ${key}"; exit 1; }
done
cmp target/profile-smoke-plain.out target/profile-smoke-traced.out \
    || { echo "profiling changed the query output bytes"; exit 1; }

echo "== planner smoke (estimates in the profile, re-plan round-trip) =="
# The cost-based planner's estimate records (DESIGN.md §11) must be in
# the profile JSON: per-component strategy, estimated cardinalities and
# the estimated-vs-actual comparison.
for key in estimates est_anchors est_output est_cost actual_output replanned; do
    grep -q "\"${key}\"" "${PROFILE_JSON}" \
        || { echo "profile JSON missing estimate key: ${key}"; exit 1; }
done

# A document whose decoy tags evict the rare anchor `x` from the
# tracked frequent-tag set: the cost model underestimates `//x//c`, the
# adaptive work budget trips mid-query, and the engine re-plans onto
# the runner-up strategy. The profile must show both the re-planned
# estimate row and the recorded re-plan fallback event.
REPLAN_DOC=target/replan-smoke.xml
REPLAN_JSON=target/replan-profile.json
{
    printf '<r>'
    for i in $(seq 0 32); do
        for _ in $(seq 6); do printf '<d%d/>' "$i"; done
    done
    for _ in $(seq 5); do
        printf '<x>'
        for _ in $(seq 3000); do printf '<c/>'; done
        printf '</x>'
    done
    printf '</r>'
} > "${REPLAN_DOC}"
cargo run --release -q --bin blossom -- query "${REPLAN_DOC}" '//x//c' \
    --profile-json "${REPLAN_JSON}" > /dev/null
grep -q '"replanned": true' "${REPLAN_JSON}" \
    || { echo "re-plan did not fire on the underestimate document"; exit 1; }
grep -q 're-plan' "${REPLAN_JSON}" \
    || { echo "re-plan fallback event missing from the profile"; exit 1; }

# The same case must round-trip the differential harness: its traced
# third run only passes when the mid-query strategy switch is explained
# by a recorded fallback event and the result stays byte-identical
# across every engine configuration.
REPLAN_FIXTURE_DIR=target/replan-fixture
mkdir -p "${REPLAN_FIXTURE_DIR}"
{
    printf '# cost-model underestimate: decoy tags evict `x` from the tracked\n'
    printf '# frequent-tag set, the adaptive budget trips and the component\n'
    printf '# re-plans mid-query; the traced third run must account for it\n'
    printf 'query: //x//c\n'
    printf 'xml: '
    cat "${REPLAN_DOC}"
    printf '\n'
} > "${REPLAN_FIXTURE_DIR}/underestimate_replan.txt"
cargo run --release -q -p blossom-bench --bin diff -- \
    --replay "${REPLAN_FIXTURE_DIR}"
echo "verify: OK"
