//! Parallel-evaluation determinism: for the full Table 3 workload, the
//! partitioned NoK scan and the parallel FLWOR pipeline must produce
//! results byte-identical to sequential evaluation at every thread
//! count. This is the contract DESIGN.md's "Threading model" section
//! promises: thread count is a performance knob, never a semantics knob.

use blossom_bench::queries;
use blossomtree::core::{Engine, EngineOptions, Strategy};
use blossomtree::xml::writer;
use blossomtree::xmlgen::{generate, Dataset};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn engines(ds: Dataset) -> Vec<(usize, Engine)> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            (
                threads,
                Engine::with_options(
                    generate(ds, 12_000, 2024),
                    EngineOptions { threads, ..EngineOptions::default() },
                ),
            )
        })
        .collect()
}

/// Every Table 3 path query serializes identically at 1/2/4/8 threads,
/// under both strategies that route through the parallel root scan.
#[test]
fn table3_paths_are_thread_count_invariant() {
    for ds in Dataset::all() {
        let engines = engines(ds);
        for q in queries(ds) {
            for strategy in [
                Strategy::BoundedNestedLoop,
                Strategy::NaiveNestedLoop,
                Strategy::Auto,
            ] {
                let mut baseline: Option<String> = None;
                for (threads, engine) in &engines {
                    let result = engine
                        .eval_query_str(q.path, strategy)
                        .unwrap_or_else(|e| {
                            panic!("{} {} {strategy} threads {threads}: {e}", ds.name(), q.id)
                        });
                    let text = writer::to_string(&result);
                    match &baseline {
                        None => baseline = Some(text),
                        Some(expected) => assert_eq!(
                            &text,
                            expected,
                            "{} {} ({}) {strategy} diverged at {threads} threads",
                            ds.name(),
                            q.id,
                            q.path
                        ),
                    }
                }
            }
        }
    }
}

/// FLWOR queries — parallel tuple enumeration plus parallel fragment
/// construction — serialize identically at every thread count.
#[test]
fn flwor_queries_are_thread_count_invariant() {
    // Per dataset: a FLWOR over a frequent tag of that dataset's own
    // vocabulary, exercising let-bindings, where, order by, and element
    // construction (the parallel construction path).
    let workloads: [(Dataset, &str); 3] = [
        (
            Dataset::D1Recursive,
            "for $x in //c2 let $b := $x/b1 return <hit>{$b}</hit>",
        ),
        (
            Dataset::D2Address,
            "for $a in //address order by $a/zip_code \
             return <addr>{$a/zip_code}</addr>",
        ),
        (
            Dataset::D5Dblp,
            "for $p in //phdthesis return <t>{$p/author}</t>",
        ),
    ];
    for (ds, query) in workloads {
        let mut baseline: Option<String> = None;
        for (threads, engine) in engines(ds) {
            let result = engine
                .eval_query_str(query, Strategy::Auto)
                .unwrap_or_else(|e| panic!("{} threads {threads}: {e}", ds.name()));
            let text = writer::to_string(&result);
            match &baseline {
                None => {
                    // The workload must actually produce output, or the
                    // equivalence check is vacuous.
                    assert!(text.len() > "<result></result>".len(), "{}: {text}", ds.name());
                    baseline = Some(text);
                }
                Some(expected) => assert_eq!(
                    &text,
                    expected,
                    "{} FLWOR diverged at {threads} threads",
                    ds.name()
                ),
            }
        }
    }
}

/// The paper's Example 1 self-join reproduces Example 2's output at
/// every thread count.
#[test]
fn example1_is_thread_count_invariant() {
    let bib = r#"<bib>
        <book><title>Maximum Security</title></book>
        <book><title>The Art of Computer Programming</title>
              <author><last>Knuth</last><first>Donald</first></author></book>
        <book><title>Terrorist Hunter</title></book>
        <book><title>TeX Book</title>
              <author><last>Knuth</last><first>Donald</first></author></book>
    </bib>"#;
    let query = r#"<bib>{
        for $book1 in doc("bib.xml")//book,
            $book2 in doc("bib.xml")//book
        let $aut1 := $book1/author
        let $aut2 := $book2/author
        where $book1 << $book2
          and not($book1/title = $book2/title)
          and deep-equal($aut1, $aut2)
        return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
    }</bib>"#;
    let mut baseline: Option<String> = None;
    for threads in THREAD_COUNTS {
        let engine = Engine::with_options(
            blossomtree::xml::Document::parse_str(bib).unwrap(),
            EngineOptions { threads, ..EngineOptions::default() },
        );
        let text =
            writer::to_string(&engine.eval_query_str(query, Strategy::Auto).unwrap());
        match &baseline {
            None => {
                assert!(text.contains("book-pair"), "{text}");
                baseline = Some(text);
            }
            Some(expected) => {
                assert_eq!(&text, expected, "diverged at {threads} threads");
            }
        }
    }
}
