//! Bounded mutation-differential smoke test: a fixed-seed slice of the
//! mutation fuzzer (`cargo run -p blossom-bench --bin diff -- --mutations N`),
//! small enough for every CI push.
//!
//! The round loop is byte-for-byte the binary's seed schedule, so any
//! failure here reproduces (and auto-shrinks to a fixture) with
//! `cargo run --release -p blossom-bench --bin diff -- --seed <base> --nodes <n> --mutations 6`.

use blossom_bench::diff::run_mutation_case;
use blossom_xmlgen::{generate, random_mutations, random_query_full, Dataset};

const DATASETS: [Dataset; 5] = [
    Dataset::D1Recursive,
    Dataset::D2Address,
    Dataset::D3Catalog,
    Dataset::D4Treebank,
    Dataset::D5Dblp,
];

/// Run `rounds` rounds of the mutation-fuzz schedule from `base_seed`.
fn sweep(base_seed: u64, nodes: usize, rounds: u64) {
    let mut agreed = 0usize;
    let mut failures = Vec::new();
    for round in 0..rounds {
        let dataset = DATASETS[(round % DATASETS.len() as u64) as usize];
        let doc_seed = base_seed
            .wrapping_add(round)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let doc = generate(dataset, nodes, doc_seed);
        let xml = blossom_xml::writer::to_string(&doc);
        let query = random_query_full(&doc, doc_seed ^ 0xD1FF);
        let script = random_mutations(&doc, 6, doc_seed ^ 0x5EED)
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let result = run_mutation_case(&xml, &script, &query);
        agreed += result.agreed;
        for m in &result.mismatches {
            failures.push(format!(
                "seed {base_seed:#x} round {round} ({dataset:?}): {:?} disagreed\n  query: {query}\n  script: {}\n  engine: {}\n  oracle: {}",
                m.config,
                script.lines().collect::<Vec<_>>().join(" ; "),
                m.engine,
                m.oracle
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    // Each passing round contributes at least the apply agreement, and
    // most also evaluate the full matrix; a collapse to bare apply
    // agreements would mean the matrix stopped evaluating.
    assert!(
        agreed >= 2 * rounds as usize,
        "only {agreed} agreements across {rounds} rounds — harness degenerated"
    );
}

#[test]
fn smoke_default_seed() {
    sweep(0xB10550, 64, 100);
}

#[test]
fn smoke_alternate_seed() {
    sweep(0xDEC0DE, 64, 100);
}
