//! Bounded differential smoke test: a fixed-seed slice of the full
//! harness (`crates/bench/src/bin/diff.rs`), small enough to run inside
//! `cargo test` on every CI push.
//!
//! The round loop below is byte-for-byte the seed schedule of the
//! binary, so any failure here reproduces with
//! `cargo run --release -p blossom-bench --bin diff -- --seed <base> --rounds <n>`
//! (which also shrinks the case to a minimal fixture). The full sweep —
//! `--rounds 1000` or more — stays a manual / nightly job.

use blossom_bench::diff::run_case;
use blossom_xmlgen::{generate, random_query_full, Dataset};

const DATASETS: [Dataset; 5] = [
    Dataset::D1Recursive,
    Dataset::D2Address,
    Dataset::D3Catalog,
    Dataset::D4Treebank,
    Dataset::D5Dblp,
];

/// Run `rounds` rounds of the harness schedule starting from `base_seed`.
fn sweep(base_seed: u64, nodes: usize, rounds: u64) {
    let mut agreed = 0usize;
    let mut failures = Vec::new();
    for round in 0..rounds {
        let dataset = DATASETS[(round % DATASETS.len() as u64) as usize];
        let doc_seed = base_seed
            .wrapping_add(round)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let doc = generate(dataset, nodes, doc_seed);
        let xml = blossom_xml::writer::to_string(&doc);
        let query = random_query_full(&doc, doc_seed ^ 0xD1FF);
        let result = run_case(&xml, &query);
        agreed += result.agreed;
        for m in &result.mismatches {
            failures.push(format!(
                "seed {base_seed:#x} round {round} ({dataset:?}): {:?} disagreed\n  query: {query}\n  engine: {}\n  oracle: {}",
                m.config, m.engine, m.oracle
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    // Guard against the matrix silently skipping everything: across a
    // sweep this size, plenty of configurations must actually evaluate.
    assert!(
        agreed >= rounds as usize,
        "only {agreed} config agreements across {rounds} rounds — harness degenerated"
    );
}

/// The default harness seed, small documents (debug builds are ~10x
/// slower than the release binary, so the doc size is trimmed).
#[test]
fn smoke_default_seed() {
    sweep(0xB10550, 64, 250);
}

/// A second, disjoint seed stream so the smoke isn't a single trajectory.
#[test]
fn smoke_alternate_seed() {
    sweep(0xDEC0DE, 64, 250);
}
