//! Bounded owned-vs-mapped differential smoke test: every round encodes
//! a generated document into a BLM2 snapshot, reopens it over mapped
//! column windows, and requires byte-identical serialization and query
//! results across the whole engine configuration matrix
//! (`blossom_bench::diff::config_matrix`, 25 configurations).
//!
//! The seed schedule matches `tests/differential.rs`, so any failure
//! reproduces with
//! `cargo run --release -p blossom-bench --bin diff -- --storage --seed <base> --rounds <n>`.

use blossom_bench::diff::run_storage_case;
use blossom_xmlgen::{generate, random_query_full, Dataset};

const DATASETS: [Dataset; 5] = [
    Dataset::D1Recursive,
    Dataset::D2Address,
    Dataset::D3Catalog,
    Dataset::D4Treebank,
    Dataset::D5Dblp,
];

/// Run `rounds` rounds of the owned-vs-mapped schedule from `base_seed`.
fn sweep(base_seed: u64, nodes: usize, rounds: u64) {
    let mut agreed = 0usize;
    let mut failures = Vec::new();
    for round in 0..rounds {
        let dataset = DATASETS[(round % DATASETS.len() as u64) as usize];
        let doc_seed = base_seed
            .wrapping_add(round)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let doc = generate(dataset, nodes, doc_seed);
        let xml = blossom_xml::writer::to_string(&doc);
        let query = random_query_full(&doc, doc_seed ^ 0xD1FF);
        let result = run_storage_case(&xml, &query);
        agreed += result.agreed;
        for m in &result.mismatches {
            failures.push(format!(
                "seed {base_seed:#x} round {round} ({dataset:?}): {:?} diverged\n  query: {query}\n  mapped: {}\n  owned:  {}",
                m.config, m.engine, m.oracle
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    // Each passing round contributes the serialization agreement plus
    // every accepting configuration; a degenerate harness (everything
    // skipped) fails here rather than silently passing.
    assert!(
        agreed >= 2 * rounds as usize,
        "only {agreed} agreements across {rounds} rounds — harness degenerated"
    );
}

/// Same base seed as the engine-vs-oracle smoke, disjoint concern.
#[test]
fn smoke_owned_vs_mapped_default_seed() {
    sweep(0xB10550, 64, 100);
}

/// A second, disjoint seed stream with larger documents so multi-word
/// posting lists and text blobs cross section boundaries.
#[test]
fn smoke_owned_vs_mapped_larger_documents() {
    sweep(0x5704A6E, 256, 25);
}
