//! Skip-join equivalence: every structural operator must return exactly
//! the same answer with posting-list galloping enabled and disabled, on
//! the Table 3 query set over all five generated datasets. The skips are
//! a pure access-path optimization — any divergence here is a bug in a
//! skip-safety argument, not a tuning regression.

use blossom_bench::queries;
use blossomtree::core::join::structural::{stack_tree_join_postings, StructRel};
use blossomtree::core::{Engine, EngineOptions, Strategy};
use blossomtree::xml::TagIndex;
use blossomtree::xmlgen::{generate, Dataset};

const NODES: usize = 9_000;
const SEED: u64 = 77;

fn engines(ds: Dataset) -> (Engine, Engine) {
    let with = Engine::with_options(generate(ds, NODES, SEED), EngineOptions::default());
    let without = Engine::with_options(
        generate(ds, NODES, SEED),
        EngineOptions { skip_joins: false, ..EngineOptions::default() },
    );
    (with, without)
}

/// TwigStack, PathStack, the pipelined //-join and both nested-loop
/// operators, driven through the engine with `skip_joins` toggled.
#[test]
fn engine_operators_agree_with_and_without_skipping() {
    for ds in Dataset::all() {
        let (skip, scan) = engines(ds);
        for q in queries(ds) {
            for strategy in [
                Strategy::TwigStack,
                Strategy::PathStack,
                Strategy::Pipelined,
                Strategy::BoundedNestedLoop,
                Strategy::NaiveNestedLoop,
            ] {
                let with = skip.eval_path_str(q.path, strategy);
                let without = scan.eval_path_str(q.path, strategy);
                match (with, without) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "{} {} {strategy}", ds.name(), q.id)
                    }
                    (Err(_), Err(_)) => {} // inapplicable either way
                    (a, b) => panic!(
                        "{} {} {strategy}: applicability diverged ({a:?} vs {b:?})",
                        ds.name(),
                        q.id
                    ),
                }
            }
        }
    }
}

/// The binary structural join, on every ordered tag pair a query
/// mentions, against the slice-based baseline.
#[test]
fn structural_join_agrees_with_and_without_skipping() {
    for ds in Dataset::all() {
        let doc = generate(ds, NODES, SEED);
        let index = TagIndex::build(&doc);
        for q in queries(ds) {
            let tags: Vec<&str> = q
                .path
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .filter(|s| !s.is_empty())
                .collect();
            for pair in tags.windows(2) {
                let (Some(a), Some(b)) = (doc.sym(pair[0]), doc.sym(pair[1])) else {
                    continue;
                };
                let (pa, pb) = (index.postings(a), index.postings(b));
                for rel in [StructRel::AncestorDescendant, StructRel::ParentChild] {
                    let with = stack_tree_join_postings(&doc, pa, pb, rel, true);
                    let without = stack_tree_join_postings(&doc, pa, pb, rel, false);
                    assert_eq!(
                        with,
                        without,
                        "{} {} {}//{} {rel:?}",
                        ds.name(),
                        q.id,
                        pair[0],
                        pair[1]
                    );
                }
            }
        }
    }
}

/// Deterministic cross-check of the gallop primitives against linear
/// scans, on the generated datasets' real posting lists (the unit tests
/// in `blossom_xml` cover hand-built documents; this covers the shapes
/// `xmlgen` actually produces, including multi-block recursive lists).
#[test]
fn gallops_agree_with_linear_scans_on_generated_documents() {
    for ds in [Dataset::D1Recursive, Dataset::D2Address] {
        let doc = generate(ds, 4_000, SEED);
        let index = TagIndex::build(&doc);
        let max_id = doc.len() as u32 + 1;
        for sym in (0..doc.symbols().len() as u32).map(blossomtree::xml::Sym) {
            let list = index.postings(sym);
            if list.is_empty() {
                continue;
            }
            let froms = [0, 1, list.len() / 2, list.len().saturating_sub(1), list.len()];
            for from in froms {
                for target in (0..max_id).step_by(83) {
                    let by_start = (from..list.len())
                        .find(|&i| list.start(i).0 >= target)
                        .unwrap_or(list.len());
                    assert_eq!(list.skip_to(from, target), by_start);
                    let by_end = (from..list.len())
                        .find(|&i| list.end(i) >= target)
                        .unwrap_or(list.len());
                    assert_eq!(list.skip_to_end(from, target), by_end);
                }
            }
            // Range probes: galloped == linear for a lattice of bounds.
            for after in (0..max_id).step_by(131) {
                for upto in (0..max_id).step_by(197) {
                    assert_eq!(
                        index.stream_in_range(
                            sym,
                            blossomtree::xml::NodeId(after),
                            blossomtree::xml::NodeId(upto)
                        ),
                        index.stream_in_range_linear(
                            sym,
                            blossomtree::xml::NodeId(after),
                            blossomtree::xml::NodeId(upto)
                        ),
                        "after={after} upto={upto}"
                    );
                }
            }
        }
    }
}
