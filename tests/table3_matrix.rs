//! End-to-end correctness over the full Table 3 workload: every
//! (dataset, query) cell of the paper's evaluation returns identical
//! answers under every applicable strategy, at test scale.

use blossom_bench::queries;
use blossomtree::core::{Engine, Strategy};
use blossomtree::xmlgen::{generate, Dataset};

#[test]
fn all_thirty_cells_agree_across_strategies() {
    for ds in Dataset::all() {
        let engine = Engine::new(generate(ds, 12_000, 2024));
        for q in queries(ds) {
            let expected = engine
                .eval_path_str(q.path, Strategy::Navigational)
                .unwrap_or_else(|e| panic!("{} {}: {e}", ds.name(), q.id));
            let mut strategies = vec![
                Strategy::TwigStack,
                Strategy::BoundedNestedLoop,
                Strategy::NaiveNestedLoop,
                Strategy::Pipelined,
                Strategy::Auto,
            ];
            // PathStack applies to the chain-topology queries only.
            if q.category.ends_with('c') {
                strategies.push(Strategy::PathStack);
            }
            for strategy in strategies {
                let got = engine
                    .eval_path_str(q.path, strategy)
                    .unwrap_or_else(|e| panic!("{} {} {strategy}: {e}", ds.name(), q.id));
                assert_eq!(
                    got,
                    expected,
                    "{} {} ({}) strategy {strategy}",
                    ds.name(),
                    q.id,
                    q.path
                );
            }
        }
    }
}

/// Fuzz: randomly generated queries over each dataset's own vocabulary
/// agree across every strategy.
#[test]
fn random_queries_agree_across_strategies() {
    use blossomtree::xmlgen::{random_query, QueryGenConfig};
    for ds in Dataset::all() {
        let doc = generate(ds, 6_000, 11);
        let engine = Engine::new(doc);
        for seed in 0..40u64 {
            let query = random_query(engine.doc(), QueryGenConfig::default(), seed);
            let expected = engine
                .eval_path_str(&query, Strategy::Navigational)
                .unwrap_or_else(|e| panic!("{} {query}: {e}", ds.name()));
            for strategy in [
                Strategy::TwigStack,
                Strategy::Pipelined,
                Strategy::BoundedNestedLoop,
                Strategy::Auto,
            ] {
                let got = engine
                    .eval_path_str(&query, strategy)
                    .unwrap_or_else(|e| panic!("{} {query} {strategy}: {e}", ds.name()));
                assert_eq!(got, expected, "{} {query} {strategy}", ds.name());
            }
        }
    }
}
