//! Integration tests reproducing the paper's running examples exactly:
//! Example 1/2 (the book-pair query), Example 4 (the theta join of two
//! NoK streams), Example 5 (the `<<`-join is not order-preserving), and
//! the Section 2.1 decomposition example.

use blossomtree::core::decompose::Decomposition;
use blossomtree::core::nok::NokMatcher;
use blossomtree::core::ops::{project_seq, theta_join, CrossPred};
use blossomtree::core::{Engine, Strategy};
use blossomtree::flwor::{parse_query, BlossomTree, CrossRel, Expr};
use blossomtree::xml::{writer, Document};

const EXAMPLE2_DOC: &str = r#"<bib>
    <book><title>Maximum Security</title></book>
    <book><title>The Art of Computer Programming</title>
          <author><last>Knuth</last><first>Donald</first></author></book>
    <book><title>Terrorist Hunter</title></book>
    <book><title>TeX Book</title>
          <author><last>Knuth</last><first>Donald</first></author></book>
</bib>"#;

const EXAMPLE1_QUERY: &str = r#"<bib>{
    for $book1 in doc("bib.xml")//book,
        $book2 in doc("bib.xml")//book
    let $aut1 := $book1/author
    let $aut2 := $book2/author
    where $book1 << $book2
      and not($book1/title = $book2/title)
      and deep-equal($aut1, $aut2)
    return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
}</bib>"#;

fn flwor_of(expr: &Expr) -> &blossomtree::flwor::Flwor {
    match expr {
        Expr::Constructor(c) => match &c.children[0] {
            Expr::Flwor(f) => f,
            other => panic!("unexpected {other:?}"),
        },
        Expr::Flwor(f) => f,
        other => panic!("unexpected {other:?}"),
    }
}

/// Example 1 evaluates to exactly Example 2's output under every engine
/// strategy (the paper's "Terrorist Hunger" is its own typo for the
/// "Terrorist Hunter" title it parsed earlier).
#[test]
fn example1_produces_example2_output() {
    let engine = Engine::from_xml(EXAMPLE2_DOC).unwrap();
    let expected = "<bib>\
        <book-pair><title>Maximum Security</title><title>Terrorist Hunter</title></book-pair>\
        <book-pair><title>The Art of Computer Programming</title><title>TeX Book</title></book-pair>\
        </bib>";
    for strategy in [
        Strategy::Auto,
        Strategy::Navigational,
        Strategy::Pipelined,
        Strategy::BoundedNestedLoop,
        Strategy::NaiveNestedLoop,
    ] {
        let result = engine.eval_query_str(EXAMPLE1_QUERY, strategy).unwrap();
        assert_eq!(writer::to_string(&result), expected, "strategy {strategy}");
    }
}

/// The paper counts 18 path expressions in Example 1 (counting each
/// variable reference); our AST folds `$v/p` into a single path, giving
/// 12 folded paths over the same 18 references.
#[test]
fn example1_path_census() {
    let q = parse_query(EXAMPLE1_QUERY).unwrap();
    let f = flwor_of(&q);
    assert_eq!(f.bindings.len(), 4);
    assert_eq!(f.path_count(), 12);
}

/// Example 4: the two NoK streams of Figure 5, joined with
/// ϕ = (1.1.x ≠ 1.2.y) ∧ deep-equal(authors), produce exactly the
/// (b1,b3) and (b2,b4) combinations.
#[test]
fn example4_join_combinations() {
    let doc = Document::parse_str(EXAMPLE2_DOC).unwrap();
    let q = parse_query(EXAMPLE1_QUERY).unwrap();
    let bt = BlossomTree::from_flwor(flwor_of(&q)).unwrap();
    let d = Decomposition::decompose(&bt);
    assert_eq!(d.noks.len(), 2, "Figure 5: two NoK operators");
    assert!(d.cut_edges.is_empty());

    let m1 = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
    let m2 = NokMatcher::new(&doc, &d.noks[1], d.shape.clone(), None);
    let left = m1.scan();
    let right = m2.scan();
    assert_eq!(left.len(), 4, "four books match NoK1");
    assert_eq!(right.len(), 4);

    let preds: Vec<CrossPred> = d
        .crossing
        .iter()
        .map(|c| CrossPred { left: c.left.1, rel: c.rel, right: c.right.1 })
        .collect();
    assert_eq!(preds.len(), 3);
    let joined = theta_join(&doc, &left, &right, &preds);
    assert_eq!(joined.len(), 2, "exactly the two book pairs of Example 4");

    // Check the pairs are (b1, b3) and (b2, b4) by document position.
    let books: Vec<_> = doc
        .elements()
        .filter(|&n| doc.tag_name(n) == Some("book"))
        .collect();
    let b1_shape = d.shape.by_var("book1").unwrap();
    let b2_shape = d.shape.by_var("book2").unwrap();
    let pairs: Vec<(usize, usize)> = joined
        .iter()
        .map(|nl| {
            let l = nl.project_shape(b1_shape)[0];
            let r = nl.project_shape(b2_shape)[0];
            (
                books.iter().position(|&b| b == l).unwrap() + 1,
                books.iter().position(|&b| b == r).unwrap() + 1,
            )
        })
        .collect();
    assert_eq!(pairs, vec![(1, 3), (2, 4)]);
}

/// Example 5: the `<<`-join is *not* order-preserving — projecting
/// Dewey 1.2 over the join result yields [b2, b3, b4, b3, b4, b4].
#[test]
fn example5_before_join_not_order_preserving() {
    let doc = Document::parse_str(EXAMPLE2_DOC).unwrap();
    let q = parse_query(
        "for $book1 in //book, $book2 in //book \
         where $book1 << $book2 return <p>{$book1}{$book2}</p>",
    )
    .unwrap();
    let bt = BlossomTree::from_flwor(flwor_of(&q)).unwrap();
    let d = Decomposition::decompose(&bt);
    let m1 = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
    let m2 = NokMatcher::new(&doc, &d.noks[1], d.shape.clone(), None);
    let preds: Vec<CrossPred> = d
        .crossing
        .iter()
        .map(|c| CrossPred { left: c.left.1, rel: c.rel, right: c.right.1 })
        .collect();
    assert_eq!(preds[0].rel, CrossRel::Before);
    let joined = theta_join(&doc, &m1.scan(), &m2.scan(), &preds);
    assert_eq!(joined.len(), 6, "all ordered pairs of the four books");

    let dewey_b2 = d.shape.node(d.shape.by_var("book2").unwrap()).dewey.clone();
    let projected = project_seq(&joined, &dewey_b2);
    let books: Vec<_> = doc
        .elements()
        .filter(|&n| doc.tag_name(n) == Some("book"))
        .collect();
    let positions: Vec<usize> = projected
        .iter()
        .map(|&n| books.iter().position(|&b| b == n).unwrap() + 1)
        .collect();
    // The paper's Example 5: [b2, b3, b4, b3, b4, b4] — not document order.
    assert_eq!(positions, vec![2, 3, 4, 3, 4, 4]);
    assert!(
        positions.windows(2).any(|w| w[0] > w[1]),
        "projection is NOT in document order"
    );
}

/// Section 2.1's motivating decomposition:
/// doc("bib.xml")/book[//author="Smith"]/title splits into the NoK
/// patterns book/title and author[.="Smith"].
#[test]
fn section21_decomposition() {
    let path = blossomtree::xpath::parse_path(r#"/book[//author="Smith"]/title"#).unwrap();
    let bt = BlossomTree::from_path(&path).unwrap();
    let d = Decomposition::decompose(&bt);
    assert_eq!(d.noks.len(), 2);
    // NoK 0 contains book and title; NoK 1 is author with the value test.
    let tags0: Vec<String> = d.noks[0]
        .pattern
        .ids()
        .skip(1)
        .map(|id| d.noks[0].pattern.node(id).test.to_string())
        .collect();
    assert_eq!(tags0, vec!["book", "title"]);
    let author = d.noks[1].pattern.node(d.noks[1].root());
    assert_eq!(author.test.to_string(), "author");
    assert!(author.value.is_some());
}

/// End-to-end check of that Section 2.1 query.
#[test]
fn section21_query_evaluates() {
    let engine = Engine::from_xml(
        r#"<bib>
            <book><author>Smith</author><title>Good</title></book>
            <book><author>Jones</author><title>Other</title></book>
            <book><chapter><author>Smith</author></chapter><title>Nested</title></book>
        </bib>"#,
    )
    .unwrap();
    // Note: /book fails (root element is bib), /bib/book works.
    for strategy in [
        Strategy::Navigational,
        Strategy::Pipelined,
        Strategy::TwigStack,
        Strategy::BoundedNestedLoop,
    ] {
        let titles = engine
            .eval_path_str(r#"/bib/book[//author="Smith"]/title"#, strategy)
            .unwrap();
        let texts: Vec<String> =
            titles.iter().map(|&t| engine.doc().string_value(t)).collect();
        assert_eq!(texts, vec!["Good", "Nested"], "strategy {strategy}");
    }
}

/// The "l"-annotated (optional) edges of Example 2: both author-less
/// books pair because deep-equal((), ()) is true.
#[test]
fn optional_edges_and_empty_deep_equal() {
    let engine = Engine::from_xml(
        "<bib><book><title>A</title></book><book><title>B</title></book></bib>",
    )
    .unwrap();
    let query = r#"for $b1 in //book, $b2 in //book
        let $a1 := $b1/author let $a2 := $b2/author
        where $b1 << $b2 and deep-equal($a1, $a2)
        return <pair>{$b1/title}{$b2/title}</pair>"#;
    for strategy in [Strategy::Navigational, Strategy::Pipelined] {
        let result = engine.eval_query_str(query, strategy).unwrap();
        assert_eq!(
            writer::to_string(&result),
            "<result><pair><title>A</title><title>B</title></pair></result>",
            "strategy {strategy}"
        );
    }
}
