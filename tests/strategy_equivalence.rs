//! Property tests: every physical strategy returns exactly the
//! navigational oracle's answer, on random documents and on the five
//! generated datasets; the BlossomTree FLWOR pipeline agrees with the
//! naive per-iteration evaluation.


// Gated: requires the external `proptest` crate. Build with
// `--features proptest` after restoring the dev-dependency (network).
#![cfg(feature = "proptest")]

use blossomtree::core::{Engine, Strategy as Eval};
use blossomtree::xml::writer;
use blossomtree::xmlgen::{generate, Dataset};
use proptest::prelude::*;

/// Random small documents over a fixed tag alphabet (so queries have a
/// chance to match).
fn xml_tree() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        E(usize, Vec<T>),
        Text(u8),
    }
    const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
    let leaf = prop_oneof![
        (0..TAGS.len()).prop_map(|t| T::E(t, vec![])),
        (0u8..4).prop_map(T::Text),
    ];
    let tree = leaf.prop_recursive(5, 48, 4, |inner| {
        (0..TAGS.len(), prop::collection::vec(inner, 0..4))
            .prop_map(|(t, children)| T::E(t, children))
    });
    tree.prop_map(|t| {
        fn render(t: &T, out: &mut String) {
            match t {
                T::Text(v) => out.push_str(&format!("v{v}")),
                T::E(tag, children) => {
                    out.push('<');
                    out.push_str(TAGS[*tag]);
                    out.push('>');
                    for c in children {
                        render(c, out);
                    }
                    out.push_str("</");
                    out.push_str(TAGS[*tag]);
                    out.push('>');
                }
            }
        }
        let mut s = String::from("<r>");
        render(&t, &mut s);
        s.push_str("</r>");
        s
    })
}

const CHAIN_QUERIES: [&str; 4] = ["//a//b", "//a/b", "//a//b//c", "//r/a"];

const PATH_QUERIES: [&str; 10] = [
    "//a//b",
    "//a/b",
    "//a[//b]//c",
    "//a[b][c]",
    "//r/a",
    "//a//b//c",
    "//a[//d]/b[//c]",
    "//b[//a]",
    "//a[.//b]/c",
    "//e",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All join strategies agree with the navigational oracle on random
    /// documents.
    #[test]
    fn path_strategies_agree_on_random_docs(
        xml in xml_tree(),
        query_idx in 0..PATH_QUERIES.len(),
    ) {
        let engine = Engine::from_xml(&xml).unwrap();
        let query = PATH_QUERIES[query_idx];
        let expected = engine.eval_path_str(query, Eval::Navigational).unwrap();
        for strategy in [
            Eval::TwigStack,
            // Our pipelined join discards conservatively (only candidates
            // before the current outer's *start*), which keeps it correct
            // even on recursive documents — at the memory cost the paper
            // warns about, which is why the planner still avoids it there.
            Eval::Pipelined,
            Eval::BoundedNestedLoop,
            Eval::NaiveNestedLoop,
            Eval::Auto,
        ] {
            let got = engine.eval_path_str(query, strategy).unwrap();
            prop_assert_eq!(&got, &expected, "query {} strategy {}", query, strategy);
        }
    }

    /// FLWOR: the BlossomTree pipeline agrees with the naive evaluator.
    #[test]
    fn flwor_pipeline_agrees_with_naive(xml in xml_tree(), seed in 0u8..4) {
        let engine = Engine::from_xml(&xml).unwrap();
        let query = match seed {
            0 => "for $x in //a return <i>{$x/b}</i>",
            1 => "for $x in //a let $y := $x/b where $x/c = \"v1\" return <i>{$y}</i>",
            2 => "for $x in //a, $y in //b where $x << $y return <i>{$x}{$y}</i>",
            _ => "for $x in //a let $y := $x/b \
                  where deep-equal($y, $y) order by $x return <i>{$y}</i>",
        };
        let naive = engine.eval_query_str(query, Eval::Navigational).unwrap();
        for strategy in [Eval::BoundedNestedLoop, Eval::NaiveNestedLoop] {
            let got = engine.eval_query_str(query, strategy).unwrap();
            prop_assert_eq!(
                writer::to_string(&got),
                writer::to_string(&naive),
                "query {} strategy {}", query, strategy
            );
        }
        if !engine.stats().recursive {
            let got = engine.eval_query_str(query, Eval::Pipelined).unwrap();
            prop_assert_eq!(
                writer::to_string(&got),
                writer::to_string(&naive),
                "query {} strategy pipelined", query
            );
        }
    }
}

/// The Table 2 workload returns identical answers under every applicable
/// strategy on all five generated datasets.
#[test]
fn table2_workload_equivalence_on_datasets() {
    let workload: [(Dataset, [&str; 3]); 5] = [
        (Dataset::D1Recursive, ["//a//b4", "//a[//b2][//b1]//b3", "//b1//c2//b1"]),
        (
            Dataset::D2Address,
            [
                "//addresses//street_address//name_of_state",
                "//address[//name_of_state][//zip_code]//street_address",
                "//address[//street_address][//zip_code][//name_of_city]",
            ],
        ),
        (
            Dataset::D3Catalog,
            [
                "//item/attributes//length",
                "//publisher[//mailing_address]//street_address",
                "//author[date_of_birth][//last_name]//street_address",
            ],
        ),
        (
            Dataset::D4Treebank,
            ["//VP//VP/NP//PP/PP", "//VP[VP]//VP/NP//NN", "//VP[//NP][//VB]//JJ"],
        ),
        (
            Dataset::D5Dblp,
            ["//phdthesis//author", "//www[//editor][//title][//year]", "//proceedings[//editor]"],
        ),
    ];
    for (ds, queries) in workload {
        let engine = Engine::new(generate(ds, 15_000, 99));
        for query in queries {
            let expected = engine.eval_path_str(query, Eval::Navigational).unwrap();
            let mut strategies = vec![
                Eval::TwigStack,
                Eval::BoundedNestedLoop,
                Eval::Auto,
            ];
            if !ds.recursive() {
                strategies.push(Eval::Pipelined);
            }
            for strategy in strategies {
                let got = engine.eval_path_str(query, strategy).unwrap();
                assert_eq!(got, expected, "{} {} {}", ds.name(), query, strategy);
            }
        }
    }
}

/// PathStack agrees with the oracle on chain queries.
#[test]
fn pathstack_equivalence() {
    let docs = [
        "<r><a><b><c/></b></a><a><c/></a><b/></r>",
        "<a><b/><a><b/><a><b/><c/></a></a></a>",
    ];
    for xml in docs {
        let engine = Engine::from_xml(xml).unwrap();
        for query in CHAIN_QUERIES {
            let expected = engine.eval_path_str(query, Eval::Navigational).unwrap();
            let got = engine.eval_path_str(query, Eval::PathStack).unwrap();
            assert_eq!(got, expected, "{query} on {xml}");
        }
    }
}

/// Sibling and explicit axes agree across strategies (NoK trees include
/// following-sibling per the NoK definition).
#[test]
fn sibling_axis_equivalence() {
    let engine = Engine::from_xml(
        "<r><a/><b><c/></b><a/><c/><b/><a><b/><c/><b/></a></r>",
    )
    .unwrap();
    for query in [
        "//a/following-sibling::b",
        "//a/following-sibling::c",
        "//b[following-sibling::c]",
        "//a/following::c",
        "/r/a/self::a",
    ] {
        let expected = engine.eval_path_str(query, Eval::Navigational).unwrap();
        for strategy in [Eval::BoundedNestedLoop, Eval::NaiveNestedLoop, Eval::Pipelined] {
            let got = engine.eval_path_str(query, strategy).unwrap();
            assert_eq!(got, expected, "{query} {strategy}");
        }
    }
}

/// The paper's remaining join types: `preceding`-axis joins and the
/// `is`/`isnot` node-identity joins of Section 4.3 agree with the oracle.
#[test]
fn preceding_and_identity_joins() {
    let engine = Engine::from_xml(
        "<r><a><b/></a><c/><a/><c><a><b/></a></c><b/></r>",
    )
    .unwrap();
    for query in ["//c/preceding::a", "//a[preceding::c]", "//b/preceding::a"] {
        let expected = engine.eval_path_str(query, Eval::Navigational).unwrap();
        for strategy in [Eval::NaiveNestedLoop, Eval::BoundedNestedLoop, Eval::Pipelined] {
            let got = engine.eval_path_str(query, strategy).unwrap();
            assert_eq!(got, expected, "{query} {strategy}");
        }
    }
    // isnot: all pairs of distinct a's sharing a text value.
    let engine = Engine::from_xml(
        "<r><x><v>1</v></x><x><v>1</v></x><x><v>2</v></x></r>",
    )
    .unwrap();
    let query = "for $p in //x, $q in //x \
                 where $p/v = $q/v and $p isnot $q return <m>{$p/v}</m>";
    let naive = engine.eval_query_str(query, Eval::Navigational).unwrap();
    let bt = engine.eval_query_str(query, Eval::BoundedNestedLoop).unwrap();
    assert_eq!(
        writer::to_string(&naive),
        "<result><m><v>1</v></m><m><v>1</v></m></result>"
    );
    assert_eq!(writer::to_string(&bt), writer::to_string(&naive));
    // is: only self-pairs.
    let query_is = "for $p in //x, $q in //x where $p is $q return <m/>";
    let n = engine.eval_query_str(query_is, Eval::Navigational).unwrap();
    let b = engine.eval_query_str(query_is, Eval::BoundedNestedLoop).unwrap();
    assert_eq!(writer::to_string(&n), "<result><m/><m/><m/></result>");
    assert_eq!(writer::to_string(&b), writer::to_string(&n));
    // not(isnot) == is.
    let query_notisnot =
        "for $p in //x, $q in //x where not($p isnot $q) return <m/>";
    let nn = engine.eval_query_str(query_notisnot, Eval::BoundedNestedLoop).unwrap();
    assert_eq!(writer::to_string(&nn), "<result><m/><m/><m/></result>");
}

/// preceding-sibling (a *local* axis that stays inside NoK trees) agrees
/// across strategies.
#[test]
fn preceding_sibling_equivalence() {
    let engine = Engine::from_xml(
        "<r><b/><a/><c/><a/><x><a/><b/></x><b/><a/></r>",
    )
    .unwrap();
    for query in [
        "//a/preceding-sibling::b",
        "//a[preceding-sibling::b]",
        "//b[preceding-sibling::a]",
    ] {
        let expected = engine.eval_path_str(query, Eval::Navigational).unwrap();
        for strategy in [Eval::Pipelined, Eval::BoundedNestedLoop, Eval::NaiveNestedLoop] {
            let got = engine.eval_path_str(query, strategy).unwrap();
            assert_eq!(got, expected, "{query} {strategy}");
        }
    }
}

/// Aggregate-style where clauses (count/exists/empty) evaluate via the
/// naive engine; Auto transparently falls back.
#[test]
fn count_exists_where_clauses() {
    let engine = Engine::from_xml(
        "<bib><book><a/><a/></book><book><a/></book><book/></bib>",
    )
    .unwrap();
    let cases = [
        ("for $b in //book where count($b/a) > 1 return <m/>", 1),
        ("for $b in //book where count($b/a) = 0 return <m/>", 1),
        ("for $b in //book where exists($b/a) return <m/>", 2),
        ("for $b in //book where empty($b/a) return <m/>", 1),
        ("for $b in //book where count($b/a) >= 1 and exists($b/a) return <m/>", 2),
    ];
    for (query, expected) in cases {
        for strategy in [Eval::Navigational, Eval::Auto] {
            let out = engine.eval_query_str(query, strategy).unwrap();
            assert_eq!(
                out.elements().count() - 1,
                expected,
                "{query} {strategy}"
            );
        }
    }
}
