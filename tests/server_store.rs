//! Crash-safe persistence, end to end over the real binary: a `blossom
//! serve --store-dir` process is killed with SIGKILL (no graceful
//! drain, no flush), restarted on the same directory, and must serve
//! every completely published document byte-identically — while torn
//! generation files and stranded temp files planted in the directory
//! are ignored and cleaned up, exactly as a death mid-publish would
//! leave them.

use blossomtree::server::Client;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};

/// A spawned `blossom serve` process, killed on drop so a failing
/// assertion never leaks a listener.
struct Served {
    child: Child,
    addr: SocketAddr,
}

impl Served {
    fn start(store_dir: &Path) -> Served {
        let mut child = Command::new(env!("CARGO_BIN_EXE_blossom"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--store-dir",
                store_dir.to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn blossom serve");
        // The first stdout line is `blossomd listening on ADDR`,
        // flushed before the accept loop starts.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read listen line");
        let addr: SocketAddr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address token")
            .parse()
            .unwrap_or_else(|e| panic!("bad listen line {line:?}: {e}"));
        Served { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect")
    }

    /// SIGKILL — the crash under test: no drain, no final writes.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("reap");
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn doc_xml(i: usize) -> String {
    format!(
        "<bib><book><title>vol {i}</title><price>{}</price></book>\
         <book><title>other {i}</title></book></bib>",
        10 + i
    )
}

#[test]
fn sigkill_then_restart_recovers_every_complete_generation() {
    let dir = std::env::temp_dir().join(format!("blossom-store-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // First life: publish a handful of documents and record what each
    // one serves, then die without any shutdown path running.
    let server = Served::start(&dir);
    let mut client = server.client();
    let mut served = Vec::new();
    for i in 0..4 {
        let name = format!("doc{i}");
        let loaded = client.load(&name, doc_xml(i).as_bytes()).unwrap();
        assert_eq!(loaded.status, 200, "{}", loaded.body_str());
        let got = client.query(&name, "//book/title", &[]).unwrap();
        assert_eq!(got.status, 200);
        served.push((name, got.body_str()));
    }
    server.kill();

    // Simulate the other half of a crash window: a publish that died
    // before its rename (a stranded `.tmp`), a newer generation of an
    // existing document torn mid-write, and a document whose *only*
    // generation is torn.
    std::fs::write(dir.join("doc1.g99999999999999999999.blm2.tmp"), b"half a header").unwrap();
    let complete = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with("doc2.g"))
        .expect("doc2 generation file");
    let bytes = std::fs::read(&complete).unwrap();
    std::fs::write(dir.join("doc2.g18000000000000000000.blm2"), &bytes[..bytes.len() / 2])
        .unwrap();
    std::fs::write(dir.join("orphan.g00000000000000000007.blm2"), &bytes[..64]).unwrap();

    // Second life: recovery must serve all four documents with the
    // exact bytes the first life served, from complete generations only.
    let reborn = Served::start(&dir);
    let mut client = reborn.client();
    for (name, body) in &served {
        let got = client.query(name, "//book/title", &[]).unwrap();
        assert_eq!(got.status, 200, "{name} lost across the crash");
        assert_eq!(&got.body_str(), body, "{name} changed across the crash");
    }
    // The torn-only document never becomes visible...
    assert_eq!(client.query("orphan", "//book", &[]).unwrap().status, 404);
    // ...and the crash artifacts are gone from the directory.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| {
            n.ends_with(".tmp") || n.starts_with("orphan.") || n.contains(".g18000000000000000000")
        })
        .collect();
    assert!(leftovers.is_empty(), "crash artifacts survived recovery: {leftovers:?}");

    // The recovered catalog is live, not read-only: new loads and
    // queries keep working against the same store.
    assert_eq!(client.load("fresh", doc_xml(9).as_bytes()).unwrap().status, 200);
    assert_eq!(client.query("fresh", "//book/title", &[]).unwrap().status, 200);
    drop(reborn);
    let _ = std::fs::remove_dir_all(&dir);
}
