//! Property tests for the posting-list skip primitives: `skip_to`,
//! `skip_to_end`, `skip_past` and the galloped range probes must agree
//! with one-element-at-a-time linear scans on arbitrary generated
//! documents, and every join operator must be skip-invariant on random
//! chain/branch queries.


// Gated: requires the external `proptest` crate. Build with
// `--features proptest` after restoring the dev-dependency (network).
#![cfg(feature = "proptest")]

use blossomtree::core::{Engine, EngineOptions, Strategy};
use blossomtree::xml::{NodeId, Sym, TagIndex};
use blossomtree::xmlgen::{generate, Dataset};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = Dataset> {
    prop::sample::select(Dataset::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// skip_to / skip_to_end / skip_past == the linear definitions, for
    /// every tag of a randomly sized, randomly seeded document.
    #[test]
    fn gallops_match_linear((ds, nodes, seed, target) in (
        dataset(),
        500usize..6_000,
        any::<u64>(),
        any::<u32>(),
    )) {
        let doc = generate(ds, nodes, seed);
        let index = TagIndex::build(&doc);
        let target = target % (doc.len() as u32 + 2);
        for sym in (0..doc.symbols().len() as u32).map(Sym) {
            let list = index.postings(sym);
            for from in [0, list.len() / 3, list.len()] {
                let by_start = (from..list.len())
                    .find(|&i| list.start(i).0 >= target)
                    .unwrap_or(list.len());
                prop_assert_eq!(list.skip_to(from, target), by_start);
                let by_end = (from..list.len())
                    .find(|&i| list.end(i) >= target)
                    .unwrap_or(list.len());
                prop_assert_eq!(list.skip_to_end(from, target), by_end);
                let past = (from..list.len())
                    .find(|&i| list.start(i).0 > target)
                    .unwrap_or(list.len());
                prop_assert_eq!(list.skip_past(from, target), past);
            }
        }
    }

    /// Galloped range probes == the linear reference, on random bounds.
    #[test]
    fn range_probes_match_linear((ds, nodes, seed, after, upto) in (
        dataset(),
        500usize..6_000,
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
    )) {
        let doc = generate(ds, nodes, seed);
        let index = TagIndex::build(&doc);
        let cap = doc.len() as u32 + 2;
        let (after, upto) = (after % cap, upto % cap);
        for sym in (0..doc.symbols().len() as u32).map(Sym) {
            prop_assert_eq!(
                index.stream_in_range(sym, NodeId(after), NodeId(upto)),
                index.stream_in_range_linear(sym, NodeId(after), NodeId(upto))
            );
        }
    }

    /// Every operator is skip-invariant on random documents and the
    /// dataset's Table 3 queries.
    #[test]
    fn operators_skip_invariant((ds, nodes, seed) in (
        dataset(),
        500usize..4_000,
        any::<u64>(),
    )) {
        let skip = Engine::with_options(
            generate(ds, nodes, seed), EngineOptions::default());
        let scan = Engine::with_options(
            generate(ds, nodes, seed),
            EngineOptions { skip_joins: false, ..EngineOptions::default() });
        for q in blossom_bench::queries(ds) {
            for strategy in [
                Strategy::TwigStack,
                Strategy::PathStack,
                Strategy::Pipelined,
                Strategy::BoundedNestedLoop,
                Strategy::NaiveNestedLoop,
            ] {
                let a = skip.eval_path_str(q.path, strategy);
                let b = scan.eval_path_str(q.path, strategy);
                match (a, b) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                    (Err(_), Err(_)) => {}
                    (a, b) => {
                        return Err(TestCaseError::fail(
                            format!("applicability diverged: {a:?} vs {b:?}")));
                    }
                }
            }
        }
    }
}
