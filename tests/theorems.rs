//! Property tests for the paper's two theorems and the NestedList
//! algebra laws, over randomly generated documents.


// Gated: requires the external `proptest` crate. Build with
// `--features proptest` after restoring the dev-dependency (network).
#![cfg(feature = "proptest")]

use blossomtree::core::decompose::Decomposition;
use blossomtree::core::join::pipelined::PipelinedJoin;
use blossomtree::core::nlbuffer::NlBuffer;
use blossomtree::core::nok::NokMatcher;
use blossomtree::core::ops;
use blossomtree::flwor::BlossomTree;
use blossomtree::xml::{Document, NodeId};
use blossomtree::xpath::parse_path;
use proptest::prelude::*;

/// Random documents over tags a/b/c/d (recursion allowed).
fn xml_tree(max_depth: u32) -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    struct T(usize, Vec<T>);
    const TAGS: [&str; 4] = ["a", "b", "c", "d"];
    let leaf = (0..TAGS.len()).prop_map(|t| T(t, vec![]));
    let tree = leaf.prop_recursive(max_depth, 60, 4, |inner| {
        (0..TAGS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(t, c)| T(t, c))
    });
    tree.prop_map(|t| {
        fn render(t: &T, out: &mut String) {
            out.push('<');
            out.push_str(TAGS[t.0]);
            out.push('>');
            for c in &t.1 {
                render(c, out);
            }
            out.push_str("</");
            out.push_str(TAGS[t.0]);
            out.push('>');
        }
        let mut s = String::from("<r>");
        render(&t, &mut s);
        s.push_str("</r>");
        s
    })
}

const NOK_QUERIES: [&str; 4] = ["//a/b", "//a[b]/c", "//b[c][d]", "//a/b[c]/d"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1: projecting any pattern node of the Figure 6 buffer
    /// yields document order — including on recursive documents where
    /// matches interleave.
    #[test]
    fn theorem1_projection_order_preserving(
        xml in xml_tree(6),
        query_idx in 0..NOK_QUERIES.len(),
    ) {
        let doc = Document::parse_str(&xml).unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path(NOK_QUERIES[query_idx]).unwrap()).unwrap(),
        );
        prop_assert_eq!(d.noks.len(), 1, "NoK-only queries");
        let buf = NlBuffer::build(&doc, &d.noks[0]);
        for id in d.noks[0].pattern.ids() {
            let projected = buf.project(id);
            prop_assert!(
                projected.windows(2).all(|w| w[0] <= w[1]),
                "projection of {:?} not in document order: {:?}",
                id,
                projected
            );
        }
    }

    /// Theorem 2: on non-recursive documents the pipelined //-join's
    /// output stream is ordered by outer anchor.
    #[test]
    fn theorem2_pipelined_join_order_preserving(xml in xml_tree(4)) {
        let doc = Document::parse_str(&xml).unwrap();
        prop_assume!(!doc.stats().recursive);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a[//b]").unwrap()).unwrap(),
        );
        let cut = &d.cut_edges[0];
        let outer = NokMatcher::new(&doc, &d.noks[cut.parent_nok], d.shape.clone(), None);
        let inner = NokMatcher::new(&doc, &d.noks[cut.child_nok], d.shape.clone(), None);
        let mut left = outer.stream();
        let mut right = inner.stream();
        let join = PipelinedJoin::new(
            &doc,
            std::iter::from_fn(move || left.get_next()),
            std::iter::from_fn(move || right.get_next()),
            &d.noks,
            cut,
        );
        let anchors: Vec<NodeId> = join.map(|(anchor, _)| anchor).collect();
        prop_assert!(
            anchors.windows(2).all(|w| w[0] < w[1]),
            "pipelined join output not ordered: {:?}",
            anchors
        );
    }

    /// Algebra laws: σ(true) is the identity; σ(false) empties; π after
    /// σ(p) returns exactly the items p kept.
    #[test]
    fn selection_laws(xml in xml_tree(5)) {
        let doc = Document::parse_str(&xml).unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a/b").unwrap()).unwrap(),
        );
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let seq = m.scan();
        let dewey: blossomtree::xml::Dewey = "1.1".parse().unwrap();
        let all = ops::project_seq(&seq, &dewey);

        // σ(true) = identity.
        let kept = ops::select_seq(&seq, &dewey, |_, _| true);
        prop_assert_eq!(&kept, &seq);

        // σ(false) removes every match.
        let none = ops::select_seq(&seq, &dewey, |_, _| false);
        prop_assert!(none.iter().all(|nl| nl.project(&dewey).is_empty()));

        // σ(even positions): projection afterwards is exactly those items.
        let evens = ops::select_seq(&seq, &dewey, |pos, _| pos % 2 == 0);
        let expected: Vec<NodeId> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| (i + 1) % 2 == 0)
            .map(|(_, &n)| n)
            .collect();
        let got = ops::project_seq(&evens, &dewey);
        // Some matches may be dropped entirely when their only b was
        // removed and b is mandatory; the survivors must be a subset in
        // order.
        prop_assert!(
            got.iter().all(|n| expected.contains(n)),
            "σ kept unexpected items: {:?} vs {:?}",
            got,
            expected
        );
    }
}
