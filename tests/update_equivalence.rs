//! Update-path equivalence: after **each** mutation of a script, every
//! engine configuration (all strategies × {1,4} threads × skipping
//! on/off) must return byte-identical query results on the incrementally
//! maintained snapshot, and those bytes must equal evaluating the same
//! query over a document rebuilt from scratch. Plus the scoped
//! invalidation contract: an update touches exactly one document's plans
//! and statistics — everything else stays warm.

use blossom_bench::diff::run_mutation_case;
use blossom_xmlgen::{generate, random_mutations, random_query_full, Dataset};
use blossomtree::core::{apply_mutations, Engine, EngineOptions, SharedPlanCache, Strategy};
use blossomtree::xml::mutate::parse_mutations;
use blossomtree::xml::{writer, DocStats, Document, TagIndex};
use std::sync::Arc;

const BIB: &str = "<bib><book><title>b1</title><price>10</price></book>\
                   <book><title>b2</title><author>x</author><price>90</price></book>\
                   <book><title>b3</title><price>40</price></book></bib>";

const SCRIPT: [&str; 5] = [
    "insert 1 0 <book><title>b0</title><price>5</price></book>",
    "replace 1.3.1 <title>B2</title>",
    "delete 1.2",
    "insert 1.3 1 <author>y</author>",
    "delete 1.1.2",
];

/// Every cumulative prefix of the script is its own mutation case: the
/// spliced document must serialize identically to the rebuilt one, and
/// the query must agree across the whole matrix on the incrementally
/// maintained parts. That *is* the "after each mutation" guarantee.
#[test]
fn each_mutation_step_agrees_across_the_matrix() {
    for k in 1..=SCRIPT.len() {
        let prefix = SCRIPT[..k].join("\n");
        for q in ["//book/title", "//book[author]/title", "//book[price < 50]",
                  "for $b in //book order by $b/price return <p>{$b/title}</p>"] {
            let r = run_mutation_case(BIB, &prefix, q);
            assert!(r.ok(), "step {k}, {q}: {:?}", r.mismatches.first());
            assert!(r.agreed > 1, "step {k}, {q}: matrix must actually evaluate");
        }
    }
}

/// Seeded generated sequences over a paper dataset, checked per step
/// like the fixed script above.
#[test]
fn generated_sequences_agree_per_step() {
    for seed in 0..4u64 {
        let doc = generate(Dataset::D3Catalog, 90, seed);
        let xml = writer::to_string(&doc);
        let lines: Vec<String> =
            random_mutations(&doc, 5, seed * 977 + 3).iter().map(|m| m.to_string()).collect();
        let query = random_query_full(&doc, seed ^ 0xD1FF);
        for k in 1..=lines.len() {
            let prefix = lines[..k].join("\n");
            let r = run_mutation_case(&xml, &prefix, &query);
            assert!(r.ok(), "seed {seed} step {k}: {:?}", r.mismatches.first());
        }
    }
}

/// Chain single-mutation updates and pin, at every step, that the
/// incrementally spliced index is posting-for-posting equal to a
/// from-scratch build and that the statistics were recomputed for the
/// new snapshot.
#[test]
fn incremental_index_and_stats_match_rebuild_at_every_step() {
    let mut doc = Arc::new(Document::parse_str(BIB).unwrap());
    let mut index = Arc::new(TagIndex::build(&doc));
    let muts = parse_mutations(&SCRIPT.join("\n")).unwrap();
    for (step, m) in muts.iter().enumerate() {
        let updated = apply_mutations(&doc, &index, std::slice::from_ref(m), None)
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        let fresh = TagIndex::build(&updated.doc);
        for (sym, name) in updated.doc.symbols().iter() {
            assert_eq!(
                updated.index.stream(sym),
                fresh.stream(sym),
                "step {step}: postings of {name}"
            );
        }
        assert_eq!(*updated.stats, DocStats::compute(&updated.doc), "step {step}");
        assert_ne!(updated.doc.uid(), doc.uid(), "step {step}: fresh uid per swap");
        doc = updated.doc;
        index = updated.index;
    }
}

/// Scoped invalidation: updating document A drops exactly A's plan-cache
/// entries. B's plans keep hitting (counter-asserted), and B's DocStats
/// are the very same allocation afterwards — never recomputed.
#[test]
fn update_invalidation_is_scoped_to_the_mutated_document() {
    let plans = Arc::new(SharedPlanCache::new(32));
    let mk = |xml: &str| {
        let doc = Arc::new(Document::parse_str(xml).unwrap());
        let index = Arc::new(TagIndex::build(&doc));
        let stats = Arc::new(DocStats::compute(&doc));
        (doc, index, stats)
    };
    let (doc_a, index_a, stats_a) = mk(BIB);
    let (doc_b, index_b, stats_b) = mk("<lib><item><name>n</name></item></lib>");
    let engine = |d: &Arc<Document>, x: &Arc<TagIndex>, s: &Arc<DocStats>| {
        Engine::with_shared(d.clone(), x.clone(), s.clone(), plans.clone(), EngineOptions::default())
    };

    engine(&doc_a, &index_a, &stats_a).eval_query_str("//book/title", Strategy::Auto).unwrap();
    engine(&doc_b, &index_b, &stats_b).eval_query_str("//item/name", Strategy::Auto).unwrap();
    assert_eq!(plans.stats().len, 2);

    let muts = parse_mutations("delete 1.2").unwrap();
    let updated = apply_mutations(&doc_a, &index_a, &muts, None).unwrap();
    assert_eq!(plans.invalidate_doc(doc_a.uid()), 1, "exactly A's entry dropped");
    assert_eq!(plans.stats().len, 1);

    // B's plan stayed warm: the next evaluation is a pure cache hit.
    let hits = plans.stats().hits;
    engine(&doc_b, &index_b, &stats_b).eval_query_str("//item/name", Strategy::Auto).unwrap();
    assert_eq!(plans.stats().hits, hits + 1, "untouched document re-planned");

    // B's statistics are untouched (same Arc, no recompute); A's were
    // recomputed once for the new snapshot only.
    assert_eq!(Arc::strong_count(&stats_b), 1 + 0, "no stray stats clones for B");
    assert_eq!(*stats_b, DocStats::compute(&doc_b));
    assert_eq!(*updated.stats, DocStats::compute(&updated.doc));
    assert_ne!(*updated.stats, *stats_a, "the mutated doc's stats did change");
}
