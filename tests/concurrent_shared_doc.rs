//! Concurrency contract for the shared-document types the server builds
//! on: the core types must be `Send + Sync` (checked at compile time),
//! and many engines over one `Arc<Document>` running different
//! strategies from different threads must produce byte-identical
//! results with zero copies of the document.

use blossomtree::core::{Engine, EngineOptions, SharedPlanCache, Strategy};
use blossomtree::xml::{writer, Document, TagIndex};
use std::sync::Arc;

/// Compile-time assertions: these are the properties that make
/// `Arc<Document>` sharing across server workers sound at all.
#[allow(dead_code)]
fn static_send_sync_assertions() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Document>();
    assert_send_sync::<TagIndex>();
    assert_send_sync::<EngineOptions>();
    assert_send_sync::<Engine>();
    assert_send_sync::<SharedPlanCache>();
    assert_send_sync::<Arc<Document>>();
}

fn bib(books: usize) -> String {
    let mut xml = String::from("<bib>");
    for i in 0..books {
        xml.push_str(&format!(
            "<book><title>t{i}</title><year>{}</year><author>a{}</author></book>",
            1980 + i % 40,
            i % 7
        ));
    }
    xml.push_str("</bib>");
    xml
}

#[test]
fn eight_threads_share_one_document_and_agree_byte_for_byte() {
    let xml = bib(300);
    let doc = Arc::new(Document::parse_str(&xml).unwrap());
    let index = Arc::new(TagIndex::build(&doc));
    let stats = Arc::new(blossomtree::xml::DocStats::compute(&doc));
    let plans = Arc::new(SharedPlanCache::new(64));

    let cases: Vec<(&str, Strategy)> = vec![
        ("//book/title", Strategy::Auto),
        ("//book[author]/title", Strategy::TwigStack),
        ("//book/author", Strategy::PathStack),
        ("//book//year", Strategy::Pipelined),
        ("//book[year]/author", Strategy::BoundedNestedLoop),
        ("for $b in //book where $b/year < 1990 return <hit>{$b/title}</hit>", Strategy::Auto),
    ];

    // Ground truth from a fresh single-threaded engine per case.
    let expected: Vec<String> = cases
        .iter()
        .map(|(q, _)| {
            let engine = Engine::from_xml(&xml).unwrap();
            writer::to_string(&engine.eval_query_str(q, Strategy::Auto).unwrap())
        })
        .collect();

    let workers: Vec<_> = (0..8)
        .map(|w| {
            let doc = doc.clone();
            let index = index.clone();
            let stats = stats.clone();
            let plans = plans.clone();
            let cases = cases.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..4 {
                    let (query, strategy) = cases[(w + round) % cases.len()];
                    let engine = Engine::with_shared(
                        doc.clone(),
                        index.clone(),
                        stats.clone(),
                        plans.clone(),
                        EngineOptions::default(),
                    );
                    let got =
                        writer::to_string(&engine.eval_query_str(query, strategy).unwrap());
                    assert_eq!(got, expected[(w + round) % cases.len()], "{query} ({strategy})");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // Every thread shared the same arena and plan cache: the document
    // was never cloned, and the cache saw far more lookups than misses.
    assert_eq!(Arc::strong_count(&doc), 1, "all worker clones dropped");
    let cache = plans.stats();
    assert!(cache.hits > cache.misses, "shared cache served repeats: {cache:?}");
}

/// Snapshot semantics under mutation: readers holding the pre-update
/// `Arc<Document>` keep getting byte-identical pre-update answers while
/// a writer chains updates and invalidates the old snapshots' plans out
/// from under them. Losing a cached plan mid-stream must only cost a
/// re-plan, never change a byte.
#[test]
fn readers_on_the_old_snapshot_are_unaffected_by_updates() {
    use blossomtree::core::apply_mutations;
    use blossomtree::xml::mutate::parse_mutations;

    let xml = bib(150);
    let doc = Arc::new(Document::parse_str(&xml).unwrap());
    let index = Arc::new(TagIndex::build(&doc));
    let stats = Arc::new(blossomtree::xml::DocStats::compute(&doc));
    let plans = Arc::new(SharedPlanCache::new(64));

    let queries = ["//book/title", "//book[author]/year", "//book[year < 1990]/title"];
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let engine = Engine::from_xml(&xml).unwrap();
            writer::to_string(&engine.eval_query_str(q, Strategy::Auto).unwrap())
        })
        .collect();

    let readers: Vec<_> = (0..4)
        .map(|w| {
            let (doc, index, stats, plans) = (doc.clone(), index.clone(), stats.clone(), plans.clone());
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..40 {
                    let i = (w + round) % queries.len();
                    let engine = Engine::with_shared(
                        doc.clone(),
                        index.clone(),
                        stats.clone(),
                        plans.clone(),
                        EngineOptions::default(),
                    );
                    let got = writer::to_string(
                        &engine.eval_query_str(queries[i], Strategy::Auto).unwrap(),
                    );
                    assert_eq!(got, expected[i], "pre-update snapshot changed under a reader");
                }
            })
        })
        .collect();

    // Writer: a chain of updates off the same base snapshot, each with
    // the scoped invalidation the server performs after a swap.
    let mut cur_doc = doc.clone();
    let mut cur_index = index.clone();
    for i in 0..10 {
        let script = format!("insert 1 0 <book><title>new{i}</title><year>2001</year></book>");
        let muts = parse_mutations(&script).unwrap();
        let updated = apply_mutations(&cur_doc, &cur_index, &muts, None).unwrap();
        plans.invalidate_doc(cur_doc.uid());
        cur_doc = updated.doc;
        cur_index = updated.index;
    }
    for r in readers {
        r.join().unwrap();
    }

    // The writer's final snapshot really diverged, and the readers'
    // snapshot still answers exactly as before the first update.
    assert_ne!(cur_doc.len(), doc.len());
    let engine = Engine::with_shared(doc.clone(), index, stats, plans, EngineOptions::default());
    let got = writer::to_string(&engine.eval_query_str(queries[0], Strategy::Auto).unwrap());
    assert_eq!(got, expected[0]);
}
