//! Replays every minimized fixture in `tests/fixtures/diff/` against the
//! full engine configuration matrix and the reference oracle.
//!
//! Each fixture was produced by the differential harness
//! (`cargo run --release -p blossom-bench --bin diff`) from a real engine
//! bug, then shrunk to a minimal `(query, document)` pair — or, for
//! fixtures carrying `mut:` lines, a minimal `(query, document,
//! mutation-script)` triple replayed through the incremental-update path
//! against the rebuild-from-scratch reference. A fixture failing here
//! means a fixed bug has regressed; see the `#` comment lines inside the
//! file for the original symptom and provenance.

use std::fs;
use std::path::PathBuf;

use blossom_bench::diff::{parse_fixture_full, run_case, run_mutation_case};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("diff")
}

fn fixture_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("tests/fixtures/diff must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        .filter(|p| p.file_name().is_some_and(|n| n != "seeds.txt"))
        .collect();
    files.sort();
    files
}

#[test]
fn fixture_corpus_is_nonempty() {
    assert!(
        !fixture_files().is_empty(),
        "no regression fixtures found in {}",
        fixture_dir().display()
    );
}

#[test]
fn all_fixtures_agree_with_oracle() {
    let mut failures = Vec::new();
    for path in fixture_files() {
        let contents = fs::read_to_string(&path).expect("readable fixture");
        let Some((query, xml, script)) = parse_fixture_full(&contents) else {
            failures.push(format!("{}: malformed fixture", path.display()));
            continue;
        };
        let result = if script.is_empty() {
            run_case(&xml, &query)
        } else {
            run_mutation_case(&xml, &script, &query)
        };
        assert!(
            result.agreed > 0,
            "{}: no configuration evaluated the case (query no longer parses?)",
            path.display()
        );
        for m in &result.mismatches {
            failures.push(format!(
                "{}: {:?} disagreed with the oracle\n  engine: {}\n  oracle: {}",
                path.display(),
                m.config,
                m.engine,
                m.oracle
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
