//! Quickstart: load a document, evaluate path queries, inspect the plan.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use blossomtree::core::{Engine, Strategy};
use blossomtree::xml::writer;

const BIB: &str = r#"<bib>
    <book year="1994">
        <title>TCP/IP Illustrated</title>
        <author><last>Stevens</last><first>W.</first></author>
        <price>65.95</price>
    </book>
    <book year="2000">
        <title>Data on the Web</title>
        <author><last>Abiteboul</last><first>Serge</first></author>
        <author><last>Buneman</last><first>Peter</first></author>
        <price>39.95</price>
    </book>
    <book year="1999">
        <title>Economics of Technology</title>
        <editor><last>Gerbarg</last><first>Darcy</first></editor>
        <price>129.95</price>
    </book>
</bib>"#;

fn main() {
    let engine = Engine::from_xml(BIB).expect("well-formed XML");
    let stats = engine.stats();
    println!(
        "loaded document: {} nodes, {} tags, max depth {}, recursive: {}\n",
        stats.node_count, stats.tag_count, stats.max_depth, stats.recursive
    );

    let queries = [
        "//book/title",
        "//book[author]/title",
        "//book[price < 100][author]//last",
        "//book[2]/title",
        "//book[author or editor]/title",
    ];
    for query in queries {
        let plan = engine.explain_path(query).expect("valid query");
        let nodes = engine.eval_path_str(query, Strategy::Auto).expect("evaluates");
        println!("query: {query}");
        println!("  plan: {} ({})", plan.strategy, plan.reason);
        for n in &nodes {
            let mut out = String::new();
            writer::write_node(engine.doc(), *n, &mut out);
            println!("  -> {out}");
        }
        println!();
    }

    // A FLWOR query through the same engine.
    let flwor = r#"for $b in //book
                   where $b/price < 100
                   order by $b/title
                   return <cheap>{ $b/title }</cheap>"#;
    let result = engine.eval_query_str(flwor, Strategy::Auto).expect("evaluates");
    println!("FLWOR result:\n{}", writer::to_string_pretty(&result));
}
