//! Run the paper's six query categories (Table 2) over a generated
//! dataset with every applicable join strategy and report timings — a
//! miniature, single-dataset version of the Table 3 harness.
//!
//! ```text
//! cargo run --release --example query_categories -- [d1|d2|d3|d4|d5]
//! ```

use blossomtree::core::{Engine, Strategy};
use blossomtree::xmlgen::{generate, Dataset};
use std::time::Instant;

/// Table 2 queries for the chosen dataset (duplicated from the bench
/// crate's catalogue to keep the example self-contained).
fn queries(ds: Dataset) -> Vec<(&'static str, &'static str)> {
    match ds {
        Dataset::D1Recursive => vec![
            ("hc", "//a//b4"),
            ("hb", "//a[//b2][//b1]//b3"),
            ("mc", "//a//c2/b1/c2/b1//c3"),
            ("mb", "//a//c2//b1/c2[//c2[b1]]/b1//c3"),
            ("lc", "//b1//c2//b1"),
            ("lb", "//b1//c2[//c3]//b1"),
        ],
        Dataset::D2Address => vec![
            ("hc", "//addresses//street_address//name_of_state"),
            ("hb", "//addresses[//zip_code][//country_id]"),
            ("mc", "//addresses//street_address"),
            ("mb", "//address[//name_of_state][//zip_code]//street_address"),
            ("lc", "//address[//street_address]"),
            ("lb", "//address[//street_address][//zip_code][//name_of_city]"),
        ],
        Dataset::D3Catalog => vec![
            ("hc", "//item/attributes//length"),
            ("hb", "//item[//author/contact_information//street_address]/title"),
            ("mc", "//publisher//street_information//street_address"),
            ("mb", "//publisher[//mailing_address]//street_address"),
            ("lc", "//author//mailing_address//street_address"),
            ("lb", "//author[date_of_birth][//last_name]//street_address"),
        ],
        Dataset::D4Treebank => vec![
            ("hc", "//VP//VP/NP//PP/PP"),
            ("hb", "//VP[VP]//VP[PP]/NP[PP]/NN"),
            ("mc", "//VP/VP/NP//NN"),
            ("mb", "//VP[VP]//VP/NP//NN"),
            ("lc", "//VP//VP/NP//PP/IN"),
            ("lb", "//VP[//NP][//VB]//JJ"),
        ],
        Dataset::D5Dblp => vec![
            ("hc", "//phdthesis//author"),
            ("hb", "//phdthesis[//author][//school]"),
            ("mc", "//www[//url]"),
            ("mb", "//www[//editor][//title][//year]"),
            ("lc", "//proceedings[//editor]"),
            ("lb", "//proceedings[//editor][//year][//url]"),
        ],
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "d3".to_string());
    let dataset = Dataset::all()
        .into_iter()
        .find(|d| d.name() == arg)
        .unwrap_or(Dataset::D3Catalog);

    println!("generating {} (~60k nodes)...", dataset.name());
    let engine = Engine::new(generate(dataset, 60_000, 42));
    let strategies: Vec<(&str, Strategy)> = if dataset.recursive() {
        vec![
            ("XH", Strategy::Navigational),
            ("TS", Strategy::TwigStack),
            ("NL", Strategy::BoundedNestedLoop),
        ]
    } else {
        vec![
            ("XH", Strategy::Navigational),
            ("TS", Strategy::TwigStack),
            ("PL", Strategy::Pipelined),
        ]
    };

    println!("{:<4} {:<55} {:>8} {:>10}", "cat", "query", "results", "time");
    for (category, query) in queries(dataset) {
        let baseline = engine
            .eval_path_str(query, Strategy::Navigational)
            .expect("query evaluates");
        for (label, strategy) in &strategies {
            let start = Instant::now();
            let result = engine.eval_path_str(query, *strategy).expect("query evaluates");
            let elapsed = start.elapsed();
            assert_eq!(result, baseline, "strategies must agree");
            println!(
                "{:<4} {:<55} {:>8} {:>9.2?} [{label}]",
                category,
                query,
                result.len(),
                elapsed
            );
        }
    }
    println!("\nall strategies returned identical answers.");
}
