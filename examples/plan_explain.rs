//! Show how the planner (Section 5's operator-choice rules) picks a
//! physical strategy depending on document shape and query features.
//!
//! ```text
//! cargo run --example plan_explain
//! ```

use blossomtree::core::decompose::Decomposition;
use blossomtree::core::Engine;
use blossomtree::flwor::BlossomTree;
use blossomtree::xpath::parse_path;

fn main() {
    let documents = [
        ("non-recursive", "<bib><book><title>t</title><author>a</author></book></bib>"),
        ("recursive", "<part><part><part><name>bolt</name></part></part></part>"),
    ];
    let queries = [
        "//book//title",
        "//part//part//name",
        "//book[//author][//title]",
        "//book[2]",
        "//book[author or editor]",
        "//part//*",
    ];
    for (label, xml) in documents {
        let engine = Engine::from_xml(xml).expect("well-formed");
        println!("=== {label} document ===");
        println!(
            "stats: recursive={}, max same-tag nesting={}\n",
            engine.stats().recursive,
            engine.stats().max_recursion
        );
        for query in queries {
            match engine.explain_path(query) {
                Ok(plan) => {
                    println!("{query}\n  -> {}: {}", plan.strategy, plan.reason);
                }
                Err(e) => println!("{query}\n  -> error: {e}"),
            }
            // Show the decomposition for pattern-algebra queries.
            if let Ok(path) = parse_path(query) {
                if !path.has_positional() && !path.has_disjunction() {
                    if let Ok(bt) = BlossomTree::from_path(&path) {
                        let d = Decomposition::decompose(&bt);
                        println!(
                            "     {} NoK(s), {} cut edge(s), pipelinable: {}",
                            d.noks.len(),
                            d.cut_edges.len(),
                            d.pipelinable()
                        );
                    }
                }
            }
            println!();
        }
    }
}
