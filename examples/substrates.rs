//! Tour of the storage and streaming substrates: grammar-driven document
//! generation, the succinct storage scheme of the NoK paper, and
//! streaming (SAX) NoK evaluation with memory bounded by document depth.
//!
//! ```text
//! cargo run --example substrates
//! ```

use blossomtree::core::decompose::Decomposition;
use blossomtree::core::nok::NokMatcher;
use blossomtree::core::stream::count_anchors_streaming;
use blossomtree::flwor::BlossomTree;
use blossomtree::xml::{succinct, writer};
use blossomtree::xmlgen::Grammar;
use blossomtree::xpath::parse_path;

fn main() {
    // 1. Describe a corpus with the probabilistic DTD-like rule language.
    let grammar = Grammar::parse(
        "library -> shelf*4\n\
         shelf -> book*5 label?0.5\n\
         book -> title author?0.8 author?0.3 price?0.6\n\
         title -> #text\n\
         author -> #text\n\
         price -> #text",
    )
    .expect("valid grammar");
    let doc = grammar.generate(20_000, 42);
    let stats = doc.stats();
    println!(
        "generated <{}> corpus: {} nodes, {} tags, max depth {}",
        grammar.root(),
        stats.node_count,
        stats.tag_count,
        stats.max_depth
    );

    // 2. Store it in the succinct format: skeleton separated from content.
    let bytes = succinct::encode(&doc);
    let sizes = succinct::section_sizes(&bytes).expect("well-formed encoding");
    let xml = writer::to_string(&doc);
    println!(
        "\nsuccinct encoding: {} bytes total vs {} bytes of XML text",
        bytes.len(),
        xml.len()
    );
    println!(
        "  skeleton {:>7} bytes  (2 bits per structural event)\n  tags     {:>7} bytes\n  symbols  {:>7} bytes\n  content  {:>7} bytes",
        sizes.skeleton, sizes.tags, sizes.symbols, sizes.content
    );
    println!(
        "  a structure-only scan reads {:.1}% of the data",
        100.0 * sizes.structure() as f64 / bytes.len() as f64
    );
    let decoded = succinct::decode(&bytes).expect("round-trips");
    assert_eq!(writer::to_string(&decoded), xml);
    println!("  round-trip: exact");

    // 3. Evaluate a NoK pattern in streaming mode — no tree in memory.
    let query = "//book[author][price]";
    let d = Decomposition::decompose(
        &BlossomTree::from_path(&parse_path(query).unwrap()).unwrap(),
    );
    let streamed = count_anchors_streaming(&xml, &d.noks[0]).expect("well-formed");
    let materialized = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None)
        .scan()
        .len();
    println!("\nstreaming NoK evaluation of {query}:");
    println!("  SAX pass (O(depth) memory): {streamed} matches");
    println!("  in-memory matcher:          {materialized} matches");
    assert_eq!(streamed, materialized);
}
