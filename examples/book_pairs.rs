//! The paper's Example 1, end to end: the book-pair FLWOR query over the
//! Example 2 document, showing the BlossomTree (Figure 1), its NoK
//! decomposition, and the result — which must match Example 2's output.
//!
//! ```text
//! cargo run --example book_pairs
//! ```

use blossomtree::core::decompose::Decomposition;
use blossomtree::core::{Engine, Strategy};
use blossomtree::flwor::{parse_query, BlossomTree, Expr};
use blossomtree::xml::writer;

const DOCUMENT: &str = r#"<bib>
    <book><title>Maximum Security</title></book>
    <book><title>The Art of Computer Programming</title>
          <author><last>Knuth</last><first>Donald</first></author></book>
    <book><title>Terrorist Hunter</title></book>
    <book><title>TeX Book</title>
          <author><last>Knuth</last><first>Donald</first></author></book>
</bib>"#;

const QUERY: &str = r#"<bib>{
    for $book1 in doc("bib.xml")//book,
        $book2 in doc("bib.xml")//book
    let $aut1 := $book1/author
    let $aut2 := $book2/author
    where $book1 << $book2
      and not($book1/title = $book2/title)
      and deep-equal($aut1, $aut2)
    return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
}</bib>"#;

fn main() {
    println!("=== Query (Example 1) ===\n{QUERY}\n");

    // 1. Parse and build the BlossomTree (Figure 1).
    let expr = parse_query(QUERY).expect("parses");
    let flwor = match &expr {
        Expr::Constructor(c) => match &c.children[0] {
            Expr::Flwor(f) => f.as_ref(),
            other => panic!("unexpected {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    };
    let bt = BlossomTree::from_flwor(flwor).expect("supported subset");
    println!("=== BlossomTree (Figure 1) ===\n{}", bt.pattern);
    println!("crossing edges:");
    for edge in &bt.crossing {
        println!(
            "  {} {} {}",
            bt.dewey_of(edge.left).unwrap(),
            edge.rel,
            bt.dewey_of(edge.right).unwrap()
        );
    }

    // 2. Decompose into NoK pattern trees (Algorithm 1).
    let d = Decomposition::decompose(&bt);
    println!("\n=== Decomposition: {} NoK pattern trees ===", d.noks.len());
    for (i, nok) in d.noks.iter().enumerate() {
        println!("NoK {i}:\n{}", nok.pattern);
    }

    // 3. Evaluate under each strategy; all must match Example 2's output.
    let engine = Engine::from_xml(DOCUMENT).expect("well-formed");
    for strategy in [
        Strategy::Navigational,
        Strategy::Pipelined,
        Strategy::BoundedNestedLoop,
    ] {
        let result = engine.eval_query_str(QUERY, strategy).expect("evaluates");
        println!(
            "=== Result with {strategy} (Example 2) ===\n{}",
            writer::to_string_pretty(&result)
        );
    }
}
