//! `blossom` — a command-line front end for the BlossomTree engine.
//!
//! ```text
//! blossom query   <doc.xml|doc.blsm> '<query>' [--strategy auto|navigational|twigstack|pathstack|pipelined|bnlj|nlj]
//!                 [--threads N] [--pretty] [--profile] [--profile-json FILE] [--repeat N]
//! blossom explain <doc.xml|doc.blsm> '<query>'
//! blossom stats   <doc.xml|doc.blsm>
//! blossom encode  <doc.xml> <out.blsm>     # succinct storage format
//! blossom snapshot <doc.xml|doc.blsm|doc.blm2> --output <file> [--format blm2|blm1|xml]
//!                 [--succinct] [--stats]    # columnar storage format
//! blossom update  <doc.xml|doc.blsm> [--apply 'MUTATION']... [--ops FILE] [--output OUT]
//! blossom gen     <d1|d2|d3|d4|d5> <out.xml> [--nodes N] [--seed S]
//! blossom serve   [--addr HOST:PORT] [--workers N] [--threads N] [--deadline-ms N]
//!                 [--catalog-mb N] [--store-dir DIR] [--io-model M] [--io-threads N]
//!                 [--max-queue N] [--batch on|off] [--slow-ms N] [--access-log TARGET]
//!                 [--log-sample N] [--load NAME=PATH]...
//! ```
//!
//! `--profile` prints an `EXPLAIN ANALYZE`-style execution trace to
//! stderr (stdout stays byte-identical to an unprofiled run);
//! `--profile-json FILE` writes the same trace as JSON; `--repeat N`
//! evaluates the query N times and reports plan-cache statistics.
//!
//! `snapshot` converts between the storage formats: the default
//! `--format blm2` writes the BLM2 columnar snapshot — an aligned,
//! checksummed image of the arena columns and tag index that the engine
//! can `mmap` and query with no per-node decoding (see `DESIGN.md` §15);
//! `--format blm1` writes the compact varint format, `--format xml`
//! writes the document back out as XML. `--succinct` embeds the optional
//! balanced-parentheses skeleton in a BLM2 snapshot, and `--stats`
//! prints per-section byte sizes after writing. Every command that reads
//! a document (`query`, `explain`, `stats`, `update`, …) accepts all
//! three formats by sniffing; BLM2 inputs are mapped, not decoded.
//!
//! `update` applies a mutation script — `insert <parent-dewey> <pos>
//! <fragment>`, `delete <dewey>`, `replace <dewey> <fragment>` lines —
//! to a document: each `--apply` flag adds one mutation, `--ops FILE`
//! reads a script file (applied before any `--apply` lines), and
//! `--output OUT` writes the mutated document to a file (`.blsm` writes
//! the succinct format) instead of printing XML to stdout. The same
//! script syntax drives the server's `POST /update`.
//!
//! `serve` starts `blossomd`, the concurrent query server (see
//! `DESIGN.md` §10 and §12): `--addr` binds the listener (port 0 picks
//! an ephemeral port, printed on startup), `--workers` sizes the
//! execution pool, `--threads` sets per-query evaluation threads,
//! `--deadline-ms` bounds each request's evaluation wall-clock (0
//! disables), `--catalog-mb` caps the document catalog's memory, and
//! each `--load NAME=PATH` preloads an XML, `.blsm`, or `.blm2` file
//! into the catalog under NAME. `--store-dir DIR` makes the catalog
//! persistent: every document is published to DIR as a crash-safe BLM2
//! generation file and served `mmap`'d from it (so its resident charge
//! is a small constant), evicted entries spill to disk and remap on the
//! next request, and a restarted server recovers every complete
//! generation from DIR before accepting connections. The serving model is `--io-model`: the default
//! `event-loop` parks idle connections in a poller driven by
//! `--io-threads` I/O threads, admits at most `--max-queue` queued
//! requests (the rest get 503 + Retry-After), and coalesces identical
//! concurrent queries into one evaluation unless `--batch off`;
//! `thread-per-request` is the PR 5 blocking model, kept for
//! comparison benchmarks.
//!
//! Server observability (DESIGN.md §14): every request gets a traced
//! lifecycle span, echoed to clients as `X-Request-Id` and exposed as
//! stage-resolved histograms in `GET /stats` and `GET /metrics`
//! (Prometheus text format). `--slow-ms` sets the structured slow-query
//! log threshold, `--access-log` picks its sink (`stderr`, `off`, or a
//! file path), and `--log-sample N` additionally logs every Nth request
//! id; clients can force a record for one request with `?trace=1`.

use blossomtree::core::engine::SharedPlanCache;
use blossomtree::core::{exec, Engine, EngineOptions, Strategy};
use blossomtree::server::{IoModel, Server, ServerConfig};
use blossomtree::storage::{self, EncodeOptions, OpenMode};
use blossomtree::xml::{mutate, succinct, writer, Document};
use blossomtree::xmlgen::{generate, Dataset};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  blossom query   <doc.xml|doc.blsm> '<query>' [--strategy S] [--threads N] [--pretty]
                  [--profile] [--profile-json FILE] [--repeat N]
  blossom explain <doc.xml|doc.blsm> '<query>'
  blossom stats   <doc.xml|doc.blsm>
  blossom encode  <doc.xml> <out.blsm>
  blossom snapshot <doc.xml|doc.blsm|doc.blm2> --output FILE [--format blm2|blm1|xml]
                  [--succinct] [--stats]
  blossom update  <doc.xml|doc.blsm> [--apply 'MUTATION']... [--ops FILE] [--output OUT]
  blossom gen     <d1|d2|d3|d4|d5> <out.xml> [--nodes N] [--seed S]
  blossom serve   [--addr HOST:PORT] [--workers N] [--threads N] [--deadline-ms N]
                  [--catalog-mb N] [--store-dir DIR] [--io-model M] [--io-threads N]
                  [--max-queue N] [--batch on|off] [--slow-ms N] [--access-log TARGET]
                  [--log-sample N] [--load NAME=PATH]...

strategies: auto (default), navigational, twigstack, pathstack, pipelined, bnlj, nlj
--threads:      worker threads for NoK scans and FLWOR iteration
                (default: available parallelism; 1 = sequential;
                serve default: 1 per query)
--profile:      print an EXPLAIN ANALYZE-style trace (strategy decisions,
                operator counters, phase timings) to stderr
--profile-json: write the trace as JSON to FILE
--repeat:       evaluate the query N times and report plan-cache stats
--format:       snapshot: output format — blm2 (default, columnar/mappable),
                blm1 (compact varint), or xml
--succinct:     snapshot: embed the balanced-parentheses skeleton (blm2 only)
--stats:        snapshot: print per-section byte sizes after writing
--apply:        update: one mutation line (insert/delete/replace; repeatable)
--ops:          update: read a mutation script from FILE
--output:       update: write the mutated document to OUT (.blsm = succinct)
                instead of printing XML to stdout
--addr:         serve: bind address (default 127.0.0.1:7730; port 0 = ephemeral)
--workers:      serve: execution worker threads (default 4)
--deadline-ms:  serve: per-request evaluation budget (default 10000; 0 = none)
--catalog-mb:   serve: document catalog memory cap (default 512)
--store-dir:    serve: persistent BLM2 store directory — documents are
                served mmap'd, spill on eviction, survive restarts
--io-model:     serve: event-loop (default) or thread-per-request
--io-threads:   serve: event-loop I/O threads (default 2)
--max-queue:    serve: admission bound on queued requests (default 1024;
                beyond it requests get 503 + Retry-After)
--batch:        serve: coalesce identical concurrent queries (default on)
--slow-ms:      serve: slow-query log threshold in milliseconds
                (default: off; requests at or above it get a JSON record)
--access-log:   serve: slow/access log sink — stderr (default), off, or
                a file path (appended)
--log-sample:   serve: also log every Nth request id (default 0 = off;
                deterministic, no RNG)
--load:         serve: preload NAME=PATH into the catalog (repeatable)";

/// Execute a CLI invocation; returns the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().map(String::as_str).unwrap_or("");
    match command {
        "query" => {
            let file = arg(args, 1)?;
            let query = arg(args, 2)?;
            let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("auto"))?;
            let pretty = args.iter().any(|a| a == "--pretty");
            let threads = parse_threads(args)?;
            let profile = args.iter().any(|a| a == "--profile");
            let profile_json = flag_value(args, "--profile-json");
            let repeat = parse_repeat(args)?;
            let tracing = profile || profile_json.is_some();
            let engine = load_engine(
                file,
                EngineOptions { threads, trace: tracing, ..EngineOptions::default() },
            )?;
            // The query result always goes to stdout, byte-identical with
            // and without profiling; the trace goes to stderr / a file.
            let mut result = None;
            let mut trace = None;
            for _ in 0..repeat {
                if tracing {
                    let (doc, t) =
                        engine.eval_query_traced(query, strategy).map_err(|e| e.to_string())?;
                    result = Some(doc);
                    trace = Some(t);
                } else {
                    result =
                        Some(engine.eval_query_str(query, strategy).map_err(|e| e.to_string())?);
                }
            }
            let result = result.expect("repeat >= 1");
            if let Some(t) = &trace {
                if profile {
                    eprintln!("{}", t.render());
                }
                if let Some(path) = profile_json {
                    std::fs::write(path, t.to_json())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            if repeat > 1 {
                let c = engine.cache_stats();
                eprintln!(
                    "plan cache after {repeat} runs: {} hits / {} misses ({}/{} entries)",
                    c.hits, c.misses, c.len, c.capacity
                );
            }
            Ok(if pretty {
                writer::to_string_pretty(&result)
            } else {
                writer::to_string(&result)
            })
        }
        "explain" => {
            let file = arg(args, 1)?;
            let query = arg(args, 2)?;
            let engine = load_engine(file, EngineOptions::default())?;
            // Path queries get the planner's one-liner; FLWOR queries get
            // the full BlossomTree + decomposition report.
            if let Ok(plan) = engine.explain_path(query) {
                return Ok(format!("strategy: {}\nreason:   {}", plan.strategy, plan.reason));
            }
            engine.explain_query(query).map_err(|e| e.to_string())
        }
        "stats" => {
            let file = arg(args, 1)?;
            // Both snapshot formats carry embedded statistics; XML
            // computes them here.
            let s = storage::load::loaded_from_path(Path::new(file), OpenMode::Map)?.stats;
            Ok(format!(
                "nodes:         {}\nelements:      {}\ntext nodes:    {}\n\
                 distinct tags: {}\navg depth:     {:.2}\nmax depth:     {}\n\
                 recursive:     {} (max same-tag nesting {})\ntext bytes:    {}",
                s.node_count,
                s.element_count,
                s.text_count,
                s.tag_count,
                s.avg_depth,
                s.max_depth,
                s.recursive,
                s.max_recursion,
                s.text_bytes,
            ))
        }
        "encode" => {
            let input = arg(args, 1)?;
            let output = arg(args, 2)?;
            let doc = load_document(input)?;
            let bytes = succinct::encode(&doc);
            let sizes = succinct::section_sizes(&bytes).map_err(|e| e.to_string())?;
            std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
            Ok(format!(
                "wrote {} bytes (skeleton {} + tags {} + symbols {} + content {})",
                bytes.len(),
                sizes.skeleton,
                sizes.tags,
                sizes.symbols,
                sizes.content
            ))
        }
        "snapshot" => {
            let input = arg(args, 1)?;
            let output = flag_value(args, "--output")
                .ok_or_else(|| "snapshot needs --output FILE".to_string())?;
            let format = flag_value(args, "--format").unwrap_or("blm2");
            let succinct_nav = args.iter().any(|a| a == "--succinct");
            let show_stats = args.iter().any(|a| a == "--stats");
            if succinct_nav && format != "blm2" {
                return Err(format!("--succinct only applies to --format blm2, not {format:?}"));
            }
            // Decode into owned columns: the conversion rewrites every
            // section anyway, so there is nothing to gain from mapping.
            let loaded = storage::load::loaded_from_path(Path::new(input), OpenMode::Heap)?;
            let bytes = match format {
                "blm2" => storage::snapshot::encode(
                    &loaded.doc,
                    &loaded.index,
                    &loaded.stats,
                    EncodeOptions { succinct: succinct_nav },
                )
                .map_err(|e| e.to_string())?,
                "blm1" => succinct::encode_with_stats(&loaded.doc, &loaded.stats),
                "xml" => writer::to_string(&loaded.doc).into_bytes(),
                other => {
                    return Err(format!("bad --format {other:?} (want blm2, blm1, or xml)"))
                }
            };
            std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
            let mut report = format!(
                "wrote {} ({} bytes, {} nodes, format {format})",
                output,
                bytes.len(),
                loaded.doc.len()
            );
            if show_stats && format == "blm2" {
                for (name, size) in storage::snapshot::section_sizes(&bytes)
                    .map_err(|e| e.to_string())?
                {
                    report.push_str(&format!("\n  {name:<14} {size:>10} bytes"));
                }
            }
            Ok(report)
        }
        "update" => {
            let file = arg(args, 1)?;
            let mut script = String::new();
            if let Some(path) = flag_value(args, "--ops") {
                script.push_str(
                    &std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
                );
                if !script.ends_with('\n') {
                    script.push('\n');
                }
            }
            for m in flag_values(args, "--apply") {
                script.push_str(m);
                script.push('\n');
            }
            if script.trim().is_empty() {
                return Err("update needs at least one --apply MUTATION or --ops FILE".to_string());
            }
            let muts = mutate::parse_mutations(&script)?;
            let doc = load_document(file)?;
            let updated = mutate::apply_all(&doc, &muts)?;
            match flag_value(args, "--output") {
                None => Ok(writer::to_string(&updated)),
                Some(output) => {
                    let bytes = if output.ends_with(".blsm") {
                        succinct::encode(&updated)
                    } else {
                        writer::to_string(&updated).into_bytes()
                    };
                    std::fs::write(output, &bytes)
                        .map_err(|e| format!("writing {output}: {e}"))?;
                    Ok(format!(
                        "applied {} mutation(s): {} -> {} nodes, wrote {output}",
                        muts.len(),
                        doc.len(),
                        updated.len()
                    ))
                }
            }
        }
        "gen" => {
            let which = arg(args, 1)?;
            let output = arg(args, 2)?;
            let dataset = Dataset::all()
                .into_iter()
                .find(|d| d.name() == which)
                .ok_or_else(|| format!("unknown dataset {which:?} (d1..d5)"))?;
            let nodes: usize = flag_value(args, "--nodes")
                .map(|v| v.parse().map_err(|_| format!("bad --nodes {v:?}")))
                .transpose()?
                .unwrap_or(50_000);
            let seed: u64 = flag_value(args, "--seed")
                .map(|v| v.parse().map_err(|_| format!("bad --seed {v:?}")))
                .transpose()?
                .unwrap_or(42);
            let doc = generate(dataset, nodes, seed);
            std::fs::write(output, writer::to_string(&doc))
                .map_err(|e| format!("writing {output}: {e}"))?;
            Ok(format!("generated {} with {} nodes into {output}", which, doc.stats().node_count))
        }
        "serve" => {
            let config = parse_serve_config(args)?;
            let server = Server::bind(config).map_err(|e| format!("binding listener: {e}"))?;
            for (name, path) in flag_pairs(args, "--load")? {
                let nodes = server.preload(name, path)?;
                eprintln!("loaded {name} from {path} ({nodes} nodes)");
            }
            // The scripts that drive the server parse this line for the
            // (possibly ephemeral) port, so flush past stdout's pipe
            // buffering before blocking in the accept loop.
            println!("blossomd listening on {}", server.local_addr());
            use std::io::Write;
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            server.run();
            Ok("blossomd: drained and stopped".to_string())
        }
        "--help" | "-h" | "help" | "" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Build a [`ServerConfig`] from `serve` flags.
fn parse_serve_config(args: &[String]) -> Result<ServerConfig, String> {
    let defaults = ServerConfig::default();
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7730").to_string();
    let workers = match flag_value(args, "--workers") {
        None => defaults.workers,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --workers {v:?} (want an integer >= 1)")),
        },
    };
    let query_threads = match flag_value(args, "--threads") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --threads {v:?} (want an integer >= 1)")),
        },
    };
    let deadline = match flag_value(args, "--deadline-ms") {
        None => defaults.deadline,
        Some(v) => match v.parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(std::time::Duration::from_millis(ms)),
            Err(_) => return Err(format!("bad --deadline-ms {v:?} (want milliseconds; 0 = none)")),
        },
    };
    let catalog_bytes = match flag_value(args, "--catalog-mb") {
        None => defaults.catalog_bytes,
        Some(v) => match v.parse::<usize>() {
            Ok(mb) if mb >= 1 => mb * 1024 * 1024,
            _ => return Err(format!("bad --catalog-mb {v:?} (want an integer >= 1)")),
        },
    };
    let io_model = match flag_value(args, "--io-model") {
        None => defaults.io_model,
        Some(v) => v
            .parse::<IoModel>()
            .map_err(|_| format!("bad --io-model {v:?} (want event-loop or thread-per-request)"))?,
    };
    let io_threads = match flag_value(args, "--io-threads") {
        None => defaults.io_threads,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --io-threads {v:?} (want an integer >= 1)")),
        },
    };
    let max_queue = match flag_value(args, "--max-queue") {
        None => defaults.max_queue,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --max-queue {v:?} (want an integer >= 1)")),
        },
    };
    let batch = match flag_value(args, "--batch") {
        None => defaults.batch,
        Some("on") => true,
        Some("off") => false,
        Some(v) => return Err(format!("bad --batch {v:?} (want on or off)")),
    };
    let slow_ms = match flag_value(args, "--slow-ms") {
        None => defaults.slow_ms,
        Some(v) => match v.parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(ms),
            Err(_) => return Err(format!("bad --slow-ms {v:?} (want milliseconds; 0 = off)")),
        },
    };
    let access_log = match flag_value(args, "--access-log") {
        None => defaults.access_log.clone(),
        Some(v) => v
            .parse()
            .map_err(|e| format!("bad --access-log {v:?}: {e}"))?,
    };
    let log_sample = match flag_value(args, "--log-sample") {
        None => defaults.log_sample,
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad --log-sample {v:?} (want an integer; 0 = off)"))?,
    };
    let store_dir = flag_value(args, "--store-dir").map(String::from);
    Ok(ServerConfig {
        addr,
        workers,
        query_threads,
        deadline,
        catalog_bytes,
        io_model,
        io_threads,
        max_queue,
        batch,
        slow_ms,
        access_log,
        log_sample,
        store_dir,
        ..defaults
    })
}

/// Every `NAME=PATH` value of a repeatable flag.
fn flag_pairs<'a>(args: &'a [String], flag: &str) -> Result<Vec<(&'a str, &'a str)>, String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .map(|(i, _)| {
            let value = args
                .get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a NAME=PATH value"))?;
            value.split_once('=').ok_or_else(|| format!("bad {flag} {value:?} (want NAME=PATH)"))
        })
        .collect()
}

fn arg(args: &[String], idx: usize) -> Result<&str, String> {
    args.get(idx)
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("missing argument #{idx}\n{USAGE}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Every value of a repeatable flag, in order.
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).map(String::as_str))
        .collect()
}

fn parse_threads(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--threads") {
        None => Ok(exec::available_parallelism()),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad --threads {v:?} (want an integer >= 1)")),
        },
    }
}

fn parse_repeat(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--repeat") {
        None => Ok(1),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad --repeat {v:?} (want an integer >= 1)")),
        },
    }
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    // The CLI names and aliases live on `Strategy` itself so the query
    // server's `?strategy=` accepts the same spellings.
    name.parse()
}

/// Load any supported on-disk format (XML, BLM1, BLM2 — by sniffing)
/// and build an engine around it. BLM2 snapshots are memory-mapped and
/// come with a decoded tag index and statistics, so cold start skips
/// both parsing and index construction.
fn load_engine(path: &str, options: EngineOptions) -> Result<Engine, String> {
    let loaded = storage::load::loaded_from_path(Path::new(path), OpenMode::Map)?;
    let plans = Arc::new(SharedPlanCache::new(options.plan_cache_capacity));
    Ok(Engine::with_shared(
        Arc::new(loaded.doc),
        Arc::new(loaded.index),
        Arc::new(loaded.stats),
        plans,
        options,
    ))
}

/// Load any supported on-disk format when only the document is needed.
fn load_document(path: &str) -> Result<Document, String> {
    Ok(storage::load::loaded_from_path(Path::new(path), OpenMode::Map)?.doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("blossom-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&s(&[])).unwrap().contains("usage"));
        assert!(run(&s(&["help"])).unwrap().contains("usage"));
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["query"])).is_err());
    }

    #[test]
    fn end_to_end_workflow() {
        // gen -> stats -> query -> explain -> encode -> query the binary.
        let xml = tmp("d2.xml");
        let out = run(&s(&["gen", "d2", &xml, "--nodes", "2000", "--seed", "7"])).unwrap();
        assert!(out.contains("generated d2"));

        let stats = run(&s(&["stats", &xml])).unwrap();
        assert!(stats.contains("distinct tags: 7"), "{stats}");

        let hits =
            run(&s(&["query", &xml, "//address[//zip_code]", "--strategy", "ts"])).unwrap();
        assert!(hits.contains("<address>"));

        let plan = run(&s(&["explain", &xml, "//address//zip_code"])).unwrap();
        assert!(plan.contains("pipelined"), "{plan}");

        let blsm = tmp("d2.blsm");
        let enc = run(&s(&["encode", &xml, &blsm])).unwrap();
        assert!(enc.contains("skeleton"));

        // Querying the succinct binary gives the same answer as the XML.
        let from_xml = run(&s(&["query", &xml, "//address[//zip_code]"])).unwrap();
        let from_bin = run(&s(&["query", &blsm, "//address[//zip_code]"])).unwrap();
        assert_eq!(from_xml, from_bin);
    }

    #[test]
    fn snapshot_conversions_preserve_query_results() {
        let xml = tmp("snap.xml");
        run(&s(&["gen", "d1", &xml, "--nodes", "1500", "--seed", "11"])).unwrap();
        let want = run(&s(&["query", &xml, "//item[//bold]"])).unwrap();

        // XML -> BLM2 (with the succinct skeleton and a section report).
        let blm2 = tmp("snap.blm2");
        let out = run(&s(&[
            "snapshot", &xml, "--output", &blm2, "--succinct", "--stats",
        ]))
        .unwrap();
        assert!(out.contains("format blm2"), "{out}");
        assert!(out.contains("succinct"), "section report missing: {out}");
        assert_eq!(run(&s(&["query", &blm2, "//item[//bold]"])).unwrap(), want);
        assert!(run(&s(&["stats", &blm2])).unwrap().contains("nodes:"));

        // BLM2 -> BLM1 and BLM2 -> XML keep the answers identical too.
        let blm1 = tmp("snap.blsm");
        run(&s(&["snapshot", &blm2, "--output", &blm1, "--format", "blm1"])).unwrap();
        assert_eq!(run(&s(&["query", &blm1, "//item[//bold]"])).unwrap(), want);
        let back = tmp("snap-back.xml");
        run(&s(&["snapshot", &blm1, "--output", &back, "--format", "xml"])).unwrap();
        assert_eq!(run(&s(&["query", &back, "//item[//bold]"])).unwrap(), want);
    }

    #[test]
    fn snapshot_error_paths_are_one_line() {
        let xml = tmp("snap-err.xml");
        std::fs::write(&xml, "<r><a/></r>").unwrap();
        let cases: &[&[&str]] = &[
            &["snapshot", &xml],                                        // no --output
            &["snapshot", &xml, "--output", "/x", "--format", "tar"],   // bad format
            &["snapshot", &xml, "--output", "/x", "--format", "xml", "--succinct"],
            &["snapshot", "/nonexistent.xml", "--output", "/x"],        // bad input
        ];
        for case in cases {
            let err = run(&s(case)).unwrap_err();
            assert!(!err.contains('\n'), "multi-line error for {case:?}: {err}");
        }
    }

    #[test]
    fn update_through_cli() {
        let xml = tmp("upd.xml");
        std::fs::write(&xml, "<bib><book><title>a</title></book></bib>").unwrap();

        // Inline mutations print the mutated document to stdout.
        let out = run(&s(&[
            "update", &xml,
            "--apply", "insert 1 1 <book><title>b</title></book>",
            "--apply", "replace 1.1.1 <title>z</title>",
        ]))
        .unwrap();
        assert_eq!(
            out,
            "<bib><book><title>z</title></book><book><title>b</title></book></bib>"
        );

        // --ops FILE runs before --apply; --output writes a file whose
        // query results match querying the printed XML.
        let ops = tmp("upd.ops");
        std::fs::write(&ops, "insert 1 0 <book><title>first</title></book>\n").unwrap();
        let mutated = tmp("upd-out.xml");
        let summary = run(&s(&[
            "update", &xml, "--ops", &ops, "--apply", "delete 1.2", "--output", &mutated,
        ]))
        .unwrap();
        assert!(summary.contains("applied 2 mutation(s)"), "{summary}");
        let titles = run(&s(&["query", &mutated, "//title"])).unwrap();
        assert_eq!(titles, "<result><title>first</title></result>");

        // A .blsm output round-trips through the succinct decoder.
        let blsm = tmp("upd-out.blsm");
        run(&s(&["update", &xml, "--apply", "delete 1.1", "--output", &blsm])).unwrap();
        let empty = run(&s(&["query", &blsm, "//title"])).unwrap();
        assert_eq!(empty, "<result/>");
    }

    #[test]
    fn update_error_paths_are_one_line() {
        let xml = tmp("upd-err.xml");
        std::fs::write(&xml, "<r><a/></r>").unwrap();
        // No mutations at all.
        assert!(run(&s(&["update", &xml])).is_err());
        // Script syntax, invalid target, root delete: one-line errors,
        // and the input file is untouched.
        for script in ["munge 1.1", "delete 1.9", "delete 1"] {
            let err = run(&s(&["update", &xml, "--apply", script])).unwrap_err();
            assert!(!err.contains('\n'), "multi-line: {err}");
        }
        assert_eq!(std::fs::read_to_string(&xml).unwrap(), "<r><a/></r>");
    }

    #[test]
    fn flwor_through_cli() {
        let xml = tmp("bib.xml");
        std::fs::write(
            &xml,
            "<bib><book><title>B</title></book><book><title>A</title></book></bib>",
        )
        .unwrap();
        let out = run(&s(&[
            "query",
            &xml,
            "for $b in //book order by $b/title return <t>{$b/title}</t>",
        ]))
        .unwrap();
        assert_eq!(
            out,
            "<result><t><title>A</title></t><t><title>B</title></t></result>"
        );
    }

    #[test]
    fn explain_flwor_via_cli() {
        let xml = tmp("explain.xml");
        std::fs::write(&xml, "<bib><book><t>x</t></book></bib>").unwrap();
        let out = run(&s(&[
            "explain",
            &xml,
            "for $a in //book, $b in //book where $a << $b return <p/>",
        ]))
        .unwrap();
        assert!(out.contains("BlossomTree"), "{out}");
        assert!(out.contains("strategy:"), "{out}");
    }

    /// The module doc comment at the top of this file must mention every
    /// flag USAGE advertises (regression: `--threads` was added to USAGE
    /// but not to the doc comment).
    #[test]
    fn doc_comment_mentions_every_usage_flag() {
        let source = include_str!("main.rs");
        let doc_comment: String = source
            .lines()
            .take_while(|l| l.starts_with("//!") || l.is_empty())
            .collect::<Vec<_>>()
            .join("\n");
        let flags: std::collections::BTreeSet<&str> = USAGE
            .split(|c: char| c.is_whitespace() || c == '[' || c == ']' || c == ':')
            .filter(|t| t.starts_with("--"))
            .collect();
        assert!(!flags.is_empty());
        for flag in flags {
            assert!(
                doc_comment.contains(flag),
                "USAGE flag {flag} missing from the module doc comment"
            );
        }
    }

    #[test]
    fn profile_leaves_stdout_bytes_identical() {
        let xml = tmp("profile.xml");
        std::fs::write(&xml, "<r><a><b/></a><a><x><b/></x></a></r>").unwrap();
        for strategy in ["auto", "navigational", "ts", "bnlj"] {
            let plain = run(&s(&["query", &xml, "//a//b", "--strategy", strategy])).unwrap();
            let profiled =
                run(&s(&["query", &xml, "//a//b", "--strategy", strategy, "--profile"]))
                    .unwrap();
            assert_eq!(plain, profiled, "--strategy {strategy}");
        }
    }

    #[test]
    fn profile_json_has_schema_keys() {
        let xml = tmp("pjson.xml");
        std::fs::write(&xml, "<r><a><b/></a></r>").unwrap();
        let out = tmp("pjson.json");
        run(&s(&["query", &xml, "//a//b", "--profile-json", &out])).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"blossom_profile\"",
            "\"query\"",
            "\"strategy\"",
            "\"requested\"",
            "\"resolved\"",
            "\"executed\"",
            "\"fallbacks\"",
            "\"operators\"",
            "\"totals\"",
            "\"phases_us\"",
            "\"cache\"",
            "\"threads\"",
            "\"skip_joins\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn repeat_flag() {
        let xml = tmp("repeat.xml");
        std::fs::write(&xml, "<r><a/></r>").unwrap();
        let once = run(&s(&["query", &xml, "//a"])).unwrap();
        let thrice = run(&s(&["query", &xml, "//a", "--repeat", "3"])).unwrap();
        assert_eq!(once, thrice);
        assert!(run(&s(&["query", &xml, "//a", "--repeat", "0"])).is_err());
        assert!(run(&s(&["query", &xml, "//a", "--repeat", "soon"])).is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert!(parse_strategy("auto").is_ok());
        assert!(parse_strategy("ts").is_ok());
        assert!(parse_strategy("warp-drive").is_err());
        // The canonical Display names round-trip too (server spellings).
        for s in ["navigational", "bounded-nested-loop", "naive-nested-loop"] {
            assert!(parse_strategy(s).is_ok(), "{s}");
        }
    }

    /// `query` over a missing or unparsable file must come back as a
    /// one-line `Err` (which `main` turns into `error: ...` on stderr
    /// and a nonzero exit), never a panic or a multi-line backtrace.
    #[test]
    fn query_error_paths_are_one_line_diagnostics() {
        let missing = run(&s(&["query", "/nonexistent/no-such.xml", "//a"]));
        let err = missing.unwrap_err();
        assert!(err.contains("/nonexistent/no-such.xml"), "{err}");
        assert!(!err.contains('\n'), "multi-line: {err}");

        let bad = tmp("unparsable.xml");
        std::fs::write(&bad, "<r><open>never closed").unwrap();
        let err = run(&s(&["query", &bad, "//a"])).unwrap_err();
        assert!(err.contains("unparsable.xml"), "{err}");
        assert!(!err.contains('\n'), "multi-line: {err}");

        // A corrupt .blsm snapshot: decode error, still one line.
        let corrupt = tmp("corrupt.blsm");
        std::fs::write(&corrupt, b"BLM1this is not a snapshot").unwrap();
        let err = run(&s(&["query", &corrupt, "//a"])).unwrap_err();
        assert!(!err.contains('\n'), "multi-line: {err}");

        // A syntactically invalid query over a good document.
        let good = tmp("good.xml");
        std::fs::write(&good, "<r><a/></r>").unwrap();
        let err = run(&s(&["query", &good, "//a["])).unwrap_err();
        assert!(!err.contains('\n'), "multi-line: {err}");
    }

    #[test]
    fn serve_flag_parsing() {
        let config = parse_serve_config(&s(&[
            "serve", "--addr", "127.0.0.1:0", "--workers", "2", "--threads", "3",
            "--deadline-ms", "250", "--catalog-mb", "64",
        ]))
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.workers, 2);
        assert_eq!(config.query_threads, 3);
        assert_eq!(config.deadline, Some(std::time::Duration::from_millis(250)));
        assert_eq!(config.catalog_bytes, 64 * 1024 * 1024);

        assert_eq!(parse_serve_config(&s(&["serve", "--deadline-ms", "0"])).unwrap().deadline, None);
        assert_eq!(parse_serve_config(&s(&["serve"])).unwrap().store_dir, None);
        assert_eq!(
            parse_serve_config(&s(&["serve", "--store-dir", "/var/lib/blossom"]))
                .unwrap()
                .store_dir
                .as_deref(),
            Some("/var/lib/blossom")
        );
        assert!(parse_serve_config(&s(&["serve", "--workers", "0"])).is_err());
        assert!(parse_serve_config(&s(&["serve", "--catalog-mb", "lots"])).is_err());

        // Event-loop serving knobs.
        let config = parse_serve_config(&s(&[
            "serve", "--io-model", "thread-per-request", "--io-threads", "4",
            "--max-queue", "16", "--batch", "off",
        ]))
        .unwrap();
        assert_eq!(config.io_model, IoModel::ThreadPerRequest);
        assert_eq!(config.io_threads, 4);
        assert_eq!(config.max_queue, 16);
        assert!(!config.batch);
        let defaults = parse_serve_config(&s(&["serve"])).unwrap();
        assert_eq!(defaults.io_model, IoModel::EventLoop);
        assert_eq!(defaults.io_threads, 2);
        assert_eq!(defaults.max_queue, 1024);
        assert!(defaults.batch);
        assert!(parse_serve_config(&s(&["serve", "--io-model", "coroutines"])).is_err());
        assert!(parse_serve_config(&s(&["serve", "--io-threads", "0"])).is_err());
        assert!(parse_serve_config(&s(&["serve", "--max-queue", "0"])).is_err());
        assert!(parse_serve_config(&s(&["serve", "--batch", "maybe"])).is_err());

        // Observability knobs.
        let config = parse_serve_config(&s(&[
            "serve", "--slow-ms", "50", "--access-log", "/tmp/blossomd.log",
            "--log-sample", "100",
        ]))
        .unwrap();
        assert_eq!(config.slow_ms, Some(50));
        assert_eq!(
            config.access_log,
            blossomtree::server::accesslog::LogTarget::File("/tmp/blossomd.log".into())
        );
        assert_eq!(config.log_sample, 100);
        assert_eq!(defaults.slow_ms, None);
        assert_eq!(defaults.access_log, blossomtree::server::accesslog::LogTarget::Stderr);
        assert_eq!(defaults.log_sample, 0);
        assert_eq!(
            parse_serve_config(&s(&["serve", "--slow-ms", "0"])).unwrap().slow_ms,
            None
        );
        assert_eq!(
            parse_serve_config(&s(&["serve", "--access-log", "off"])).unwrap().access_log,
            blossomtree::server::accesslog::LogTarget::Off
        );
        assert!(parse_serve_config(&s(&["serve", "--slow-ms", "fast"])).is_err());
        assert!(parse_serve_config(&s(&["serve", "--log-sample", "-1"])).is_err());

        let loads = s(&["serve", "--load", "a=/tmp/a.xml", "--load", "b=/tmp/b.blsm"]);
        let pairs = flag_pairs(&loads, "--load").unwrap();
        assert_eq!(pairs, vec![("a", "/tmp/a.xml"), ("b", "/tmp/b.blsm")]);
        assert!(flag_pairs(&s(&["serve", "--load", "nopath"]), "--load").is_err());
        assert!(flag_pairs(&s(&["serve", "--load"]), "--load").is_err());
    }

    /// `serve --load` with a bad path must fail up front with the usual
    /// one-line diagnostic instead of starting a half-initialized server.
    #[test]
    fn serve_preload_errors_are_one_line() {
        let err = run(&s(&[
            "serve", "--addr", "127.0.0.1:0", "--load", "bib=/nonexistent/bib.xml",
        ]))
        .unwrap_err();
        assert!(err.contains("/nonexistent/bib.xml"), "{err}");
        assert!(!err.contains('\n'), "multi-line: {err}");
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse_threads(&s(&["query", "--threads", "4"])).unwrap(), 4);
        assert!(parse_threads(&s(&["query"])).unwrap() >= 1);
        assert!(parse_threads(&s(&["query", "--threads", "0"])).is_err());
        assert!(parse_threads(&s(&["query", "--threads", "many"])).is_err());
    }

    #[test]
    fn query_results_identical_across_thread_counts() {
        let xml = tmp("par.xml");
        let mut text = String::from("<bib>");
        for i in 0..50 {
            text.push_str(&format!("<book><title>t{i}</title></book>"));
        }
        text.push_str("</bib>");
        std::fs::write(&xml, &text).unwrap();
        let seq = run(&s(&["query", &xml, "//book/title", "--threads", "1"])).unwrap();
        for n in ["2", "4", "8"] {
            let par = run(&s(&["query", &xml, "//book/title", "--threads", n])).unwrap();
            assert_eq!(par, seq, "--threads {n}");
        }
    }
}
