//! Umbrella crate re-exporting the BlossomTree workspace.
pub use blossom_core as core;
pub use blossom_flwor as flwor;
pub use blossom_oracle as oracle;
pub use blossom_server as server;
pub use blossom_storage as storage;
pub use blossom_xml as xml;
pub use blossom_xmlgen as xmlgen;
pub use blossom_xpath as xpath;
