//! Server-wide counters for `/stats`: request/error tallies, a
//! log-scaled latency histogram, and per-strategy execution counts fed
//! from each request's query trace.
//!
//! Everything is lock-free atomics except the strategy tally (a small
//! mutex-guarded map touched once per query). The histogram buckets are
//! powers of two in microseconds — enough resolution for p50/p95/p99
//! estimates server-side; the load harness computes exact percentiles
//! from its own samples.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of log2 latency buckets: bucket `i` counts requests with
/// `2^i <= µs < 2^(i+1)` (bucket 0 is `< 2µs`, the last is open-ended).
pub const BUCKETS: usize = 32;

#[derive(Default)]
pub struct Metrics {
    pub requests: AtomicU64,
    /// 4xx responses (client errors: bad queries, unknown documents).
    pub client_errors: AtomicU64,
    /// 5xx responses other than deadline aborts.
    pub server_errors: AtomicU64,
    pub deadline_aborts: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
    latency_us_total: AtomicU64,
    strategies: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one successfully served query's latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).saturating_sub(1).min(BUCKETS - 1);
        self.histogram[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_us_total.fetch_add(us, Ordering::Relaxed);
    }

    /// Record which strategy a query actually executed with.
    pub fn record_strategy(&self, strategy: &str) {
        *self.strategies.lock().unwrap().entry(strategy.to_string()).or_default() += 1;
    }

    /// Estimate the `q`-th percentile (0..=100) from the histogram, as
    /// the upper bound of the bucket holding that rank. `None` until at
    /// least one latency is recorded.
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> =
            self.histogram.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        None
    }

    /// Render the `/stats` fields this struct owns as JSON object
    /// entries (no surrounding braces).
    pub fn render_json_fields(&self) -> String {
        let requests = self.requests.load(Ordering::Relaxed);
        let latency_total = self.latency_us_total.load(Ordering::Relaxed);
        let served: u64 = self.histogram.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let strategies = self.strategies.lock().unwrap();
        let strategy_fields = strategies
            .iter()
            .map(|(s, n)| format!("{}: {n}", crate::json_str(s)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "\"requests\": {requests}, \
             \"client_errors\": {}, \
             \"server_errors\": {}, \
             \"deadline_aborts\": {}, \
             \"latency_us\": {{\"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}, \
             \"strategies\": {{{strategy_fields}}}",
            self.client_errors.load(Ordering::Relaxed),
            self.server_errors.load(Ordering::Relaxed),
            self.deadline_aborts.load(Ordering::Relaxed),
            if served > 0 { latency_total / served } else { 0 },
            self.percentile_us(50.0).unwrap_or(0),
            self.percentile_us(95.0).unwrap_or(0),
            self.percentile_us(99.0).unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_the_histogram() {
        let m = Metrics::new();
        assert_eq!(m.percentile_us(50.0), None);
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(100));
        }
        m.record_latency(Duration::from_millis(50));
        // 100µs lands in the 64..128 bucket (upper bound 128); 50ms far
        // above it. The p50 must not be dragged up by the one outlier.
        assert_eq!(m.percentile_us(50.0), Some(128));
        assert!(m.percentile_us(99.9).unwrap() > 10_000);
    }

    #[test]
    fn stats_json_includes_strategy_tallies() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.record_strategy("pipelined");
        m.record_strategy("pipelined");
        m.record_strategy("navigational");
        let json = m.render_json_fields();
        assert!(json.contains("\"pipelined\": 2"), "{json}");
        assert!(json.contains("\"navigational\": 1"), "{json}");
        assert!(json.contains("\"requests\": 3"), "{json}");
    }
}
