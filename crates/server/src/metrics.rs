//! Server-wide counters for `/stats`: request/error tallies, log-scaled
//! latency histograms (global and per endpoint), batching and admission
//! counters, event-loop activity gauges, and per-strategy execution
//! counts fed from each request's query trace.
//!
//! Everything is lock-free atomics except the strategy tally (a small
//! mutex-guarded map touched once per query). The histogram buckets are
//! powers of two in microseconds — enough resolution for p50/p95/p99
//! estimates server-side; the load harness computes exact percentiles
//! from its own samples.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of log2 latency buckets: bucket `i` counts requests with
/// `2^i <= µs < 2^(i+1)` (bucket 0 is `< 2µs`, the last is open-ended).
pub const BUCKETS: usize = 32;

/// A lock-free log2-microsecond latency histogram.
#[derive(Default)]
pub struct Hist {
    buckets: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
}

impl Hist {
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).saturating_sub(1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Estimate the `q`-th percentile (0..=100) as the upper bound of
    /// the bucket holding that rank; `None` until something is recorded.
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        None
    }

    /// `{"count": …, "mean": …, "p50": …, "p95": …, "p99": …}`.
    pub fn render_json(&self) -> String {
        let count = self.count();
        let total = self.total_us.load(Ordering::Relaxed);
        format!(
            "{{\"count\": {count}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            if count > 0 { total / count } else { 0 },
            self.percentile_us(50.0).unwrap_or(0),
            self.percentile_us(95.0).unwrap_or(0),
            self.percentile_us(99.0).unwrap_or(0),
        )
    }
}

/// The endpoints with dedicated latency histograms; anything else lands
/// in the trailing `other` bucket.
pub const ENDPOINTS: [&str; 7] =
    ["/query", "/load", "/update", "/stats", "/healthz", "/shutdown", "other"];

#[derive(Default)]
pub struct Metrics {
    pub requests: AtomicU64,
    /// 4xx responses (client errors: bad queries, unknown documents).
    pub client_errors: AtomicU64,
    /// 5xx responses other than deadline aborts and admission 503s.
    pub server_errors: AtomicU64,
    pub deadline_aborts: AtomicU64,
    /// 503s from the bounded execution queue (event-loop admission
    /// control), distinct from deadline aborts.
    pub admission_rejections: AtomicU64,
    /// Requests served by an evaluation shared with at least one other
    /// request (leaders of multi-member batches count too).
    pub batched_requests: AtomicU64,
    /// Evaluations the coalescer avoided: Σ (batch size − 1).
    pub evaluations_saved: AtomicU64,
    /// Returns from the I/O threads' readiness waits. Idle keep-alive
    /// connections contribute nothing — the regression tests pin this.
    pub io_wakeups: AtomicU64,
    /// CPU microseconds consumed by the I/O threads (thread-CPU clock,
    /// self-sampled each loop iteration).
    pub io_cpu_us: AtomicU64,
    /// Successful `POST /update` requests (snapshot swaps).
    pub updates: AtomicU64,
    /// Total mutations applied across successful updates.
    pub mutations_applied: AtomicU64,
    /// Plan-cache entries dropped by update-scoped invalidation.
    pub plans_invalidated: AtomicU64,
    /// Request latency (arrival to response completion), all endpoints.
    latency: Hist,
    /// Per-endpoint request latency, indexed like [`ENDPOINTS`].
    endpoints: [Hist; ENDPOINTS.len()],
    strategies: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one served request's latency under its endpoint path.
    pub fn record_latency(&self, path: &str, elapsed: Duration) {
        self.latency.record(elapsed);
        let idx = ENDPOINTS.iter().position(|e| *e == path).unwrap_or(ENDPOINTS.len() - 1);
        self.endpoints[idx].record(elapsed);
    }

    /// Record which strategy a query evaluation actually executed with.
    pub fn record_strategy(&self, strategy: &str) {
        *self.strategies.lock().unwrap().entry(strategy.to_string()).or_default() += 1;
    }

    /// Tally an error response by status class.
    pub fn track_error(&self, status: u16) {
        if status >= 500 {
            if status == 503 {
                self.deadline_aborts.fetch_add(1, Ordering::Relaxed);
            } else {
                self.server_errors.fetch_add(1, Ordering::Relaxed);
            }
        } else if status >= 400 {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Estimate the `q`-th percentile of the global latency histogram.
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        self.latency.percentile_us(q)
    }

    /// Render the `/stats` fields this struct owns as JSON object
    /// entries (no surrounding braces). Queue facts live on the
    /// scheduler and are rendered by the caller.
    pub fn render_json_fields(&self) -> String {
        let requests = self.requests.load(Ordering::Relaxed);
        let strategies = self.strategies.lock().unwrap();
        let strategy_fields = strategies
            .iter()
            .map(|(s, n)| format!("{}: {n}", crate::json_str(s)))
            .collect::<Vec<_>>()
            .join(", ");
        let endpoint_fields = ENDPOINTS
            .iter()
            .zip(&self.endpoints)
            .map(|(name, hist)| format!("{}: {}", crate::json_str(name), hist.render_json()))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "\"requests\": {requests}, \
             \"client_errors\": {}, \
             \"server_errors\": {}, \
             \"deadline_aborts\": {}, \
             \"admission_rejections\": {}, \
             \"batching\": {{\"batched_requests\": {}, \"evaluations_saved\": {}}}, \
             \"io\": {{\"wakeups\": {}, \"cpu_us\": {}}}, \
             \"updates\": {{\"count\": {}, \"mutations_applied\": {}, \"plans_invalidated\": {}}}, \
             \"latency_us\": {}, \
             \"endpoints\": {{{endpoint_fields}}}, \
             \"strategies\": {{{strategy_fields}}}",
            self.client_errors.load(Ordering::Relaxed),
            self.server_errors.load(Ordering::Relaxed),
            self.deadline_aborts.load(Ordering::Relaxed),
            self.admission_rejections.load(Ordering::Relaxed),
            self.batched_requests.load(Ordering::Relaxed),
            self.evaluations_saved.load(Ordering::Relaxed),
            self.io_wakeups.load(Ordering::Relaxed),
            self.io_cpu_us.load(Ordering::Relaxed),
            self.updates.load(Ordering::Relaxed),
            self.mutations_applied.load(Ordering::Relaxed),
            self.plans_invalidated.load(Ordering::Relaxed),
            self.latency.render_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_the_histogram() {
        let m = Metrics::new();
        assert_eq!(m.percentile_us(50.0), None);
        for _ in 0..99 {
            m.record_latency("/query", Duration::from_micros(100));
        }
        m.record_latency("/query", Duration::from_millis(50));
        // 100µs lands in the 64..128 bucket (upper bound 128); 50ms far
        // above it. The p50 must not be dragged up by the one outlier.
        assert_eq!(m.percentile_us(50.0), Some(128));
        assert!(m.percentile_us(99.9).unwrap() > 10_000);
    }

    #[test]
    fn stats_json_includes_strategy_tallies() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.record_strategy("pipelined");
        m.record_strategy("pipelined");
        m.record_strategy("navigational");
        let json = m.render_json_fields();
        assert!(json.contains("\"pipelined\": 2"), "{json}");
        assert!(json.contains("\"navigational\": 1"), "{json}");
        assert!(json.contains("\"requests\": 3"), "{json}");
    }

    #[test]
    fn endpoint_histograms_are_separate() {
        let m = Metrics::new();
        m.record_latency("/query", Duration::from_micros(100));
        m.record_latency("/query", Duration::from_micros(100));
        m.record_latency("/load", Duration::from_micros(100));
        m.record_latency("/made/up/route", Duration::from_micros(100));
        let json = m.render_json_fields();
        assert!(json.contains("\"endpoints\""), "{json}");
        assert!(json.contains("\"/query\": {\"count\": 2"), "{json}");
        assert!(json.contains("\"/load\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"other\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"/stats\": {\"count\": 0"), "{json}");
    }

    #[test]
    fn batching_and_admission_fields_render() {
        let m = Metrics::new();
        m.batched_requests.fetch_add(5, Ordering::Relaxed);
        m.evaluations_saved.fetch_add(3, Ordering::Relaxed);
        m.admission_rejections.fetch_add(2, Ordering::Relaxed);
        let json = m.render_json_fields();
        assert!(json.contains("\"batching\": {\"batched_requests\": 5, \"evaluations_saved\": 3}"), "{json}");
        assert!(json.contains("\"admission_rejections\": 2"), "{json}");
        assert!(json.contains("\"io\": {\"wakeups\": 0, \"cpu_us\": 0}"), "{json}");
    }

    #[test]
    fn update_counters_render() {
        let m = Metrics::new();
        m.updates.fetch_add(2, Ordering::Relaxed);
        m.mutations_applied.fetch_add(7, Ordering::Relaxed);
        m.plans_invalidated.fetch_add(3, Ordering::Relaxed);
        m.record_latency("/update", Duration::from_micros(100));
        let json = m.render_json_fields();
        assert!(
            json.contains("\"updates\": {\"count\": 2, \"mutations_applied\": 7, \"plans_invalidated\": 3}"),
            "{json}"
        );
        assert!(json.contains("\"/update\": {\"count\": 1"), "{json}");
    }

    #[test]
    fn track_error_classifies_statuses() {
        let m = Metrics::new();
        m.track_error(404);
        m.track_error(400);
        m.track_error(503);
        m.track_error(500);
        assert_eq!(m.client_errors.load(Ordering::Relaxed), 2);
        assert_eq!(m.deadline_aborts.load(Ordering::Relaxed), 1);
        assert_eq!(m.server_errors.load(Ordering::Relaxed), 1);
    }
}
