//! Server-wide counters for `/stats` and `GET /metrics`: request/error
//! tallies, log-scaled latency histograms (global, per endpoint, and
//! per pipeline stage), 60-second rolling windows, batching and
//! admission counters, event-loop activity gauges, and per-strategy
//! execution counts fed from each request's query trace.
//!
//! Everything is lock-free atomics except the strategy tally (a small
//! mutex-guarded map touched once per query). The histogram buckets are
//! powers of two in microseconds — enough resolution for p50/p95/p99
//! estimates server-side; the load harness computes exact percentiles
//! from its own samples. Percentile estimates interpolate linearly
//! *within* the resolved bucket (midpoint rule), so they are accurate
//! to a fraction of a bucket instead of snapping to a power of two.
//!
//! Two histogram families coexist per (endpoint, stage):
//!
//! * cumulative [`Hist`]s — monotone counters, the correct shape for
//!   Prometheus `_bucket/_sum/_count` exposition (scrapers window them
//!   with `rate()`), and what the concurrency hammer test checks for
//!   lost counts (pure `fetch_add`, nothing is ever reset);
//! * [`Rolling`] 60×1s rings — the "last minute" view rendered in
//!   `/stats` under `window_60s`. Slot reuse is a CAS race by design;
//!   a recorder that loses the race against a reset may drop that one
//!   observation from the *window* (never from the cumulative family).

use crate::span::{RequestSpan, STAGE_COUNT, STAGE_NAMES};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log2 latency buckets: bucket `i` counts requests with
/// `2^i <= µs < 2^(i+1)` (bucket 0 is `< 2µs`, the last is open-ended).
pub const BUCKETS: usize = 32;

/// Seconds covered by the rolling windows.
pub const WINDOW_SECS: usize = 60;

fn bucket_of(us: u64) -> usize {
    (64 - us.leading_zeros() as usize).saturating_sub(1).min(BUCKETS - 1)
}

/// Interpolated percentile over log2 bucket counts: resolve the bucket
/// holding the `q`-th rank, then place the rank linearly within the
/// bucket's `[2^i, 2^(i+1))` span under the midpoint rule. `None` while
/// empty.
fn percentile_from_buckets(counts: &[u64; BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if seen + c >= rank && c > 0 {
            let lo = if i == 0 { 0 } else { 1u64 << i };
            let hi = 1u64 << (i + 1).min(63);
            let pos = (rank - seen) as f64 - 0.5;
            let est = lo as f64 + (hi - lo) as f64 * (pos / c as f64).clamp(0.0, 1.0);
            return Some(est.round() as u64);
        }
        seen += c;
    }
    None
}

fn stats_json(count: u64, total_us: u64, counts: &[u64; BUCKETS]) -> String {
    format!(
        "{{\"count\": {count}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        if count > 0 { total_us / count } else { 0 },
        percentile_from_buckets(counts, 50.0).unwrap_or(0),
        percentile_from_buckets(counts, 95.0).unwrap_or(0),
        percentile_from_buckets(counts, 99.0).unwrap_or(0),
    )
}

/// A lock-free log2-microsecond latency histogram (cumulative:
/// observations are only ever added, never reset).
#[derive(Default)]
pub struct Hist {
    buckets: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
}

impl Hist {
    pub fn record(&self, elapsed: Duration) {
        self.record_us(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A consistent-enough copy of the bucket counts and the µs sum
    /// (each load is atomic; the tuple is not, which exposition
    /// tolerates).
    pub fn snapshot(&self) -> ([u64; BUCKETS], u64) {
        let mut counts = [0u64; BUCKETS];
        for (i, c) in self.buckets.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        (counts, self.total_us.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-th percentile (0..=100) by interpolating within
    /// the bucket holding that rank; `None` until something is
    /// recorded.
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        let (counts, _) = self.snapshot();
        percentile_from_buckets(&counts, q)
    }

    /// `{"count": …, "mean": …, "p50": …, "p95": …, "p99": …}`.
    pub fn render_json(&self) -> String {
        let (counts, total) = self.snapshot();
        stats_json(counts.iter().sum(), total, &counts)
    }
}

/// One second of a rolling window.
struct RollSlot {
    /// Which absolute second this slot currently holds; `u64::MAX`
    /// means never used.
    sec: AtomicU64,
    count: AtomicU64,
    total_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A 60-second ring of one-second histogram slots. Writers CAS the
/// slot's second label forward and zero it on reuse; readers sum the
/// slots whose label falls inside the window. Used for the `/stats`
/// `window_60s` view only — cumulative accounting lives in [`Hist`].
pub struct Rolling {
    slots: Box<[RollSlot]>,
}

impl Rolling {
    fn new() -> Rolling {
        let slots = (0..WINDOW_SECS)
            .map(|_| RollSlot {
                sec: AtomicU64::new(u64::MAX),
                count: AtomicU64::new(0),
                total_us: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Rolling { slots }
    }

    /// Record one observation against absolute second `sec`.
    pub fn record_us(&self, sec: u64, us: u64) {
        let slot = &self.slots[(sec as usize) % WINDOW_SECS];
        loop {
            let cur = slot.sec.load(Ordering::Acquire);
            if cur == sec {
                break;
            }
            if cur != u64::MAX && cur > sec {
                // A newer second already claimed the slot (reader clock
                // raced backwards across threads); drop from the window.
                return;
            }
            if slot
                .sec
                .compare_exchange(cur, sec, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.count.store(0, Ordering::Relaxed);
                slot.total_us.store(0, Ordering::Relaxed);
                for b in &slot.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                break;
            }
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.total_us.fetch_add(us, Ordering::Relaxed);
        slot.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Sum the slots covering `(now_sec - 59) ..= now_sec`.
    pub fn window(&self, now_sec: u64) -> WindowStats {
        let mut stats = WindowStats::default();
        for slot in self.slots.iter() {
            let sec = slot.sec.load(Ordering::Acquire);
            if sec == u64::MAX || sec > now_sec || now_sec - sec >= WINDOW_SECS as u64 {
                continue;
            }
            stats.count += slot.count.load(Ordering::Relaxed);
            stats.total_us += slot.total_us.load(Ordering::Relaxed);
            for (i, b) in slot.buckets.iter().enumerate() {
                stats.buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        stats
    }
}

/// Aggregated view of a rolling window.
pub struct WindowStats {
    pub count: u64,
    pub total_us: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for WindowStats {
    fn default() -> WindowStats {
        WindowStats { count: 0, total_us: 0, buckets: [0; BUCKETS] }
    }
}

impl WindowStats {
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        percentile_from_buckets(&self.buckets, q)
    }

    pub fn render_json(&self) -> String {
        stats_json(self.count, self.total_us, &self.buckets)
    }
}

/// The endpoints with dedicated latency histograms; anything else lands
/// in the trailing `other` bucket.
pub const ENDPOINTS: [&str; 8] =
    ["/query", "/load", "/update", "/stats", "/healthz", "/shutdown", "/metrics", "other"];

/// Resolve a request path to its [`ENDPOINTS`] index. Matching is
/// normalized: a query string (defensive — the HTTP layer already
/// splits it off) and any run of trailing slashes are ignored, so
/// `/healthz/` and `/shutdown//` land in their own histograms instead
/// of `other`.
pub fn endpoint_index(path: &str) -> usize {
    let mut p = path.split('?').next().unwrap_or(path);
    while p.len() > 1 && p.ends_with('/') {
        p = &p[..p.len() - 1];
    }
    ENDPOINTS.iter().position(|e| *e == p).unwrap_or(ENDPOINTS.len() - 1)
}

/// Gauges owned by other subsystems, handed in for one `/metrics`
/// render.
pub struct PromGauges {
    pub io_model: String,
    pub uptime_seconds: f64,
    pub queue_depth: u64,
    pub queue_peak: u64,
    pub queue_capacity: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_entries: u64,
    pub cache_capacity: u64,
    pub catalog_documents: u64,
    pub catalog_bytes: u64,
    pub catalog_evictions: u64,
    /// Entries spilled to the store directory (disk only, no mapping).
    pub catalog_spilled_documents: u64,
    /// Generation-file bytes behind resident mapped entries (page
    /// cache, reclaimable — distinct from heap `catalog_bytes`).
    pub catalog_mapped_bytes: u64,
    /// Generation-file bytes of spilled entries.
    pub catalog_spilled_bytes: u64,
    /// Lifetime resident→disk spills.
    pub catalog_spills: u64,
    /// Lifetime disk→resident remaps.
    pub catalog_remaps: u64,
}

pub struct Metrics {
    pub requests: AtomicU64,
    /// 4xx responses (client errors: bad queries, unknown documents).
    pub client_errors: AtomicU64,
    /// 5xx responses other than deadline aborts and admission 503s.
    pub server_errors: AtomicU64,
    pub deadline_aborts: AtomicU64,
    /// 503s from the bounded execution queue (event-loop admission
    /// control), distinct from deadline aborts.
    pub admission_rejections: AtomicU64,
    /// Requests served by an evaluation shared with at least one other
    /// request (leaders of multi-member batches count too).
    pub batched_requests: AtomicU64,
    /// Evaluations the coalescer avoided: Σ (batch size − 1).
    pub evaluations_saved: AtomicU64,
    /// Returns from the I/O threads' readiness waits. Idle keep-alive
    /// connections contribute nothing — the regression tests pin this.
    pub io_wakeups: AtomicU64,
    /// CPU microseconds consumed by the I/O threads (thread-CPU clock,
    /// self-sampled each loop iteration).
    pub io_cpu_us: AtomicU64,
    /// Successful `POST /update` requests (snapshot swaps).
    pub updates: AtomicU64,
    /// Total mutations applied across successful updates.
    pub mutations_applied: AtomicU64,
    /// Plan-cache entries dropped by update-scoped invalidation.
    pub plans_invalidated: AtomicU64,
    /// Requests admitted but not yet fully written back (span open).
    /// Signed so that direct `observe_span` callers (tests) cannot
    /// wrap it; rendered clamped at zero.
    pub inflight: AtomicI64,
    /// Zero point of the rolling windows' second labels.
    epoch: Instant,
    /// Request latency (arrival to response completion), all endpoints.
    latency: Hist,
    /// Per-endpoint request latency, indexed like [`ENDPOINTS`].
    endpoints: [Hist; ENDPOINTS.len()],
    /// Cumulative per-(endpoint, stage) lap histograms.
    stage_hists: Box<[[Hist; STAGE_COUNT]]>,
    /// Rolling 60s windows per endpoint: one ring per stage plus a
    /// trailing ring (index [`STAGE_COUNT`]) for total wall time.
    rolling: Box<[[Rolling; STAGE_COUNT + 1]]>,
    strategies: Mutex<BTreeMap<String, u64>>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics {
            requests: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            deadline_aborts: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            evaluations_saved: AtomicU64::new(0),
            io_wakeups: AtomicU64::new(0),
            io_cpu_us: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            mutations_applied: AtomicU64::new(0),
            plans_invalidated: AtomicU64::new(0),
            inflight: AtomicI64::new(0),
            epoch: Instant::now(),
            latency: Hist::default(),
            endpoints: Default::default(),
            stage_hists: (0..ENDPOINTS.len())
                .map(|_| std::array::from_fn(|_| Hist::default()))
                .collect(),
            rolling: (0..ENDPOINTS.len())
                .map(|_| std::array::from_fn(|_| Rolling::new()))
                .collect(),
            strategies: Mutex::new(BTreeMap::new()),
        }
    }

    /// The current second label for rolling-window records.
    pub fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Fold one finished request span into every surface: the global
    /// and per-endpoint wall-latency histograms, the cumulative
    /// per-stage histograms, the rolling windows, and the inflight
    /// gauge. All seven stages are recorded per request (absent stages
    /// as 0µs laps), so each stage family's count equals the endpoint's
    /// request count and stage sums add up to the wall sum exactly.
    pub fn observe_span(&self, span: &RequestSpan) {
        let e = span.endpoint.min(ENDPOINTS.len() - 1);
        let sec = self.now_sec();
        let wall = span.total_us();
        self.latency.record_us(wall);
        self.endpoints[e].record_us(wall);
        self.rolling[e][STAGE_COUNT].record_us(sec, wall);
        for (s, &us) in span.stages_us().iter().enumerate() {
            self.stage_hists[e][s].record_us(us);
            self.rolling[e][s].record_us(sec, us);
        }
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record one served request's latency under its endpoint path
    /// (normalized via [`endpoint_index`]).
    pub fn record_latency(&self, path: &str, elapsed: Duration) {
        self.latency.record(elapsed);
        self.endpoints[endpoint_index(path)].record(elapsed);
    }

    /// Record which strategy a query evaluation actually executed with.
    pub fn record_strategy(&self, strategy: &str) {
        *self.strategies.lock().unwrap().entry(strategy.to_string()).or_default() += 1;
    }

    /// Tally an error response by status class.
    pub fn track_error(&self, status: u16) {
        if status >= 500 {
            if status == 503 {
                self.deadline_aborts.fetch_add(1, Ordering::Relaxed);
            } else {
                self.server_errors.fetch_add(1, Ordering::Relaxed);
            }
        } else if status >= 400 {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Estimate the `q`-th percentile of the global latency histogram.
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        self.latency.percentile_us(q)
    }

    fn inflight_now(&self) -> i64 {
        self.inflight.load(Ordering::Relaxed).max(0)
    }

    /// The `window_60s` object: per endpoint with traffic in the last
    /// minute, total wall-time stats plus per-stage stats.
    fn render_window_json(&self) -> String {
        let sec = self.now_sec();
        let fields = ENDPOINTS
            .iter()
            .enumerate()
            .filter_map(|(e, name)| {
                let total = self.rolling[e][STAGE_COUNT].window(sec);
                if total.count == 0 {
                    return None;
                }
                let stages = STAGE_NAMES
                    .iter()
                    .enumerate()
                    .map(|(s, stage)| {
                        format!(
                            "{}: {}",
                            crate::json_str(stage),
                            self.rolling[e][s].window(sec).render_json()
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                Some(format!(
                    "{}: {{\"total\": {}, \"stages\": {{{stages}}}}}",
                    crate::json_str(name),
                    total.render_json()
                ))
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{fields}}}")
    }

    /// Render the `/stats` fields this struct owns as JSON object
    /// entries (no surrounding braces). Queue facts live on the
    /// scheduler and are rendered by the caller.
    pub fn render_json_fields(&self) -> String {
        let requests = self.requests.load(Ordering::Relaxed);
        let strategies = self.strategies.lock().unwrap();
        let strategy_fields = strategies
            .iter()
            .map(|(s, n)| format!("{}: {n}", crate::json_str(s)))
            .collect::<Vec<_>>()
            .join(", ");
        let endpoint_fields = ENDPOINTS
            .iter()
            .zip(&self.endpoints)
            .map(|(name, hist)| format!("{}: {}", crate::json_str(name), hist.render_json()))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "\"requests\": {requests}, \
             \"inflight\": {}, \
             \"client_errors\": {}, \
             \"server_errors\": {}, \
             \"deadline_aborts\": {}, \
             \"admission_rejections\": {}, \
             \"batching\": {{\"batched_requests\": {}, \"evaluations_saved\": {}}}, \
             \"io\": {{\"wakeups\": {}, \"cpu_us\": {}}}, \
             \"updates\": {{\"count\": {}, \"mutations_applied\": {}, \"plans_invalidated\": {}}}, \
             \"latency_us\": {}, \
             \"endpoints\": {{{endpoint_fields}}}, \
             \"window_60s\": {}, \
             \"strategies\": {{{strategy_fields}}}",
            self.inflight_now(),
            self.client_errors.load(Ordering::Relaxed),
            self.server_errors.load(Ordering::Relaxed),
            self.deadline_aborts.load(Ordering::Relaxed),
            self.admission_rejections.load(Ordering::Relaxed),
            self.batched_requests.load(Ordering::Relaxed),
            self.evaluations_saved.load(Ordering::Relaxed),
            self.io_wakeups.load(Ordering::Relaxed),
            self.io_cpu_us.load(Ordering::Relaxed),
            self.updates.load(Ordering::Relaxed),
            self.mutations_applied.load(Ordering::Relaxed),
            self.plans_invalidated.load(Ordering::Relaxed),
            self.latency.render_json(),
            self.render_window_json(),
        )
    }

    /// Render the full Prometheus text exposition (format 0.0.4) from
    /// this struct's counters/histograms plus the caller-owned gauges.
    pub fn render_prometheus(&self, g: &PromGauges) -> String {
        use crate::promtext::{header, histogram, sample};
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        let mut out = String::with_capacity(16 * 1024);

        header(&mut out, "blossomd_info", "Build/runtime facts as labels.", "gauge");
        sample(&mut out, "blossomd_info", &[("io_model", &g.io_model)], 1.0);
        header(&mut out, "blossomd_uptime_seconds", "Seconds since the server started.", "gauge");
        sample(&mut out, "blossomd_uptime_seconds", &[], g.uptime_seconds);

        header(&mut out, "blossomd_requests_total", "Requests admitted (all endpoints).", "counter");
        sample(&mut out, "blossomd_requests_total", &[], c(&self.requests));
        header(
            &mut out,
            "blossomd_inflight_requests",
            "Requests admitted but not yet fully written back.",
            "gauge",
        );
        sample(&mut out, "blossomd_inflight_requests", &[], self.inflight_now() as f64);
        header(&mut out, "blossomd_errors_total", "Error responses by status class.", "counter");
        sample(&mut out, "blossomd_errors_total", &[("class", "client")], c(&self.client_errors));
        sample(&mut out, "blossomd_errors_total", &[("class", "server")], c(&self.server_errors));
        header(
            &mut out,
            "blossomd_deadline_aborts_total",
            "503s from cooperative deadline aborts.",
            "counter",
        );
        sample(&mut out, "blossomd_deadline_aborts_total", &[], c(&self.deadline_aborts));
        header(
            &mut out,
            "blossomd_admission_rejections_total",
            "503s from the bounded execution queue.",
            "counter",
        );
        sample(&mut out, "blossomd_admission_rejections_total", &[], c(&self.admission_rejections));
        header(
            &mut out,
            "blossomd_batched_requests_total",
            "Requests served by a shared-scan evaluation.",
            "counter",
        );
        sample(&mut out, "blossomd_batched_requests_total", &[], c(&self.batched_requests));
        header(
            &mut out,
            "blossomd_evaluations_saved_total",
            "Evaluations avoided by coalescing.",
            "counter",
        );
        sample(&mut out, "blossomd_evaluations_saved_total", &[], c(&self.evaluations_saved));
        header(&mut out, "blossomd_io_wakeups_total", "I/O thread readiness-wait returns.", "counter");
        sample(&mut out, "blossomd_io_wakeups_total", &[], c(&self.io_wakeups));
        header(
            &mut out,
            "blossomd_io_cpu_seconds_total",
            "CPU seconds consumed by the I/O threads.",
            "counter",
        );
        sample(&mut out, "blossomd_io_cpu_seconds_total", &[], c(&self.io_cpu_us) / 1e6);
        header(&mut out, "blossomd_updates_total", "Successful POST /update snapshot swaps.", "counter");
        sample(&mut out, "blossomd_updates_total", &[], c(&self.updates));
        header(
            &mut out,
            "blossomd_mutations_applied_total",
            "Mutations applied across successful updates.",
            "counter",
        );
        sample(&mut out, "blossomd_mutations_applied_total", &[], c(&self.mutations_applied));
        header(
            &mut out,
            "blossomd_plans_invalidated_total",
            "Plan-cache entries dropped by update invalidation.",
            "counter",
        );
        sample(&mut out, "blossomd_plans_invalidated_total", &[], c(&self.plans_invalidated));

        header(&mut out, "blossomd_queue_depth", "Execution-queue depth.", "gauge");
        sample(&mut out, "blossomd_queue_depth", &[], g.queue_depth as f64);
        header(&mut out, "blossomd_queue_depth_peak", "Execution-queue high-water mark.", "gauge");
        sample(&mut out, "blossomd_queue_depth_peak", &[], g.queue_peak as f64);
        header(&mut out, "blossomd_queue_capacity", "Execution-queue admission bound.", "gauge");
        sample(&mut out, "blossomd_queue_capacity", &[], g.queue_capacity as f64);

        header(&mut out, "blossomd_plan_cache_hits_total", "Shared plan-cache hits.", "counter");
        sample(&mut out, "blossomd_plan_cache_hits_total", &[], g.cache_hits as f64);
        header(&mut out, "blossomd_plan_cache_misses_total", "Shared plan-cache misses.", "counter");
        sample(&mut out, "blossomd_plan_cache_misses_total", &[], g.cache_misses as f64);
        header(&mut out, "blossomd_plan_cache_entries", "Shared plan-cache entries.", "gauge");
        sample(&mut out, "blossomd_plan_cache_entries", &[], g.cache_entries as f64);
        header(&mut out, "blossomd_plan_cache_capacity", "Shared plan-cache capacity.", "gauge");
        sample(&mut out, "blossomd_plan_cache_capacity", &[], g.cache_capacity as f64);

        header(&mut out, "blossomd_catalog_documents", "Documents resident in the catalog.", "gauge");
        sample(&mut out, "blossomd_catalog_documents", &[], g.catalog_documents as f64);
        header(&mut out, "blossomd_catalog_bytes", "Approximate catalog heap bytes.", "gauge");
        sample(&mut out, "blossomd_catalog_bytes", &[], g.catalog_bytes as f64);
        header(&mut out, "blossomd_catalog_evictions_total", "Catalog LRU evictions.", "counter");
        sample(&mut out, "blossomd_catalog_evictions_total", &[], g.catalog_evictions as f64);
        header(
            &mut out,
            "blossomd_catalog_spilled_documents",
            "Catalog entries spilled to the store directory (disk only).",
            "gauge",
        );
        sample(&mut out, "blossomd_catalog_spilled_documents", &[], g.catalog_spilled_documents as f64);
        header(
            &mut out,
            "blossomd_catalog_mapped_bytes",
            "Generation-file bytes behind resident mapped entries (page cache, not heap).",
            "gauge",
        );
        sample(&mut out, "blossomd_catalog_mapped_bytes", &[], g.catalog_mapped_bytes as f64);
        header(
            &mut out,
            "blossomd_catalog_spilled_bytes",
            "Generation-file bytes of spilled catalog entries.",
            "gauge",
        );
        sample(&mut out, "blossomd_catalog_spilled_bytes", &[], g.catalog_spilled_bytes as f64);
        header(&mut out, "blossomd_catalog_spills_total", "Resident-to-disk catalog spills.", "counter");
        sample(&mut out, "blossomd_catalog_spills_total", &[], g.catalog_spills as f64);
        header(&mut out, "blossomd_catalog_remaps_total", "Disk-to-resident catalog remaps.", "counter");
        sample(&mut out, "blossomd_catalog_remaps_total", &[], g.catalog_remaps as f64);

        header(
            &mut out,
            "blossomd_queries_by_strategy_total",
            "Query evaluations by executed strategy.",
            "counter",
        );
        for (strategy, n) in self.strategies.lock().unwrap().iter() {
            sample(&mut out, "blossomd_queries_by_strategy_total", &[("strategy", strategy)], *n as f64);
        }

        header(
            &mut out,
            "blossomd_request_duration_seconds",
            "Request wall time (first byte noticed to last byte written), per endpoint.",
            "histogram",
        );
        for (e, name) in ENDPOINTS.iter().enumerate() {
            let (counts, total_us) = self.endpoints[e].snapshot();
            if counts.iter().sum::<u64>() == 0 {
                continue;
            }
            histogram(
                &mut out,
                "blossomd_request_duration_seconds",
                &[("endpoint", name)],
                &counts,
                total_us,
            );
        }

        header(
            &mut out,
            "blossomd_request_stage_duration_seconds",
            "Per-stage lap time within request lifecycles; stage sums per endpoint add up to the wall-time sum.",
            "histogram",
        );
        for (e, name) in ENDPOINTS.iter().enumerate() {
            for (s, stage) in STAGE_NAMES.iter().enumerate() {
                let (counts, total_us) = self.stage_hists[e][s].snapshot();
                if counts.iter().sum::<u64>() == 0 {
                    continue;
                }
                histogram(
                    &mut out,
                    "blossomd_request_stage_duration_seconds",
                    &[("endpoint", name), ("stage", stage)],
                    &counts,
                    total_us,
                );
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;
    use std::sync::Arc;

    fn gauges() -> PromGauges {
        PromGauges {
            io_model: "event-loop".to_string(),
            uptime_seconds: 1.5,
            queue_depth: 0,
            queue_peak: 3,
            queue_capacity: 1024,
            cache_hits: 10,
            cache_misses: 2,
            cache_entries: 2,
            cache_capacity: 1024,
            catalog_documents: 1,
            catalog_bytes: 12345,
            catalog_evictions: 0,
            catalog_spilled_documents: 2,
            catalog_mapped_bytes: 4096,
            catalog_spilled_bytes: 8192,
            catalog_spills: 3,
            catalog_remaps: 1,
        }
    }

    fn span(endpoint: usize, laps_us: [u64; STAGE_COUNT]) -> RequestSpan {
        let t0 = Instant::now();
        let mut s = RequestSpan::begin(t0);
        s.endpoint = endpoint;
        let mut at = t0;
        for (i, us) in laps_us.iter().enumerate() {
            at += Duration::from_micros(*us);
            s.mark_at(
                match i {
                    0 => Stage::Read,
                    1 => Stage::Parse,
                    2 => Stage::Queue,
                    3 => Stage::Batch,
                    4 => Stage::Execute,
                    5 => Stage::Serialize,
                    _ => Stage::Write,
                },
                at,
            );
        }
        s
    }

    #[test]
    fn percentiles_track_the_histogram() {
        let m = Metrics::new();
        assert_eq!(m.percentile_us(50.0), None);
        for _ in 0..99 {
            m.record_latency("/query", Duration::from_micros(100));
        }
        m.record_latency("/query", Duration::from_millis(50));
        // 100µs lands in the 64..128 bucket; interpolation places the
        // median rank (50 of 99 in-bucket) just past the bucket middle.
        // The p50 must not be dragged up by the one 50ms outlier.
        assert_eq!(m.percentile_us(50.0), Some(96));
        assert!(m.percentile_us(99.9).unwrap() > 10_000);
    }

    /// Satellite: the interpolated estimator against an exact
    /// sorted-sample reference. Uniform samples over [0, 2^17) fill
    /// every log2 bucket uniformly, so interpolation should land within
    /// a few percent of the exact percentile — where the old
    /// bucket-bound estimator was off by up to 2x at p50.
    #[test]
    fn interpolated_percentiles_match_an_exact_sorted_reference() {
        let h = Hist::default();
        let mut samples = Vec::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for _ in 0..10_000 {
            // SplitMix64 step (same generator family as xmlgen).
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let us = z % (1 << 17);
            samples.push(us);
            h.record_us(us);
        }
        samples.sort_unstable();
        for q in [50.0f64, 90.0, 95.0, 99.0] {
            let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
            let exact = samples[rank - 1].max(1) as f64;
            let est = h.percentile_us(q).expect("non-empty") as f64;
            let rel = (est - exact).abs() / exact;
            assert!(
                rel < 0.10,
                "p{q}: interpolated {est} vs exact {exact} (rel err {rel:.3})"
            );
        }
    }

    /// Satellite: trailing slashes and query strings must not banish
    /// real endpoints to the `other` histogram.
    #[test]
    fn endpoint_matching_normalizes_slashes_and_query_strings() {
        let other = ENDPOINTS.len() - 1;
        for (i, name) in ENDPOINTS.iter().enumerate().take(other) {
            assert_eq!(endpoint_index(name), i, "{name}");
            assert_eq!(endpoint_index(&format!("{name}/")), i, "{name}/");
            assert_eq!(endpoint_index(&format!("{name}//")), i, "{name}//");
            assert_eq!(endpoint_index(&format!("{name}?x=1")), i, "{name}?x=1");
            assert_eq!(endpoint_index(&format!("{name}/?x=1")), i, "{name}/?x=1");
        }
        assert_eq!(endpoint_index("/"), other);
        assert_eq!(endpoint_index("/healthzz"), other);
        assert_eq!(endpoint_index("/made/up/route"), other);
        assert_eq!(endpoint_index(""), other);

        let m = Metrics::new();
        m.record_latency("/shutdown/", Duration::from_micros(10));
        m.record_latency("/healthz?probe=1", Duration::from_micros(10));
        let json = m.render_json_fields();
        assert!(json.contains("\"/shutdown\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"/healthz\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"other\": {\"count\": 0"), "{json}");
    }

    #[test]
    fn stats_json_includes_strategy_tallies() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.record_strategy("pipelined");
        m.record_strategy("pipelined");
        m.record_strategy("navigational");
        let json = m.render_json_fields();
        assert!(json.contains("\"pipelined\": 2"), "{json}");
        assert!(json.contains("\"navigational\": 1"), "{json}");
        assert!(json.contains("\"requests\": 3"), "{json}");
    }

    #[test]
    fn endpoint_histograms_are_separate() {
        let m = Metrics::new();
        m.record_latency("/query", Duration::from_micros(100));
        m.record_latency("/query", Duration::from_micros(100));
        m.record_latency("/load", Duration::from_micros(100));
        m.record_latency("/made/up/route", Duration::from_micros(100));
        let json = m.render_json_fields();
        assert!(json.contains("\"endpoints\""), "{json}");
        assert!(json.contains("\"/query\": {\"count\": 2"), "{json}");
        assert!(json.contains("\"/load\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"other\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"/stats\": {\"count\": 0"), "{json}");
    }

    #[test]
    fn batching_and_admission_fields_render() {
        let m = Metrics::new();
        m.batched_requests.fetch_add(5, Ordering::Relaxed);
        m.evaluations_saved.fetch_add(3, Ordering::Relaxed);
        m.admission_rejections.fetch_add(2, Ordering::Relaxed);
        let json = m.render_json_fields();
        assert!(json.contains("\"batching\": {\"batched_requests\": 5, \"evaluations_saved\": 3}"), "{json}");
        assert!(json.contains("\"admission_rejections\": 2"), "{json}");
        assert!(json.contains("\"io\": {\"wakeups\": 0, \"cpu_us\": 0}"), "{json}");
    }

    #[test]
    fn update_counters_render() {
        let m = Metrics::new();
        m.updates.fetch_add(2, Ordering::Relaxed);
        m.mutations_applied.fetch_add(7, Ordering::Relaxed);
        m.plans_invalidated.fetch_add(3, Ordering::Relaxed);
        m.record_latency("/update", Duration::from_micros(100));
        let json = m.render_json_fields();
        assert!(
            json.contains("\"updates\": {\"count\": 2, \"mutations_applied\": 7, \"plans_invalidated\": 3}"),
            "{json}"
        );
        assert!(json.contains("\"/update\": {\"count\": 1"), "{json}");
    }

    #[test]
    fn track_error_classifies_statuses() {
        let m = Metrics::new();
        m.track_error(404);
        m.track_error(400);
        m.track_error(503);
        m.track_error(500);
        assert_eq!(m.client_errors.load(Ordering::Relaxed), 2);
        assert_eq!(m.deadline_aborts.load(Ordering::Relaxed), 1);
        assert_eq!(m.server_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn observe_span_feeds_stage_histograms_and_windows() {
        let m = Metrics::new();
        m.inflight.fetch_add(1, Ordering::Relaxed);
        let s = span(0, [5, 1, 10, 0, 500, 3, 7]);
        m.observe_span(&s);
        assert_eq!(m.inflight.load(Ordering::Relaxed), 0);
        assert_eq!(m.endpoints[0].count(), 1);
        for hist in m.stage_hists[0].iter() {
            assert_eq!(hist.count(), 1, "every stage records once per request");
        }
        // Stage sums conserve the wall sum exactly.
        let wall: u64 = m.endpoints[0].snapshot().1;
        let stage_sum: u64 = (0..STAGE_COUNT).map(|i| m.stage_hists[0][i].snapshot().1).sum();
        assert_eq!(wall, 526);
        assert_eq!(stage_sum, wall);
        let json = m.render_json_fields();
        assert!(json.contains("\"window_60s\": {\"/query\""), "{json}");
        assert!(json.contains("\"execute\": {\"count\": 1"), "{json}");
    }

    #[test]
    fn rolling_window_expires_old_seconds() {
        let r = Rolling::new();
        r.record_us(10, 100);
        r.record_us(10, 100);
        r.record_us(30, 100);
        assert_eq!(r.window(30).count, 3);
        assert_eq!(r.window(70).count, 1, "second 10 fell out of [11..=70]");
        assert_eq!(r.window(200).count, 0);
        // Slot reuse: second 70 reclaims second 10's slot.
        r.record_us(70, 50);
        assert_eq!(r.window(70).count, 2);
        assert_eq!(r.window(70).total_us, 150);
    }

    /// Satellite: 8-thread hammer — the lock-free cumulative histograms
    /// must never lose a count (sum of bucket counts == observations),
    /// and the exposition they feed must parse.
    #[test]
    fn concurrent_observations_never_lose_counts_and_exposition_parses() {
        const THREADS: usize = 8;
        const PER: usize = 4_000;
        let m = Arc::new(Metrics::new());
        let threads: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let e = (t + i) % ENDPOINTS.len();
                        let us = ((i * 37 + t * 11) % 5_000) as u64;
                        let s = span(e, [us / 8, 1, us / 4, 0, us, 2, us / 16]);
                        m.observe_span(&s);
                        if i % 64 == 0 {
                            m.record_strategy(if t % 2 == 0 { "twigstack" } else { "navigational" });
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let total: u64 = (0..ENDPOINTS.len()).map(|e| m.endpoints[e].count()).sum();
        assert_eq!(total, (THREADS * PER) as u64, "wall histogram lost counts");
        assert_eq!(m.latency.count(), (THREADS * PER) as u64);
        for e in 0..ENDPOINTS.len() {
            let requests = m.endpoints[e].count();
            for (s, hist) in m.stage_hists[e].iter().enumerate() {
                assert_eq!(
                    hist.count(),
                    requests,
                    "stage {} of {} lost counts",
                    STAGE_NAMES[s],
                    ENDPOINTS[e]
                );
            }
        }

        let expo = m.render_prometheus(&gauges());
        let stats = crate::promtext::check(&expo).expect("exposition parses");
        assert!(stats.families > 20, "{stats:?}");
        let scraped =
            crate::promtext::value(&expo, "blossomd_request_duration_seconds_count", &[("endpoint", "/query")]);
        assert_eq!(scraped, Some(m.endpoints[0].count() as f64));
    }

    #[test]
    fn prometheus_exposition_has_counters_gauges_and_histograms() {
        let m = Metrics::new();
        m.requests.fetch_add(7, Ordering::Relaxed);
        m.record_strategy("twigstack");
        let s = span(0, [1, 1, 1, 0, 100, 1, 1]);
        m.observe_span(&s);
        let expo = m.render_prometheus(&gauges());
        crate::promtext::check(&expo).expect("well-formed");
        assert!(expo.contains("blossomd_requests_total 7"), "{expo}");
        assert!(expo.contains("blossomd_info{io_model=\"event-loop\"} 1"), "{expo}");
        assert!(expo.contains("blossomd_queue_capacity 1024"), "{expo}");
        assert!(
            expo.contains("blossomd_queries_by_strategy_total{strategy=\"twigstack\"} 1"),
            "{expo}"
        );
        assert!(
            expo.contains("blossomd_request_stage_duration_seconds_count{endpoint=\"/query\",stage=\"execute\"} 1"),
            "{expo}"
        );
        // Endpoints with no traffic render no histogram series.
        assert!(!expo.contains("endpoint=\"/load\""), "{expo}");
    }
}
