//! A tiny blocking HTTP client for the load harness and the server's
//! own tests: keep-alive request/response over one `TcpStream`, plus a
//! raw-bytes escape hatch for sending deliberately malformed requests.

use crate::http::percent_encode;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One response as the client sees it.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    /// True when the server signalled `Connection: close`.
    pub closed: bool,
    /// All response headers, in wire order.
    pub headers: Vec<(String, String)>,
}

impl Response {
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header with this name (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to a running server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are tiny; Nagle + delayed ACK would add ~40ms stalls.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream) })
    }

    /// `GET target` (target already percent-encoded where needed).
    pub fn get(&mut self, target: &str) -> std::io::Result<Response> {
        self.request("GET", target, &[])
    }

    /// `GET /query?doc=...&q=...` with proper encoding; `extra` appends
    /// raw pre-encoded parameters like `"profile=1"`.
    pub fn query(&mut self, doc: &str, q: &str, extra: &[&str]) -> std::io::Result<Response> {
        let mut target = format!("/query?doc={}&q={}", percent_encode(doc), percent_encode(q));
        for p in extra {
            target.push('&');
            target.push_str(p);
        }
        self.get(&target)
    }

    /// `POST /load?name=...` with the document bytes as the body.
    pub fn load(&mut self, name: &str, body: &[u8]) -> std::io::Result<Response> {
        self.request("POST", &format!("/load?name={}", percent_encode(name)), body)
    }

    /// `POST /update?doc=...` with a mutation script as the body.
    pub fn update(&mut self, doc: &str, script: &str) -> std::io::Result<Response> {
        self.request("POST", &format!("/update?doc={}", percent_encode(doc)), script.as_bytes())
    }

    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<Response> {
        // One write per request: split writes interact badly with Nagle.
        let mut request = format!(
            "{method} {target} HTTP/1.1\r\nHost: blossomd\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(body);
        self.writer.write_all(&request)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Send raw bytes (for malformed-request tests) and read whatever
    /// response comes back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<Response> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Write raw bytes without reading a response (pipelining tests:
    /// several requests in one segment, or one request in fragments).
    pub fn write_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Read the next response off the connection (pairs with
    /// [`Client::write_raw`] for pipelined requests).
    pub fn recv(&mut self) -> std::io::Result<Response> {
        self.read_response()
    }

    /// Bound how long a read may block (harness safety net against a
    /// wedged server).
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before a status line"));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut closed = false;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside response headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let (name, value) = (name.trim(), value.trim());
                if name.eq_ignore_ascii_case("content-length") {
                    content_length =
                        value.parse().map_err(|_| bad("bad response Content-Length"))?;
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    closed = true;
                }
                headers.push((name.to_string(), value.to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, body, closed, headers })
    }
}
