//! Request-lifecycle spans: one [`RequestSpan`] per served request,
//! allocated when the request is framed off the wire and carried
//! through scheduling, batching, evaluation, serialization, and the
//! final socket write. The span records *stage laps*: each
//! [`RequestSpan::mark`] reads the monotonic clock once and attributes
//! the time since the previous mark to the named stage, so the stage
//! durations always sum to the span's wall time exactly — the
//! conservation property the load harness asserts.
//!
//! Spans are cheap by construction: a fixed-size array of lap
//! microseconds, plain integers of context (endpoint, queue depth,
//! batch size, byte counts), and an optional boxed [`LogCtx`] that is
//! only allocated when the access log is armed — at default
//! configuration a span costs a handful of `Instant::now()` reads and
//! no heap traffic beyond the job it rides in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Stage laps a span can record, in pipeline order.
pub const STAGE_COUNT: usize = 7;

/// Stage names, indexed by `Stage as usize`; also the label values in
/// the Prometheus exposition and the keys of the slow-log `stages_us`
/// object.
pub const STAGE_NAMES: [&str; STAGE_COUNT] =
    ["read", "parse", "queue", "batch", "execute", "serialize", "write"];

/// One pipeline stage (see DESIGN.md §14 for the exact boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// First byte on the wire to framing-complete for this request.
    Read = 0,
    /// HTTP parsing (request line, headers, body assembly).
    Parse = 1,
    /// Dispatch to execution start: scheduler queue wait (plain jobs
    /// and batch leaders) or the admission decision for rejects.
    Queue = 2,
    /// Batch joiners only: dispatch to the leader's execution start.
    Batch = 3,
    /// Routing plus engine evaluation plus body assembly.
    Execute = 4,
    /// HTTP response rendering (status line, headers, copy-out).
    Serialize = 5,
    /// Completion routed back to the owning I/O thread and the last
    /// response byte accepted by the socket.
    Write = 6,
}

/// How a request ended, for metrics classification and the slow log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Ok,
    ClientError,
    ServerError,
    /// 503 from a cooperative deadline abort.
    Deadline,
    /// 503 from admission control (bounded queue full).
    Rejected,
    /// The connection died before the response was fully written.
    Disconnect,
}

impl Outcome {
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::ClientError => "client-error",
            Outcome::ServerError => "server-error",
            Outcome::Deadline => "deadline",
            Outcome::Rejected => "rejected",
            Outcome::Disconnect => "disconnect",
        }
    }

    /// Default classification by status code; sites with more context
    /// (admission control, broken sockets) override it.
    pub fn from_status(status: u16) -> Outcome {
        match status {
            0..=399 => Outcome::Ok,
            400..=499 => Outcome::ClientError,
            503 => Outcome::Deadline,
            _ => Outcome::ServerError,
        }
    }
}

/// Context captured only when the access log is armed, so the default
/// configuration allocates nothing per request beyond the span itself.
#[derive(Debug, Default, Clone)]
pub struct LogCtx {
    pub method: String,
    pub path: String,
    /// `?doc=` / `?name=` parameter: which catalog entry was addressed.
    pub doc: Option<String>,
    /// `?q=` parameter (queries only).
    pub query: Option<String>,
    /// Strategy the engine actually executed.
    pub strategy: Option<String>,
    /// Compact single-line `QueryTrace` JSON, attached to slow `/query`
    /// records so one log line diagnoses the plan.
    pub trace_json: Option<String>,
}

/// Per-request lifecycle record. See the module docs for the lap
/// accounting model.
#[derive(Debug)]
pub struct RequestSpan {
    /// Process-unique request id (monotonic), echoed to the client in
    /// the `X-Request-Id` response header.
    pub id: u64,
    started: Instant,
    last: Instant,
    stages_us: [u64; STAGE_COUNT],
    /// Index into [`crate::metrics::ENDPOINTS`].
    pub endpoint: usize,
    pub status: u16,
    pub outcome: Outcome,
    /// Wire bytes consumed by this request (event loop: exact framed
    /// size; blocking core: body bytes only).
    pub bytes_in: u64,
    /// Rendered response size, headers included.
    pub bytes_out: u64,
    /// Execution-queue depth observed at dispatch (before this request
    /// was enqueued).
    pub queue_depth: u64,
    /// Members sharing this request's evaluation (1 = not coalesced).
    pub batch_size: u64,
    /// The request's effective deadline, if any.
    pub deadline: Option<Instant>,
    /// The deadline budget granted at admission.
    pub budget: Option<Duration>,
    /// `?trace=1`: force this request into the access log regardless of
    /// the slow threshold or sampling.
    pub force_log: bool,
    pub log: Option<Box<LogCtx>>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl RequestSpan {
    /// Allocate a span whose clock starts at `started` (normally the
    /// instant the request's first byte was noticed).
    pub fn begin(started: Instant) -> RequestSpan {
        RequestSpan {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            started,
            last: started,
            stages_us: [0; STAGE_COUNT],
            endpoint: crate::metrics::ENDPOINTS.len() - 1,
            status: 0,
            outcome: Outcome::Ok,
            bytes_in: 0,
            bytes_out: 0,
            queue_depth: 0,
            batch_size: 1,
            deadline: None,
            budget: None,
            force_log: false,
            log: None,
        }
    }

    /// End `stage` now: attribute the lap since the previous mark.
    pub fn mark(&mut self, stage: Stage) {
        self.mark_at(stage, Instant::now());
    }

    /// End `stage` at `at` (for call sites that already read the clock).
    /// Laps are saturating: an `at` before the previous mark records 0.
    pub fn mark_at(&mut self, stage: Stage, at: Instant) {
        let lap = at.saturating_duration_since(self.last);
        self.stages_us[stage as usize] += lap.as_micros().min(u64::MAX as u128) as u64;
        self.last = at;
    }

    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stages_us[stage as usize]
    }

    pub fn stages_us(&self) -> &[u64; STAGE_COUNT] {
        &self.stages_us
    }

    /// Sum of all recorded laps — the span's wall time up to the last
    /// mark. This is what the histograms record, so stage durations sum
    /// to the wall figure exactly.
    pub fn total_us(&self) -> u64 {
        self.stages_us.iter().sum()
    }

    /// Wall time since the span started, independent of marks (used for
    /// "is this already slow?" checks mid-flight).
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Deadline headroom left right now; negative values clamp to 0.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Classify by `status` (sites with more context override).
    pub fn finish_status(&mut self, status: u16) {
        self.status = status;
        self.outcome = Outcome::from_status(status);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let a = RequestSpan::begin(Instant::now());
        let b = RequestSpan::begin(Instant::now());
        assert!(b.id > a.id);
    }

    #[test]
    fn laps_sum_to_wall_time() {
        let t0 = Instant::now();
        let mut span = RequestSpan::begin(t0);
        std::thread::sleep(Duration::from_millis(2));
        span.mark(Stage::Read);
        std::thread::sleep(Duration::from_millis(2));
        span.mark(Stage::Execute);
        let t_last = Instant::now();
        span.mark_at(Stage::Write, t_last);
        let wall_us = t_last.duration_since(t0).as_micros() as u64;
        assert_eq!(span.total_us(), span.stages_us().iter().sum::<u64>());
        // The laps are measured against the same instants as wall_us,
        // so conservation holds to rounding (one µs per lap).
        assert!(span.total_us() <= wall_us);
        assert!(span.total_us() + STAGE_COUNT as u64 >= wall_us);
        assert!(span.stage_us(Stage::Read) >= 1_000);
        assert!(span.stage_us(Stage::Execute) >= 1_000);
        assert_eq!(span.stage_us(Stage::Parse), 0);
    }

    #[test]
    fn mark_at_saturates_backwards_clocks() {
        let t0 = Instant::now();
        let mut span = RequestSpan::begin(t0);
        span.mark(Stage::Read);
        span.mark_at(Stage::Parse, t0); // earlier than the last mark
        assert_eq!(span.stage_us(Stage::Parse), 0);
    }

    #[test]
    fn outcome_classification() {
        assert_eq!(Outcome::from_status(200), Outcome::Ok);
        assert_eq!(Outcome::from_status(404), Outcome::ClientError);
        assert_eq!(Outcome::from_status(503), Outcome::Deadline);
        assert_eq!(Outcome::from_status(500), Outcome::ServerError);
        assert_eq!(Outcome::Rejected.as_str(), "rejected");
    }
}
