//! The nonblocking serving core: readiness-driven I/O threads owning
//! connection state machines, feeding a separate execution pool through
//! the fair bounded scheduler in [`crate::sched`].
//!
//! Architecture (DESIGN.md §12):
//!
//! ```text
//!  accept ──> I/O threads (epoll/poll, one Poller each)
//!               │  incremental HTTP framing, pipelining, keep-alive
//!               │  batch coalescing + admission control at dispatch
//!               ▼
//!             Sched (bounded, per-client round-robin)
//!               ▼
//!             execution pool (`--workers`), evaluates queries
//!               │  completions routed back by (io thread, token, seq)
//!               ▼
//!             I/O thread wakes, fills the pipeline slot, flushes
//! ```
//!
//! Connections are owned by exactly one I/O thread; nothing about a
//! connection is locked. Idle keep-alive sockets cost *nothing*: they
//! sit registered in the poller until bytes arrive — there is no
//! read-timeout polling loop (the PR 5 server woke every 100ms per
//! idle connection). The regression tests pin this via the
//! `io.wakeups` / `io.cpu_us` stats counters.
//!
//! Responses are delivered strictly in request order per connection
//! (pipelining), via sequence-numbered slots; connection tokens carry a
//! generation so a completion for a dead connection is dropped instead
//! of being written to whoever reused the slot.

use crate::http::{parse_request_bytes, render_response, Parsed, Request};
use crate::metrics::endpoint_index;
use crate::sched::{BatchKey, Destination, Job, Member};
use crate::server::{request_deadline, respond, Shared};
use crate::span::{LogCtx, Outcome, RequestSpan, Stage};
use crate::sys::{self, thread_cpu_us, Event, Interest, Poller, WakeReceiver, Waker};
use blossom_core::engine::{EngineError, EngineOptions};
use blossom_core::plan::Strategy;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Safety-net tick so a lost wakeup or an externally-set shutdown flag
/// is noticed promptly; all real work is event-driven.
const TICK: Duration = Duration::from_millis(500);

/// A finished response on its way back to the owning I/O thread.
pub(crate) struct Completion {
    pub dest: Destination,
    pub bytes: Vec<u8>,
    pub close: bool,
    /// The request's lifecycle span (marked through Serialize); the I/O
    /// thread adds the Write lap when the last byte is accepted by the
    /// socket, then feeds it to metrics and the access log. `None` for
    /// framing-error responses, which have no request to trace.
    pub span: Option<RequestSpan>,
}

enum Inbound {
    /// A freshly accepted connection handed to this thread.
    Conn(TcpStream),
    /// A response produced by the execution pool.
    Done(Completion),
}

/// The cross-thread mailbox of one I/O thread: execution workers (and
/// the acceptor) push, the owning thread drains after a wake.
pub(crate) struct IoHandle {
    inbox: Mutex<Vec<Inbound>>,
    waker: Waker,
}

impl IoHandle {
    fn send(&self, msg: Inbound) {
        self.inbox.lock().unwrap().push(msg);
        self.waker.wake();
    }

    /// Wake the thread without a message (shutdown nudge).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// Run the event-loop server until shutdown + drain. Blocks the caller
/// (the `Server::run` thread).
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) {
    let nio = shared.config.io_threads.max(1);
    let mut handles = Vec::with_capacity(nio);
    let mut receivers = Vec::with_capacity(nio);
    for _ in 0..nio {
        let (waker, rx) = sys::waker().expect("waker socketpair");
        handles.push(Arc::new(IoHandle { inbox: Mutex::new(Vec::new()), waker }));
        receivers.push(rx);
    }
    let handles = Arc::new(handles);
    let _ = shared.io.set(handles.clone());

    // Execution pool: drains the fair scheduler until close() + empty.
    let workers: Vec<_> = (0..shared.config.workers.max(1))
        .map(|_| {
            let shared = shared.clone();
            let handles = handles.clone();
            std::thread::spawn(move || {
                while let Some(job) = shared.sched.pop() {
                    execute(job, &shared, &handles);
                }
            })
        })
        .collect();

    listener.set_nonblocking(true).expect("nonblocking listener");
    let mut listeners: Vec<Option<TcpListener>> = (0..nio).map(|_| None).collect();
    listeners[0] = Some(listener);

    let io_threads: Vec<_> = receivers
        .into_iter()
        .zip(listeners)
        .enumerate()
        .map(|(idx, (wake_rx, listener))| {
            let shared = shared.clone();
            let handles = handles.clone();
            std::thread::spawn(move || {
                IoThread {
                    idx,
                    poller: Poller::new().expect("poller"),
                    listener,
                    accepting: true,
                    wake_rx,
                    shared,
                    handles,
                    conns: Vec::new(),
                    free: Vec::new(),
                    next_gen: 0,
                    rr: idx,
                }
                .run()
            })
        })
        .collect();

    for t in io_threads {
        let _ = t.join();
    }
    // I/O threads exit only when every connection has drained, so the
    // queue is empty of live work; close() releases the workers.
    shared.sched.close();
    for w in workers {
        let _ = w.join();
    }
}

/// One pipelined request's place in a connection's response order.
struct Slot {
    seq: u64,
    response: Option<(Vec<u8>, bool)>,
    /// The span riding with the completion, parked here until the
    /// response can be moved into the write buffer in pipeline order.
    span: Option<RequestSpan>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    gen: u32,
    /// Process-unique id, the fairness key in the scheduler.
    client: u64,
    /// Read accumulation; `buf[buf_pos..]` is unparsed.
    buf: Vec<u8>,
    buf_pos: usize,
    /// When the first unattributed bytes of the *next* request arrived;
    /// taken by the span of the next request framed off the buffer (its
    /// Read-stage start). Pipelined successors parsed from already-read
    /// bytes start their span at parse time instead.
    read_started: Option<Instant>,
    /// Pending outbound bytes; `out[out_pos..]` still to write.
    out: Vec<u8>,
    out_pos: usize,
    /// Lifetime count of bytes accepted by the socket, pairing with the
    /// absolute end offsets in `write_track`.
    flushed: u64,
    /// Spans of responses sitting in `out`, keyed by the absolute
    /// offset at which each response's last byte leaves the socket.
    write_track: VecDeque<(u64, RequestSpan)>,
    /// Dispatched requests awaiting responses, in request order.
    pending: VecDeque<Slot>,
    next_seq: u64,
    interest: Interest,
    /// Peer sent EOF (half-close): serve what's pending, then close.
    read_closed: bool,
    /// Stop after the current out buffer drains (`Connection: close`,
    /// framing errors, shutdown).
    close_after_flush: bool,
    /// Framing is lost (malformed request): never parse again.
    broken: bool,
}

struct IoThread {
    idx: usize,
    poller: Poller,
    listener: Option<TcpListener>,
    accepting: bool,
    wake_rx: WakeReceiver,
    shared: Arc<Shared>,
    handles: Arc<Vec<Arc<IoHandle>>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
    /// Round-robin cursor for assigning accepted connections.
    rr: usize,
}

fn token_of(slot: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

impl IoThread {
    fn run(mut self) {
        if let Some(l) = &self.listener {
            self.poller
                .register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                .expect("register listener");
        }
        self.poller
            .register(self.wake_rx.fd(), WAKER_TOKEN, Interest::READ)
            .expect("register waker");

        let mut events: Vec<Event> = Vec::new();
        let mut cpu_last = thread_cpu_us();
        loop {
            self.poller.wait(&mut events, Some(TICK)).expect("poller wait");
            self.shared.metrics.io_wakeups.fetch_add(1, Ordering::Relaxed);

            // Mailbox first: completions may unblock flushes that the
            // readiness events below would otherwise race with.
            let inbound = std::mem::take(&mut *self.handles[self.idx].inbox.lock().unwrap());
            for msg in inbound {
                match msg {
                    Inbound::Conn(stream) => self.add_conn(stream),
                    Inbound::Done(completion) => self.complete(completion),
                }
            }

            let ready = std::mem::take(&mut events);
            for ev in &ready {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.wake_rx.drain(),
                    token => self.conn_event(token, *ev),
                }
            }
            events = ready;

            if self.shared.shutdown.load(Ordering::SeqCst) && self.drain() {
                break;
            }

            let cpu = thread_cpu_us();
            self.shared
                .metrics
                .io_cpu_us
                .fetch_add(cpu.saturating_sub(cpu_last), Ordering::Relaxed);
            cpu_last = cpu;
        }
    }

    /// Shutdown housekeeping: stop accepting, close idle connections,
    /// report whether every connection has drained.
    fn drain(&mut self) -> bool {
        if self.accepting {
            if let Some(l) = &self.listener {
                let _ = self.poller.deregister(l.as_raw_fd());
            }
            self.accepting = false;
        }
        for slot in 0..self.conns.len() {
            let idle = match &self.conns[slot] {
                Some(c) => c.pending.is_empty() && c.out_pos >= c.out.len(),
                None => false,
            };
            if idle {
                self.close_conn(slot);
            }
        }
        self.conns.iter().all(Option::is_none)
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        let nio = self.handles.len();
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let target = self.rr % nio;
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.idx {
                        self.add_conn(stream);
                    } else {
                        self.handles[target].send(Inbound::Conn(stream));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        // During drain, late handoffs are turned away unserved.
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1);
        let token = token_of(slot, gen);
        if self.poller.register(stream.as_raw_fd(), token, Interest::READ).is_err() {
            self.free.push(slot);
            return;
        }
        let client = self.shared.next_client.fetch_add(1, Ordering::Relaxed);
        self.conns[slot] = Some(Conn {
            stream,
            gen,
            client,
            buf: Vec::new(),
            buf_pos: 0,
            read_started: None,
            out: Vec::new(),
            out_pos: 0,
            flushed: 0,
            write_track: VecDeque::new(),
            pending: VecDeque::new(),
            next_seq: 0,
            interest: Interest::READ,
            read_closed: false,
            close_after_flush: false,
            broken: false,
        });
    }

    /// Look up a live connection by token (slot + generation); stale
    /// tokens — events or completions for a connection that died and
    /// whose slot was reused — resolve to `None` and are dropped.
    fn live(&mut self, token: u64) -> Option<usize> {
        let slot = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        match self.conns.get(slot) {
            Some(Some(conn)) if conn.gen == gen => Some(slot),
            _ => None,
        }
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        let Some(slot) = self.live(token) else { return };
        if ev.readable && !self.readable(slot) {
            return;
        }
        if ev.writable {
            self.flush(slot);
        }
        if ev.error {
            // The peer is gone: readable data was drained above and any
            // response still pending is undeliverable (its completion
            // later dies on the generation check). Close unconditionally
            // — epoll reports ERR/HUP regardless of interest, so a
            // connection left registered here is re-reported on every
            // `wait`, and that hot loop starves the inbox mutex the
            // pending completion itself needs to arrive: a livelock.
            self.close_conn(slot);
        }
    }

    /// Pull everything the socket has, then parse and dispatch. Returns
    /// `false` iff the connection was closed.
    fn readable(&mut self, slot: usize) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let conn = self.conns[slot].as_mut().expect("live slot");
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.read_started.is_none() {
                        conn.read_started = Some(Instant::now());
                    }
                    conn.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return false;
                }
            }
        }
        self.parse_and_dispatch(slot);
        let finished = self.conns[slot].as_ref().is_some_and(|c| {
            c.read_closed && c.pending.is_empty() && c.out_pos >= c.out.len()
        });
        if finished {
            self.close_conn(slot);
            return false;
        }
        // EOF with a response still pending keeps the connection alive
        // until the worker finishes — but the closed read side stays
        // level-triggered-readable forever, so stop watching for reads
        // now or the poller spins until the completion lands.
        self.update_interest(slot);
        // Dispatch may have closed the connection on a failed flush.
        self.conns[slot].is_some()
    }

    fn parse_and_dispatch(&mut self, slot: usize) {
        loop {
            // dispatch() below can close the connection (a rejection
            // response whose flush fails), so re-check liveness.
            let Some(conn) = self.conns[slot].as_mut() else { return };
            if conn.broken {
                return;
            }
            // During drain, pipelined bytes beyond in-flight work are
            // not admitted — the PR 5 contract: finish what's running,
            // do not start new requests.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let unparsed = &conn.buf[conn.buf_pos..];
            if unparsed.is_empty() {
                conn.buf.clear();
                conn.buf_pos = 0;
                conn.read_started = None;
                return;
            }
            let parse_started = Instant::now();
            match parse_request_bytes(unparsed, self.shared.config.max_body) {
                Ok(Parsed::Complete { request, consumed }) => {
                    // The span starts when this request's first byte was
                    // noticed (pipelined successors: at parse time), ends
                    // Read at framing-complete, and Parse now.
                    let started = conn.read_started.take().unwrap_or(parse_started);
                    let mut span = RequestSpan::begin(started);
                    span.mark_at(Stage::Read, parse_started);
                    span.mark(Stage::Parse);
                    span.bytes_in = consumed as u64;
                    conn.buf_pos += consumed;
                    // Compact once the parsed prefix dominates, so a
                    // long-lived pipelining connection cannot grow the
                    // buffer without bound.
                    if conn.buf_pos == conn.buf.len() {
                        conn.buf.clear();
                        conn.buf_pos = 0;
                    } else if conn.buf_pos > 64 * 1024 {
                        conn.buf.drain(..conn.buf_pos);
                        conn.buf_pos = 0;
                    }
                    self.dispatch(slot, request, span);
                }
                Ok(Parsed::Partial) => return,
                Err(e) => {
                    // Framing is unreliable after a malformed request:
                    // answer 4xx (after any pipelined predecessors) and
                    // close, exactly like the blocking server.
                    self.shared.metrics.track_error(e.status);
                    let body = format!("error: {}\n", e.message);
                    let bytes =
                        render_response(e.status, "text/plain", body.as_bytes(), true, &[]);
                    let conn = self.conns[slot].as_mut().expect("live slot");
                    conn.broken = true;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.push_back(Slot { seq, response: Some((bytes, true)), span: None });
                    self.pump(slot);
                    return;
                }
            }
        }
    }

    /// Route one parsed request: admission control, batch coalescing,
    /// then the execution queue.
    fn dispatch(&mut self, slot: usize, request: Request, mut span: RequestSpan) {
        let shared = self.shared.clone();
        let arrived = Instant::now();
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        shared.metrics.inflight.fetch_add(1, Ordering::Relaxed);

        let deadline = request_deadline(&request, &shared.config, arrived);
        span.endpoint = endpoint_index(&request.path);
        span.queue_depth = shared.sched.depth() as u64;
        span.deadline = deadline;
        span.budget = deadline.map(|d| d.saturating_duration_since(arrived));
        span.force_log = request.param("trace") == Some("1");
        if shared.log.armed() {
            span.log = Some(Box::new(LogCtx {
                method: request.method.clone(),
                path: request.path.clone(),
                doc: request
                    .param("doc")
                    .or_else(|| request.param("name"))
                    .map(str::to_string),
                query: request.param("q").map(str::to_string),
                strategy: None,
                trace_json: None,
            }));
        }

        let conn = self.conns[slot].as_mut().expect("live slot");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back(Slot { seq, response: None, span: None });
        let member = Member {
            dest: Destination {
                io_thread: self.idx,
                conn_token: token_of(slot, conn.gen),
                seq,
            },
            deadline,
            keep_alive: request.keep_alive,
            arrived,
            span,
        };
        let client = conn.client;

        if let Some((key, entry)) = batchable(&request, &shared) {
            // Coalesced members are answered by the in-flight leader's
            // evaluation; no queue slot consumed. A bounced member leads
            // a fresh batch instead.
            let member = match shared.batches.join(&key, member) {
                Ok(()) => return,
                Err(member) => member,
            };
            shared.batches.lead(key.clone(), member);
            let job = Job::BatchLeader { request, key: key.clone(), entry };
            if shared.sched.push(client, job).is_err() {
                // Roll the batch back; anyone who joined between
                // lead() and now is rejected with us.
                for m in shared.batches.take(&key) {
                    self.reject(m);
                }
            }
        } else {
            let job = Job::Plain { request, member };
            if let Err(Job::Plain { member, .. }) = shared.sched.push(client, job) {
                self.reject(member);
            }
        }
    }

    /// Admission rejection: immediate 503 with `Retry-After`, no
    /// evaluation work spent.
    fn reject(&mut self, mut member: Member) {
        self.shared.metrics.admission_rejections.fetch_add(1, Ordering::Relaxed);
        member.span.mark(Stage::Queue);
        let id = member.span.id.to_string();
        let bytes = render_response(
            503,
            "text/plain",
            b"error: server overloaded, retry later\n",
            !member.keep_alive,
            &[("Retry-After", "1"), ("X-Request-Id", &id)],
        );
        member.span.finish_status(503);
        member.span.outcome = Outcome::Rejected;
        member.span.bytes_out = bytes.len() as u64;
        member.span.mark(Stage::Serialize);
        self.deliver(Completion {
            dest: member.dest,
            bytes,
            close: !member.keep_alive,
            span: Some(member.span),
        });
    }

    /// Route a completion to its owning I/O thread (possibly this one).
    fn deliver(&mut self, completion: Completion) {
        if completion.dest.io_thread == self.idx {
            self.complete(completion);
        } else {
            self.handles[completion.dest.io_thread].send(Inbound::Done(completion));
        }
    }

    /// Fill the pipeline slot a completion belongs to, then flush the
    /// in-order prefix.
    fn complete(&mut self, completion: Completion) {
        let Some(slot) = self.live(completion.dest.conn_token) else {
            // The connection died before its response came back: the
            // span still owes its metrics/log record, as a disconnect.
            if let Some(span) = completion.span {
                self.finish_disconnected(span);
            }
            return;
        };
        let conn = self.conns[slot].as_mut().expect("live slot");
        match conn.pending.iter_mut().find(|s| s.seq == completion.dest.seq) {
            Some(entry) => {
                entry.response = Some((completion.bytes, completion.close));
                entry.span = completion.span;
            }
            None => {
                if let Some(span) = completion.span {
                    self.finish_disconnected(span);
                }
            }
        }
        self.pump(slot);
    }

    /// Finalize a span whose response could not be delivered.
    fn finish_disconnected(&self, mut span: RequestSpan) {
        span.outcome = Outcome::Disconnect;
        span.mark(Stage::Write);
        self.shared.finish(span);
    }

    /// Move contiguous ready responses into the write buffer (request
    /// order — pipelining), then flush to the socket.
    fn pump(&mut self, slot: usize) {
        {
            let conn = self.conns[slot].as_mut().expect("live slot");
            while let Some(front) = conn.pending.front() {
                if front.response.is_none() {
                    break;
                }
                let entry = conn.pending.pop_front().expect("front exists");
                let (bytes, close) = entry.response.expect("checked");
                conn.out.extend_from_slice(&bytes);
                if let Some(span) = entry.span {
                    // The response's last byte leaves the socket at this
                    // absolute offset; flush() closes the Write lap then.
                    let end_abs = conn.flushed + (conn.out.len() - conn.out_pos) as u64;
                    conn.write_track.push_back((end_abs, span));
                }
                if close {
                    conn.close_after_flush = true;
                    conn.broken = true; // no further requests will be parsed
                }
            }
        }
        self.flush(slot);
    }

    /// Write as much pending output as the socket accepts; manage
    /// write-interest registration and post-flush close conditions.
    fn flush(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().expect("live slot");
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => break,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.flushed += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        // Responses fully accepted by the socket close their Write lap
        // and feed the span to metrics + the access log.
        let mut written: Vec<RequestSpan> = Vec::new();
        let conn = self.conns[slot].as_mut().expect("live slot");
        while conn.write_track.front().is_some_and(|(end, _)| *end <= conn.flushed) {
            written.push(conn.write_track.pop_front().expect("checked").1);
        }
        for mut span in written {
            span.mark(Stage::Write);
            self.shared.finish(span);
        }
        let conn = self.conns[slot].as_mut().expect("live slot");
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.close_after_flush
                || (conn.read_closed && conn.pending.is_empty())
                || (conn.pending.is_empty()
                    && self.shared.shutdown.load(Ordering::SeqCst))
            {
                self.close_conn(slot);
                return;
            }
        }
        self.update_interest(slot);
    }

    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        let want = Interest {
            readable: !conn.broken && !conn.read_closed,
            writable: conn.out_pos < conn.out.len(),
        };
        if want != conn.interest {
            let token = token_of(slot, conn.gen);
            if self.poller.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
                let conn = self.conns[slot].as_mut().expect("live slot");
                conn.interest = want;
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.free.push(slot);
            // Spans whose responses never fully left the socket are
            // disconnects. Requests still executing finalize the same
            // way when their completion dies on the generation check;
            // pending slots without a span either never dispatched
            // (framing errors) or still own it in the worker.
            for (_, span) in conn.write_track {
                self.finish_disconnected(span);
            }
            for entry in conn.pending {
                if let Some(span) = entry.span {
                    self.finish_disconnected(span);
                }
            }
            // `conn.stream` drops here, closing the fd. Completions
            // still in flight for it die on the generation check.
        }
    }
}

/// Is this request eligible for shared-scan coalescing? Only plain
/// (unprofiled) `GET /query` over a cataloged document with a parseable
/// query and a valid strategy/thread spelling. The key canonicalizes
/// the query through the parser's `Display` round-trip and the strategy
/// through its parsed form, so alias spellings (`ts` vs `twigstack`,
/// whitespace differences) coalesce too.
fn batchable(request: &Request, shared: &Shared) -> Option<(BatchKey, Arc<crate::catalog::DocEntry>)> {
    if !shared.config.batch || request.method != "GET" || request.path != "/query" {
        return None;
    }
    if request.param("profile") == Some("1") {
        // Profiled responses embed per-run timings; sharing them is
        // sound byte-wise but defeats the endpoint's purpose.
        return None;
    }
    let doc = request.param("doc")?;
    let q = request.param("q")?;
    let strategy = request.param("strategy").unwrap_or("auto").parse::<Strategy>().ok()?;
    let threads = match request.param("threads") {
        None => shared.config.query_threads,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return None,
        },
    };
    let canonical = blossom_flwor::parse_query(q).ok()?.to_string();
    let entry = shared.catalog.get(doc)?;
    Some((
        BatchKey {
            doc_uid: entry.doc.uid(),
            query: canonical,
            strategy: strategy.to_string(),
            threads,
        },
        entry,
    ))
}

/// Execution-pool worker body: run one job, deliver its completions.
fn execute(job: Job, shared: &Arc<Shared>, handles: &Arc<Vec<Arc<IoHandle>>>) {
    let deliver = |completion: Completion| {
        handles[completion.dest.io_thread].send(Inbound::Done(completion));
    };
    let closing = |keep_alive: bool| !keep_alive || shared.shutdown.load(Ordering::SeqCst);

    match job {
        Job::Plain { request, mut member } => {
            member.span.mark(Stage::Queue);
            let (status, content_type, body) =
                respond(&request, shared, member.deadline, &mut member.span);
            if status >= 400 {
                shared.metrics.track_error(status);
            }
            let close = closing(request.keep_alive);
            member.span.finish_status(status);
            member.span.mark(Stage::Execute);
            let id = member.span.id.to_string();
            let bytes =
                render_response(status, content_type, &body, close, &[("X-Request-Id", &id)]);
            member.span.bytes_out = bytes.len() as u64;
            member.span.mark(Stage::Serialize);
            deliver(Completion { dest: member.dest, bytes, close, span: Some(member.span) });
        }
        Job::BatchLeader { request, key, entry } => {
            // Claim the member set *before* evaluating: joins from here
            // on start a fresh batch, so nobody is bound to an
            // evaluation whose deadline budget predates them.
            let mut members = shared.batches.take(&key);
            let deadline = if members.iter().any(|m| m.deadline.is_none()) {
                None
            } else {
                members.iter().filter_map(|m| m.deadline).max()
            };
            let size = members.len() as u64;
            if members.len() > 1 {
                shared.metrics.batched_requests.fetch_add(size, Ordering::Relaxed);
                shared.metrics.evaluations_saved.fetch_add(size - 1, Ordering::Relaxed);
            }
            // The leader (first member) waited in the execution queue;
            // joiners waited on the leader's evaluation to start.
            let exec_started = Instant::now();
            for (i, m) in members.iter_mut().enumerate() {
                let stage = if i == 0 { Stage::Queue } else { Stage::Batch };
                m.span.mark_at(stage, exec_started);
                m.span.batch_size = size;
            }

            let q = request.param("q").unwrap_or_default();
            let strategy =
                key.strategy.parse::<Strategy>().expect("key strategy is canonical");
            let mut engine = entry.engine(
                shared.plans.clone(),
                EngineOptions { threads: key.threads, trace: true, ..EngineOptions::default() },
            );
            engine.set_deadline(deadline);

            let outcome = engine.eval_query_bytes(q, strategy);
            if let Ok((_, trace)) = &outcome {
                shared.metrics.record_strategy(&trace.executed.to_string());
            }
            let finished = Instant::now();
            for mut member in members {
                let (status, body): (u16, Vec<u8>) = match &outcome {
                    // A member whose own budget ran out mid-batch gets
                    // its deadline abort; the shared result still
                    // serves everyone else — no poisoning either way.
                    Ok(_) if member.deadline.is_some_and(|d| finished >= d) => {
                        (503, format!("error: {}\n", EngineError::Deadline).into_bytes())
                    }
                    Ok((bytes, _)) => (200, bytes.clone()),
                    Err(EngineError::Deadline) => {
                        (503, format!("error: {}\n", EngineError::Deadline).into_bytes())
                    }
                    Err(e) => (400, format!("error: {e}\n").into_bytes()),
                };
                if status >= 400 {
                    shared.metrics.track_error(status);
                }
                member.span.finish_status(status);
                member.span.mark_at(Stage::Execute, finished);
                let slow =
                    shared.log.slow_us().is_some_and(|t| member.span.elapsed_us() >= t);
                let force = member.span.force_log;
                if let (Some(log), Ok((_, trace))) = (member.span.log.as_deref_mut(), &outcome)
                {
                    log.strategy = Some(trace.executed.to_string());
                    if force || slow {
                        log.trace_json = Some(trace.to_json_compact());
                    }
                }
                let close = closing(member.keep_alive);
                let id = member.span.id.to_string();
                let bytes = render_response(
                    status,
                    "text/plain",
                    &body,
                    close,
                    &[("X-Request-Id", &id)],
                );
                member.span.bytes_out = bytes.len() as u64;
                member.span.mark(Stage::Serialize);
                deliver(Completion { dest: member.dest, bytes, close, span: Some(member.span) });
            }
        }
    }

    // POST /shutdown (or an external flag flip) must rouse every I/O
    // thread so the drain starts immediately, not at the next tick.
    if shared.shutdown.load(Ordering::SeqCst) {
        for h in handles.iter() {
            h.wake();
        }
    }
}
