//! The structured access / slow-query log: one single-line JSON record
//! per logged request, written to stderr or a `--access-log PATH` file.
//!
//! A request is logged when any of these hold:
//!
//! * its wall time is at or above the `--slow-ms` threshold;
//! * it carried `?trace=1` (client-requested correlation record);
//! * deterministic sampling is on (`--log-sample N`) and the request
//!   id is divisible by N — reproducible across runs of the same
//!   request sequence, no RNG.
//!
//! Slow `/query` records carry the engine's `QueryTrace` as a nested
//! compact JSON object, so one log line answers "what did the planner
//! do and where did the time go" without a second round trip.
//!
//! With the log disarmed (`--access-log off`, or no threshold, no
//! sampling, and no `?trace=1` ever sent), nothing is ever formatted or
//! written — the per-request cost is one branch.

use crate::span::{RequestSpan, STAGE_NAMES};
use std::io::Write;
use std::sync::Mutex;
use std::time::SystemTime;

/// Where access-log records go.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum LogTarget {
    /// Single-line JSON records to stderr (the default sink; writes
    /// nothing unless a threshold/sample/`?trace=1` asks for a record).
    #[default]
    Stderr,
    /// Append to a file (created if missing).
    File(String),
    /// No records ever, regardless of thresholds.
    Off,
}

impl std::str::FromStr for LogTarget {
    type Err = String;

    fn from_str(s: &str) -> Result<LogTarget, String> {
        match s {
            "off" | "none" => Ok(LogTarget::Off),
            "stderr" | "-" => Ok(LogTarget::Stderr),
            "" => Err("empty --access-log target".to_string()),
            path => Ok(LogTarget::File(path.to_string())),
        }
    }
}

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

/// The armed (or disarmed) access log shared by both serving cores.
pub struct AccessLog {
    sink: Option<Sink>,
    slow_us: Option<u64>,
    sample: u64,
}

impl AccessLog {
    /// Build from configuration; opening the file target can fail.
    pub fn new(
        target: &LogTarget,
        slow_ms: Option<u64>,
        sample: u64,
    ) -> std::io::Result<AccessLog> {
        let sink = match target {
            LogTarget::Off => None,
            LogTarget::Stderr => Some(Sink::Stderr),
            LogTarget::File(path) => {
                let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
                Some(Sink::File(Mutex::new(file)))
            }
        };
        Ok(AccessLog { sink, slow_us: slow_ms.map(|ms| ms.saturating_mul(1000)), sample })
    }

    /// A never-logging instance (the `LogTarget::Off` shape).
    pub fn disabled() -> AccessLog {
        AccessLog { sink: None, slow_us: None, sample: 0 }
    }

    /// Is there any sink records could reach? When false, spans skip
    /// allocating their [`crate::span::LogCtx`] entirely.
    pub fn armed(&self) -> bool {
        self.sink.is_some()
    }

    /// The slow threshold in microseconds, if one is configured.
    pub fn slow_us(&self) -> Option<u64> {
        self.slow_us
    }

    /// Should a span that took `wall_us` produce a record?
    pub fn wants(&self, span: &RequestSpan, wall_us: u64) -> bool {
        if self.sink.is_none() {
            return false;
        }
        span.force_log
            || self.slow_us.is_some_and(|t| wall_us >= t)
            || (self.sample > 0 && span.id % self.sample == 0)
    }

    /// Log `span` if the policy wants it; `wall_us` is the span's
    /// measured wall time (stage laps plus the final delivery gap).
    pub fn log(&self, span: &RequestSpan, wall_us: u64) {
        if !self.wants(span, wall_us) {
            return;
        }
        let record = render_record(span, wall_us, self.slow_us);
        match &self.sink {
            Some(Sink::Stderr) => eprintln!("{record}"),
            Some(Sink::File(file)) => {
                let mut file = file.lock().unwrap();
                let _ = writeln!(file, "{record}");
            }
            None => {}
        }
    }
}

fn json_opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => crate::json_str(s),
        None => "null".to_string(),
    }
}

/// Render one span as a single-line JSON record (no trailing newline).
pub fn render_record(span: &RequestSpan, wall_us: u64, slow_us: Option<u64>) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let stages = STAGE_NAMES
        .iter()
        .zip(span.stages_us())
        .map(|(name, us)| format!("\"{name}\": {us}"))
        .collect::<Vec<_>>()
        .join(", ");
    let endpoint = crate::metrics::ENDPOINTS
        .get(span.endpoint)
        .copied()
        .unwrap_or("other");
    let mut record = format!(
        "{{\"ts_ms\": {ts_ms}, \"id\": {}, \"endpoint\": {}, \"status\": {}, \
         \"outcome\": \"{}\", \"slow\": {}, \"wall_us\": {wall_us}, \"stages_us\": {{{stages}}}, \
         \"bytes_in\": {}, \"bytes_out\": {}, \"queue_depth\": {}, \"batch_size\": {}, \
         \"deadline_budget_ms\": {}, \"deadline_remaining_ms\": {}",
        span.id,
        crate::json_str(endpoint),
        span.status,
        span.outcome.as_str(),
        slow_us.is_some_and(|t| wall_us >= t),
        span.bytes_in,
        span.bytes_out,
        span.queue_depth,
        span.batch_size,
        span.budget
            .map(|b| b.as_millis().to_string())
            .unwrap_or_else(|| "null".to_string()),
        span.deadline_remaining()
            .map(|r| r.as_millis().to_string())
            .unwrap_or_else(|| "null".to_string()),
    );
    if let Some(log) = &span.log {
        record.push_str(&format!(
            ", \"method\": {}, \"path\": {}, \"doc\": {}, \"query\": {}, \"strategy\": {}",
            crate::json_str(&log.method),
            crate::json_str(&log.path),
            json_opt_str(&log.doc),
            json_opt_str(&log.query),
            json_opt_str(&log.strategy),
        ));
        if let Some(trace) = &log.trace_json {
            record.push_str(", \"trace\": ");
            record.push_str(trace);
        }
    }
    record.push('}');
    debug_assert!(!record.contains('\n'), "access-log records are single-line");
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{LogCtx, Stage};
    use std::time::Instant;

    fn span_with_log() -> RequestSpan {
        let mut span = RequestSpan::begin(Instant::now());
        span.endpoint = 0; // "/query"
        span.finish_status(200);
        span.bytes_in = 120;
        span.bytes_out = 450;
        span.mark(Stage::Execute);
        span.log = Some(Box::new(LogCtx {
            method: "GET".into(),
            path: "/query".into(),
            doc: Some("bib".into()),
            query: Some("//a[b=\"x\"]".into()),
            strategy: Some("twigstack".into()),
            trace_json: Some("{\"v\": 1}".into()),
        }));
        span
    }

    #[test]
    fn records_are_single_line_json_with_stage_laps() {
        let record = render_record(&span_with_log(), 1234, Some(1000));
        assert!(!record.contains('\n'), "{record}");
        assert!(record.starts_with('{') && record.ends_with('}'), "{record}");
        assert!(record.contains("\"endpoint\": \"/query\""), "{record}");
        assert!(record.contains("\"slow\": true"), "{record}");
        assert!(record.contains("\"wall_us\": 1234"), "{record}");
        assert!(record.contains("\"stages_us\": {\"read\": 0"), "{record}");
        assert!(record.contains("\"query\": \"//a[b=\\\"x\\\"]\""), "{record}");
        assert!(record.contains("\"trace\": {\"v\": 1}"), "{record}");
    }

    #[test]
    fn sampling_is_deterministic_on_request_id() {
        let log = AccessLog { sink: Some(Sink::Stderr), slow_us: None, sample: 4 };
        let mut span = RequestSpan::begin(Instant::now());
        span.id = 8;
        assert!(log.wants(&span, 10));
        span.id = 9;
        assert!(!log.wants(&span, 10));
        span.force_log = true;
        assert!(log.wants(&span, 10), "?trace=1 overrides sampling");
    }

    #[test]
    fn slow_threshold_and_disarmed_sink() {
        let log = AccessLog { sink: Some(Sink::Stderr), slow_us: Some(5_000), sample: 0 };
        let span = RequestSpan::begin(Instant::now());
        assert!(!log.wants(&span, 4_999));
        assert!(log.wants(&span, 5_000));
        let off = AccessLog::disabled();
        assert!(!off.armed());
        assert!(!off.wants(&span, u64::MAX));
    }

    #[test]
    fn log_target_parses() {
        assert_eq!("off".parse::<LogTarget>(), Ok(LogTarget::Off));
        assert_eq!("stderr".parse::<LogTarget>(), Ok(LogTarget::Stderr));
        assert_eq!(
            "/tmp/x.log".parse::<LogTarget>(),
            Ok(LogTarget::File("/tmp/x.log".into()))
        );
        assert!("".parse::<LogTarget>().is_err());
    }
}
