//! The document catalog: named, `Arc`-shared, immutable loaded
//! documents (`Document` + `TagIndex` + `DocStats`) behind a bounded
//! LRU.
//!
//! Loading is the expensive step the server amortizes — parse (or
//! `.blsm`-decode), index, and gather statistics once, then serve any
//! number of concurrent queries from the shared entry. Eviction only
//! drops the catalog's reference: requests already holding an
//! `Arc<DocEntry>` finish safely, and the memory is reclaimed when the
//! last of them drops.

use blossom_core::engine::{Engine, EngineOptions, SharedPlanCache};
use blossom_core::update::{apply_mutations, UpdateError};
use blossom_xml::mutate::Mutation;
use blossom_xml::stats::DocStats;
use blossom_xml::{load, Document, TagIndex};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One loaded document with its access paths, shared across requests.
pub struct DocEntry {
    pub name: String,
    pub doc: Arc<Document>,
    pub index: Arc<TagIndex>,
    pub stats: Arc<DocStats>,
    /// Approximate heap footprint (document + index), for the LRU cap.
    pub bytes: usize,
}

impl DocEntry {
    /// Build the per-request engine view over this entry: shared
    /// document, index, stats and plan cache; request-local thread
    /// width, deadline, and trace sink.
    pub fn engine(&self, plans: Arc<SharedPlanCache>, options: EngineOptions) -> Engine {
        Engine::with_shared(
            self.doc.clone(),
            self.index.clone(),
            self.stats.clone(),
            plans,
            options,
        )
    }
}

struct Inner {
    /// Entries with their last-use stamp; small catalogs, linear scans.
    entries: Vec<(Arc<DocEntry>, u64)>,
    tick: u64,
    evictions: u64,
}

/// Why [`Catalog::update`] did not swap a new snapshot in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogUpdateError {
    /// No document of that name is loaded.
    NotFound,
    /// The mutation script was rejected (message names the mutation).
    Invalid(String),
    /// The deadline passed mid-script; the old snapshot stands.
    Deadline,
}

impl From<UpdateError> for CatalogUpdateError {
    fn from(e: UpdateError) -> CatalogUpdateError {
        match e {
            UpdateError::Invalid(m) => CatalogUpdateError::Invalid(m),
            UpdateError::Deadline => CatalogUpdateError::Deadline,
        }
    }
}

impl std::fmt::Display for CatalogUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogUpdateError::NotFound => write!(f, "document not loaded"),
            CatalogUpdateError::Invalid(m) => write!(f, "invalid update: {m}"),
            CatalogUpdateError::Deadline => write!(f, "deadline exceeded: update aborted"),
        }
    }
}

/// A name → [`DocEntry`] map bounded by total approximate bytes.
pub struct Catalog {
    inner: Mutex<Inner>,
    /// Byte budget across entries. At least one entry is always kept,
    /// so a single document larger than the cap still loads.
    cap_bytes: usize,
}

impl Catalog {
    pub fn new(cap_bytes: usize) -> Catalog {
        Catalog {
            inner: Mutex::new(Inner { entries: Vec::new(), tick: 0, evictions: 0 }),
            cap_bytes,
        }
    }

    /// Parse/decode `bytes` (XML or `.blsm`, sniffed), index it, and
    /// insert it under `name`, replacing any previous entry of that name
    /// and evicting least-recently-used entries over the byte cap.
    pub fn load_bytes(&self, name: &str, bytes: &[u8]) -> Result<Arc<DocEntry>, String> {
        // Snapshots with an embedded stats section skip the analysis
        // passes; XML text computes stats here, once, for all requests.
        let (doc, stats) = load::document_and_stats_from_bytes(bytes, name)?;
        let index = TagIndex::build(&doc);
        let entry = Arc::new(DocEntry {
            name: name.to_string(),
            bytes: doc.approx_heap_bytes() + index.approx_heap_bytes() + stats.approx_heap_bytes(),
            doc: Arc::new(doc),
            index: Arc::new(index),
            stats: Arc::new(stats),
        });

        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.retain(|(e, _)| e.name != name);
        inner.entries.push((entry.clone(), tick));
        // Evict coldest-first until under budget, but never the entry we
        // just inserted.
        while inner.entries.len() > 1
            && inner.entries.iter().map(|(e, _)| e.bytes).sum::<usize>() > self.cap_bytes
        {
            let coldest = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (e, _))| e.name != name)
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i);
            match coldest {
                Some(i) => {
                    inner.entries.remove(i);
                    inner.evictions += 1;
                }
                None => break,
            }
        }
        Ok(entry)
    }

    /// Apply a mutation script to the entry under `name` and swap the
    /// mutated snapshot in. The splice and index maintenance run
    /// *outside* the catalog lock: readers keep resolving `name` to the
    /// old immutable snapshot (and requests already holding its
    /// `Arc<DocEntry>` are never disturbed) until the one atomic swap at
    /// the end. Concurrent updates to the same name are last-writer-wins,
    /// like `load_bytes`. Returns the replaced snapshot's document uid —
    /// the key prefix the caller must invalidate in the shared plan
    /// cache — and the new entry.
    pub fn update(
        &self,
        name: &str,
        muts: &[Mutation],
        deadline: Option<Instant>,
    ) -> Result<(u64, Arc<DocEntry>), CatalogUpdateError> {
        let Some(old) = self.get(name) else {
            return Err(CatalogUpdateError::NotFound);
        };
        let updated = apply_mutations(&old.doc, &old.index, muts, deadline)?;
        let entry = Arc::new(DocEntry {
            name: name.to_string(),
            bytes: updated.doc.approx_heap_bytes()
                + updated.index.approx_heap_bytes()
                + updated.stats.approx_heap_bytes(),
            doc: updated.doc,
            index: updated.index,
            stats: updated.stats,
        });
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.retain(|(e, _)| e.name != name);
        inner.entries.push((entry.clone(), tick));
        Ok((old.doc.uid(), entry))
    }

    /// Look up `name`, marking it most-recently-used.
    pub fn get(&self, name: &str) -> Option<Arc<DocEntry>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.iter_mut().find(|(e, _)| e.name == name).map(|(e, stamp)| {
            *stamp = tick;
            e.clone()
        })
    }

    /// Occupancy gauges for `/metrics`: resident documents, their total
    /// approximate heap bytes, and the lifetime eviction count — one
    /// lock acquisition, no per-entry clones.
    pub fn occupancy(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock().unwrap();
        let bytes: usize = inner.entries.iter().map(|(e, _)| e.bytes).sum();
        (inner.entries.len() as u64, bytes as u64, inner.evictions)
    }

    /// `(name, approx bytes)` per entry, most recently used last, plus
    /// the lifetime eviction count.
    pub fn snapshot(&self) -> (Vec<(String, usize)>, u64) {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<_> = inner.entries.clone();
        entries.sort_by_key(|(_, stamp)| *stamp);
        (entries.into_iter().map(|(e, _)| (e.name.clone(), e.bytes)).collect(), inner.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_then_get_shares_one_entry() {
        let catalog = Catalog::new(usize::MAX);
        let loaded = catalog.load_bytes("bib", b"<bib><book/></bib>").unwrap();
        let got = catalog.get("bib").unwrap();
        assert!(Arc::ptr_eq(&loaded, &got));
        assert!(catalog.get("other").is_none());
    }

    #[test]
    fn reload_replaces_the_entry() {
        let catalog = Catalog::new(usize::MAX);
        catalog.load_bytes("d", b"<r><a/></r>").unwrap();
        catalog.load_bytes("d", b"<r><a/><a/></r>").unwrap();
        let (entries, _) = catalog.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(catalog.get("d").unwrap().doc.len(), 4);
    }

    #[test]
    fn lru_eviction_respects_the_byte_cap_and_recency() {
        // Cap that fits roughly one entry: loading three evicts the
        // coldest, and touching an entry protects it.
        let catalog = Catalog::new(600);
        catalog.load_bytes("a", b"<r><x>aaaaaaaaaa</x></r>").unwrap();
        catalog.load_bytes("b", b"<r><x>bbbbbbbbbb</x></r>").unwrap();
        catalog.get("a");
        catalog.load_bytes("c", b"<r><x>cccccccccc</x></r>").unwrap();
        let (entries, evictions) = catalog.snapshot();
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"c"), "{names:?}");
        assert!(!names.contains(&"b"), "touched 'a' should outlive 'b': {names:?}");
        assert!(evictions >= 1);
    }

    #[test]
    fn an_oversized_document_still_loads() {
        let catalog = Catalog::new(1);
        catalog.load_bytes("big", b"<r><a/><b/><c/></r>").unwrap();
        assert!(catalog.get("big").is_some());
    }

    #[test]
    fn update_swaps_the_snapshot_and_keeps_old_readers_stable() {
        use blossom_xml::mutate::parse_mutations;
        let catalog = Catalog::new(usize::MAX);
        catalog.load_bytes("d", b"<bib><book><title>a</title></book></bib>").unwrap();
        let reader = catalog.get("d").unwrap();
        let muts = parse_mutations("insert 1 1 <book><title>b</title></book>").unwrap();
        let (old_uid, new_entry) = catalog.update("d", &muts, None).unwrap();
        assert_eq!(old_uid, reader.doc.uid());
        assert_ne!(new_entry.doc.uid(), old_uid, "mutated snapshot has a fresh uid");
        // The reader's snapshot is untouched; lookups see the new one.
        assert_eq!(reader.doc.len(), 5);
        assert_eq!(catalog.get("d").unwrap().doc.len(), 8);
        let (entries, _) = catalog.snapshot();
        assert_eq!(entries.len(), 1, "swap replaces, never duplicates");
    }

    #[test]
    fn update_errors_leave_the_entry_alone() {
        use blossom_xml::mutate::parse_mutations;
        let catalog = Catalog::new(usize::MAX);
        assert!(matches!(
            catalog.update("ghost", &[], None),
            Err(CatalogUpdateError::NotFound)
        ));
        catalog.load_bytes("d", b"<r><a/></r>").unwrap();
        let before = catalog.get("d").unwrap();
        let muts = parse_mutations("delete 1.9").unwrap();
        assert!(matches!(
            catalog.update("d", &muts, None),
            Err(CatalogUpdateError::Invalid(_))
        ));
        assert!(Arc::ptr_eq(&before, &catalog.get("d").unwrap()), "failed update is a no-op");
    }

    #[test]
    fn bad_bytes_do_not_poison_the_catalog() {
        let catalog = Catalog::new(usize::MAX);
        assert!(catalog.load_bytes("bad", b"<r><unclosed>").is_err());
        assert!(catalog.get("bad").is_none());
        catalog.load_bytes("good", b"<r/>").unwrap();
        assert!(catalog.get("good").is_some());
    }
}
