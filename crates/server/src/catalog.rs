//! The document catalog: named, `Arc`-shared, immutable loaded
//! documents (`Document` + `TagIndex` + `DocStats`) behind a bounded
//! LRU.
//!
//! Loading is the expensive step the server amortizes — parse (or
//! `.blsm`-decode), index, and gather statistics once, then serve any
//! number of concurrent queries from the shared entry. Eviction only
//! drops the catalog's reference: requests already holding an
//! `Arc<DocEntry>` finish safely, and the memory is reclaimed when the
//! last of them drops.

use blossom_core::engine::{Engine, EngineOptions, SharedPlanCache};
use blossom_xml::stats::DocStats;
use blossom_xml::{load, Document, TagIndex};
use std::sync::{Arc, Mutex};

/// One loaded document with its access paths, shared across requests.
pub struct DocEntry {
    pub name: String,
    pub doc: Arc<Document>,
    pub index: Arc<TagIndex>,
    pub stats: Arc<DocStats>,
    /// Approximate heap footprint (document + index), for the LRU cap.
    pub bytes: usize,
}

impl DocEntry {
    /// Build the per-request engine view over this entry: shared
    /// document, index, stats and plan cache; request-local thread
    /// width, deadline, and trace sink.
    pub fn engine(&self, plans: Arc<SharedPlanCache>, options: EngineOptions) -> Engine {
        Engine::with_shared(
            self.doc.clone(),
            self.index.clone(),
            self.stats.clone(),
            plans,
            options,
        )
    }
}

struct Inner {
    /// Entries with their last-use stamp; small catalogs, linear scans.
    entries: Vec<(Arc<DocEntry>, u64)>,
    tick: u64,
    evictions: u64,
}

/// A name → [`DocEntry`] map bounded by total approximate bytes.
pub struct Catalog {
    inner: Mutex<Inner>,
    /// Byte budget across entries. At least one entry is always kept,
    /// so a single document larger than the cap still loads.
    cap_bytes: usize,
}

impl Catalog {
    pub fn new(cap_bytes: usize) -> Catalog {
        Catalog {
            inner: Mutex::new(Inner { entries: Vec::new(), tick: 0, evictions: 0 }),
            cap_bytes,
        }
    }

    /// Parse/decode `bytes` (XML or `.blsm`, sniffed), index it, and
    /// insert it under `name`, replacing any previous entry of that name
    /// and evicting least-recently-used entries over the byte cap.
    pub fn load_bytes(&self, name: &str, bytes: &[u8]) -> Result<Arc<DocEntry>, String> {
        // Snapshots with an embedded stats section skip the analysis
        // passes; XML text computes stats here, once, for all requests.
        let (doc, stats) = load::document_and_stats_from_bytes(bytes, name)?;
        let index = TagIndex::build(&doc);
        let entry = Arc::new(DocEntry {
            name: name.to_string(),
            bytes: doc.approx_heap_bytes() + index.approx_heap_bytes() + stats.approx_heap_bytes(),
            doc: Arc::new(doc),
            index: Arc::new(index),
            stats: Arc::new(stats),
        });

        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.retain(|(e, _)| e.name != name);
        inner.entries.push((entry.clone(), tick));
        // Evict coldest-first until under budget, but never the entry we
        // just inserted.
        while inner.entries.len() > 1
            && inner.entries.iter().map(|(e, _)| e.bytes).sum::<usize>() > self.cap_bytes
        {
            let coldest = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (e, _))| e.name != name)
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i);
            match coldest {
                Some(i) => {
                    inner.entries.remove(i);
                    inner.evictions += 1;
                }
                None => break,
            }
        }
        Ok(entry)
    }

    /// Look up `name`, marking it most-recently-used.
    pub fn get(&self, name: &str) -> Option<Arc<DocEntry>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.iter_mut().find(|(e, _)| e.name == name).map(|(e, stamp)| {
            *stamp = tick;
            e.clone()
        })
    }

    /// `(name, approx bytes)` per entry, most recently used last, plus
    /// the lifetime eviction count.
    pub fn snapshot(&self) -> (Vec<(String, usize)>, u64) {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<_> = inner.entries.clone();
        entries.sort_by_key(|(_, stamp)| *stamp);
        (entries.into_iter().map(|(e, _)| (e.name.clone(), e.bytes)).collect(), inner.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_then_get_shares_one_entry() {
        let catalog = Catalog::new(usize::MAX);
        let loaded = catalog.load_bytes("bib", b"<bib><book/></bib>").unwrap();
        let got = catalog.get("bib").unwrap();
        assert!(Arc::ptr_eq(&loaded, &got));
        assert!(catalog.get("other").is_none());
    }

    #[test]
    fn reload_replaces_the_entry() {
        let catalog = Catalog::new(usize::MAX);
        catalog.load_bytes("d", b"<r><a/></r>").unwrap();
        catalog.load_bytes("d", b"<r><a/><a/></r>").unwrap();
        let (entries, _) = catalog.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(catalog.get("d").unwrap().doc.len(), 4);
    }

    #[test]
    fn lru_eviction_respects_the_byte_cap_and_recency() {
        // Cap that fits roughly one entry: loading three evicts the
        // coldest, and touching an entry protects it.
        let catalog = Catalog::new(600);
        catalog.load_bytes("a", b"<r><x>aaaaaaaaaa</x></r>").unwrap();
        catalog.load_bytes("b", b"<r><x>bbbbbbbbbb</x></r>").unwrap();
        catalog.get("a");
        catalog.load_bytes("c", b"<r><x>cccccccccc</x></r>").unwrap();
        let (entries, evictions) = catalog.snapshot();
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"c"), "{names:?}");
        assert!(!names.contains(&"b"), "touched 'a' should outlive 'b': {names:?}");
        assert!(evictions >= 1);
    }

    #[test]
    fn an_oversized_document_still_loads() {
        let catalog = Catalog::new(1);
        catalog.load_bytes("big", b"<r><a/><b/><c/></r>").unwrap();
        assert!(catalog.get("big").is_some());
    }

    #[test]
    fn bad_bytes_do_not_poison_the_catalog() {
        let catalog = Catalog::new(usize::MAX);
        assert!(catalog.load_bytes("bad", b"<r><unclosed>").is_err());
        assert!(catalog.get("bad").is_none());
        catalog.load_bytes("good", b"<r/>").unwrap();
        assert!(catalog.get("good").is_some());
    }
}
