//! The document catalog: named, `Arc`-shared, immutable loaded
//! documents (`Document` + `TagIndex` + `DocStats`) behind a bounded
//! LRU, optionally backed by a persistent [`StoreDir`] of BLM2
//! snapshots.
//!
//! Loading is the expensive step the server amortizes — parse (or
//! snapshot-decode), index, and gather statistics once, then serve any
//! number of concurrent queries from the shared entry. Without a store,
//! eviction drops the catalog's reference: requests already holding an
//! `Arc<DocEntry>` finish safely, and the memory is reclaimed when the
//! last of them drops.
//!
//! With a store (`blossom serve --store-dir`), every load publishes a
//! BLM2 generation file first and serves the document *mapped* from it,
//! so the entry's resident heap charge is a small constant (symbols,
//! attributes, stats) regardless of document size — the columns live in
//! the kernel page cache. Eviction then merely forgets the mapping
//! (a **spill** — the bytes are already on disk) and a later `get`
//! remaps the generation file (a **remap**), both O(columns). Updates
//! publish a new generation and atomically swap, so readers of the old
//! snapshot are never disturbed and a crash at any instant leaves only
//! complete generations (temp-file + rename protocol).

use blossom_core::engine::{Engine, EngineOptions, SharedPlanCache};
use blossom_core::update::{apply_mutations, UpdateError};
use blossom_storage::{load as storage_load, snapshot, EncodeOptions, OpenMode, StoreDir};
use blossom_xml::mutate::Mutation;
use blossom_xml::stats::DocStats;
use blossom_xml::{Document, TagIndex};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One loaded document with its access paths, shared across requests.
pub struct DocEntry {
    pub name: String,
    pub doc: Arc<Document>,
    pub index: Arc<TagIndex>,
    pub stats: Arc<DocStats>,
    /// Approximate *resident* heap footprint, for the LRU cap. Mapped
    /// columns charge nothing here — their bytes are page cache.
    pub bytes: usize,
    /// Size of the backing generation file (0 without a store).
    pub file_bytes: usize,
    /// The backing generation (0 without a store).
    pub generation: u64,
}

impl DocEntry {
    /// Build the per-request engine view over this entry: shared
    /// document, index, stats and plan cache; request-local thread
    /// width, deadline, and trace sink.
    pub fn engine(&self, plans: Arc<SharedPlanCache>, options: EngineOptions) -> Engine {
        Engine::with_shared(
            self.doc.clone(),
            self.index.clone(),
            self.stats.clone(),
            plans,
            options,
        )
    }
}

/// A spilled entry: the snapshot lives only on disk until the next get.
#[derive(Clone)]
struct SpillStub {
    name: String,
    generation: u64,
    file_bytes: usize,
}

enum Slot {
    Resident(Arc<DocEntry>),
    Spilled(SpillStub),
}

impl Slot {
    fn name(&self) -> &str {
        match self {
            Slot::Resident(e) => &e.name,
            Slot::Spilled(s) => &s.name,
        }
    }
}

struct Inner {
    /// Entries with their last-use stamp; small catalogs, linear scans.
    entries: Vec<(Slot, u64)>,
    tick: u64,
    evictions: u64,
    spills: u64,
    remaps: u64,
    next_gen: u64,
}

/// Why [`Catalog::update`] did not swap a new snapshot in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogUpdateError {
    /// No document of that name is loaded.
    NotFound,
    /// The mutation script was rejected (message names the mutation).
    Invalid(String),
    /// The deadline passed mid-script; the old snapshot stands.
    Deadline,
}

impl From<UpdateError> for CatalogUpdateError {
    fn from(e: UpdateError) -> CatalogUpdateError {
        match e {
            UpdateError::Invalid(m) => CatalogUpdateError::Invalid(m),
            UpdateError::Deadline => CatalogUpdateError::Deadline,
        }
    }
}

impl std::fmt::Display for CatalogUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogUpdateError::NotFound => write!(f, "document not loaded"),
            CatalogUpdateError::Invalid(m) => write!(f, "invalid update: {m}"),
            CatalogUpdateError::Deadline => write!(f, "deadline exceeded: update aborted"),
        }
    }
}

/// Point-in-time byte accounting for `/stats` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Entries currently resident (owned or mapped).
    pub resident_docs: u64,
    /// Entries spilled to disk only.
    pub spilled_docs: u64,
    /// Approximate resident heap bytes across resident entries.
    pub resident_bytes: u64,
    /// Generation-file bytes of resident *mapped* entries (page cache,
    /// reclaimable, not heap).
    pub mapped_bytes: u64,
    /// Generation-file bytes of spilled entries.
    pub spilled_bytes: u64,
    /// Lifetime evictions (drops and spills).
    pub evictions: u64,
    /// Lifetime resident→disk spills.
    pub spills: u64,
    /// Lifetime disk→resident remaps.
    pub remaps: u64,
}

/// One `/stats` row.
#[derive(Debug, Clone)]
pub struct CatalogRow {
    pub name: String,
    /// Resident heap bytes (see [`DocEntry::bytes`]).
    pub bytes: usize,
    /// `"owned"`, `"mapped"`, or `"spilled"`.
    pub state: &'static str,
    /// Backing generation (0 without a store).
    pub generation: u64,
}

/// A name → [`DocEntry`] map bounded by total approximate resident
/// bytes, optionally spilling to a [`StoreDir`].
pub struct Catalog {
    inner: Mutex<Inner>,
    /// Byte budget across entries. At least one entry is always kept,
    /// so a single document larger than the cap still loads.
    cap_bytes: usize,
    store: Option<StoreDir>,
}

impl Catalog {
    pub fn new(cap_bytes: usize) -> Catalog {
        Catalog { inner: Mutex::new(Inner::empty()), cap_bytes, store: None }
    }

    /// A catalog that persists every entry as BLM2 generations in
    /// `store` and serves them mapped. Call [`Catalog::recover`] to
    /// repopulate from an existing directory.
    pub fn with_store(cap_bytes: usize, store: StoreDir) -> Catalog {
        Catalog { inner: Mutex::new(Inner::empty()), cap_bytes, store: Some(store) }
    }

    /// Parse/decode `bytes` (XML, BLM1, or BLM2 — sniffed), index it,
    /// and insert it under `name`, replacing any previous entry of that
    /// name and evicting least-recently-used entries over the byte cap.
    /// With a store, the document is published as a generation file
    /// first and served mapped from it.
    pub fn load_bytes(&self, name: &str, bytes: &[u8]) -> Result<Arc<DocEntry>, String> {
        let entry = match &self.store {
            None => {
                let loaded = storage_load::loaded_from_bytes(bytes, name)?;
                entry_from(name, loaded, 0, 0)
            }
            Some(store) => {
                // Normalize to BLM2 bytes; already-BLM2 input is
                // published verbatim (after validation by the open
                // below), anything else is encoded.
                let blm2: Vec<u8> = if storage_load::is_blm2(bytes) {
                    bytes.to_vec()
                } else {
                    let loaded = storage_load::loaded_from_bytes(bytes, name)?;
                    snapshot::encode(
                        &loaded.doc,
                        &loaded.index,
                        &loaded.stats,
                        EncodeOptions::default(),
                    )
                    .map_err(|e| format!("{name}: {e}"))?
                };
                let generation = self.alloc_gen();
                let path =
                    store.publish(name, generation, &blm2).map_err(|e| format!("{name}: {e}"))?;
                let snap = snapshot::open_path(&path, OpenMode::Map)
                    .map_err(|e| format!("{name}: {e}"))?;
                entry_from(
                    name,
                    storage_load::Loaded { doc: snap.doc, index: snap.index, stats: snap.stats },
                    generation,
                    blm2.len(),
                )
            }
        };
        self.insert(entry.clone());
        if let Some(store) = &self.store {
            store.remove_older(name, entry.generation);
        }
        Ok(entry)
    }

    /// Apply a mutation script to the entry under `name` and swap the
    /// mutated snapshot in. The splice and index maintenance run
    /// *outside* the catalog lock: readers keep resolving `name` to the
    /// old immutable snapshot (and requests already holding its
    /// `Arc<DocEntry>` are never disturbed) until the one atomic swap at
    /// the end. With a store, the mutated document is published as a new
    /// generation (temp-file + rename) before the swap, and older
    /// generations are pruned after it — a crash at any instant leaves a
    /// complete generation on disk. Concurrent updates to the same name
    /// are last-writer-wins, like `load_bytes`. Returns the replaced
    /// snapshot's document uid — the key prefix the caller must
    /// invalidate in the shared plan cache — and the new entry.
    pub fn update(
        &self,
        name: &str,
        muts: &[Mutation],
        deadline: Option<Instant>,
    ) -> Result<(u64, Arc<DocEntry>), CatalogUpdateError> {
        let Some(old) = self.get(name) else {
            return Err(CatalogUpdateError::NotFound);
        };
        let updated = apply_mutations(&old.doc, &old.index, muts, deadline)?;
        let entry = match &self.store {
            None => Arc::new(DocEntry {
                name: name.to_string(),
                bytes: updated.doc.approx_heap_bytes()
                    + updated.index.approx_heap_bytes()
                    + updated.stats.approx_heap_bytes(),
                doc: updated.doc,
                index: updated.index,
                stats: updated.stats,
                file_bytes: 0,
                generation: 0,
            }),
            Some(store) => {
                let fail = |e: snapshot::StorageError| CatalogUpdateError::Invalid(e.0);
                let blm2 = snapshot::encode(
                    &updated.doc,
                    &updated.index,
                    &updated.stats,
                    EncodeOptions::default(),
                )
                .map_err(fail)?;
                let generation = self.alloc_gen();
                let path = store.publish(name, generation, &blm2).map_err(fail)?;
                let snap = snapshot::open_path(&path, OpenMode::Map).map_err(fail)?;
                entry_from(
                    name,
                    storage_load::Loaded { doc: snap.doc, index: snap.index, stats: snap.stats },
                    generation,
                    blm2.len(),
                )
            }
        };
        self.insert(entry.clone());
        if let Some(store) = &self.store {
            store.remove_older(name, entry.generation);
        }
        Ok((old.doc.uid(), entry))
    }

    /// Look up `name`, marking it most-recently-used. A spilled entry is
    /// remapped from its generation file — the `mmap` + validation run
    /// outside the catalog lock, so concurrent readers of other entries
    /// never stall behind a remap.
    pub fn get(&self, name: &str) -> Option<Arc<DocEntry>> {
        loop {
            let stub = {
                let mut inner = self.inner.lock().unwrap();
                inner.tick += 1;
                let tick = inner.tick;
                match inner.entries.iter_mut().find(|(s, _)| s.name() == name) {
                    None => return None,
                    Some((Slot::Resident(e), stamp)) => {
                        *stamp = tick;
                        return Some(e.clone());
                    }
                    Some((Slot::Spilled(s), _)) => s.clone(),
                }
            };
            let store = self.store.as_ref()?;
            let path = store.path_for(&stub.name, stub.generation);
            let snap = snapshot::open_path(&path, OpenMode::Map).ok()?;
            let entry = entry_from(
                name,
                storage_load::Loaded { doc: snap.doc, index: snap.index, stats: snap.stats },
                stub.generation,
                stub.file_bytes,
            );
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.iter_mut().find(|(s, _)| s.name() == name) {
                // Entry vanished while we mapped: the mapped view is
                // still a consistent snapshot; serve it.
                None => return Some(entry),
                // Another thread remapped (or reloaded) first.
                Some((Slot::Resident(e), stamp)) => {
                    *stamp = tick;
                    return Some(e.clone());
                }
                Some((slot @ Slot::Spilled(_), stamp)) => {
                    let Slot::Spilled(cur) = &*slot else { unreachable!() };
                    if cur.generation != stub.generation {
                        // A newer generation was spilled mid-remap;
                        // retry against it.
                        continue;
                    }
                    *slot = Slot::Resident(entry.clone());
                    *stamp = tick;
                    inner.remaps += 1;
                    self.evict_over_cap(&mut inner, name);
                    return Some(entry);
                }
            }
        }
    }

    /// Repopulate from the store directory after a restart: for each
    /// document name, the newest generation that *fully validates* wins;
    /// broken (e.g. torn by `kill -9` before the rename — normally
    /// impossible, but also covers external truncation) newer files are
    /// deleted, older redundant generations pruned. Entries come back
    /// spilled and remap lazily on first use. Returns recovered names.
    pub fn recover(&self) -> Result<Vec<String>, String> {
        let Some(store) = &self.store else {
            return Ok(Vec::new());
        };
        let files = store.scan().map_err(|e| e.0)?;
        let mut recovered: Vec<String> = Vec::new();
        let mut stubs: Vec<SpillStub> = Vec::new();
        let mut max_gen = 0u64;
        for f in files {
            max_gen = max_gen.max(f.generation);
            if recovered.last().is_some_and(|n| *n == f.name) {
                continue; // newest valid generation already chosen
            }
            match snapshot::open_path(&f.path, OpenMode::Map) {
                Ok(_) => {
                    stubs.push(SpillStub {
                        name: f.name.clone(),
                        generation: f.generation,
                        file_bytes: f.bytes as usize,
                    });
                    store.remove_older(&f.name, f.generation);
                    recovered.push(f.name);
                }
                Err(_) => {
                    // Incomplete or corrupt: never serve it.
                    let _ = std::fs::remove_file(&f.path);
                }
            }
        }
        let mut inner = self.inner.lock().unwrap();
        inner.next_gen = inner.next_gen.max(max_gen);
        for stub in stubs {
            if !inner.entries.iter().any(|(s, _)| s.name() == stub.name) {
                inner.entries.push((Slot::Spilled(stub), 0));
            }
        }
        Ok(recovered)
    }

    /// Occupancy gauges for `/metrics` — one lock acquisition, no
    /// per-entry clones.
    pub fn occupancy(&self) -> Occupancy {
        let inner = self.inner.lock().unwrap();
        let mut o = Occupancy {
            evictions: inner.evictions,
            spills: inner.spills,
            remaps: inner.remaps,
            ..Occupancy::default()
        };
        for (slot, _) in &inner.entries {
            match slot {
                Slot::Resident(e) => {
                    o.resident_docs += 1;
                    o.resident_bytes += e.bytes as u64;
                    if e.doc.is_mapped() {
                        o.mapped_bytes += e.file_bytes as u64;
                    }
                }
                Slot::Spilled(s) => {
                    o.spilled_docs += 1;
                    o.spilled_bytes += s.file_bytes as u64;
                }
            }
        }
        o
    }

    /// One row per entry, most recently used last, plus the lifetime
    /// eviction count.
    pub fn snapshot(&self) -> (Vec<CatalogRow>, u64) {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<(CatalogRow, u64)> = inner
            .entries
            .iter()
            .map(|(slot, stamp)| {
                let row = match slot {
                    Slot::Resident(e) => CatalogRow {
                        name: e.name.clone(),
                        bytes: e.bytes,
                        state: if e.doc.is_mapped() { "mapped" } else { "owned" },
                        generation: e.generation,
                    },
                    Slot::Spilled(s) => CatalogRow {
                        name: s.name.clone(),
                        bytes: 0,
                        state: "spilled",
                        generation: s.generation,
                    },
                };
                (row, *stamp)
            })
            .collect();
        rows.sort_by_key(|(_, stamp)| *stamp);
        (rows.into_iter().map(|(r, _)| r).collect(), inner.evictions)
    }

    fn alloc_gen(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.next_gen += 1;
        inner.next_gen
    }

    /// Insert `entry` as most-recently-used, replacing any same-named
    /// slot, then enforce the byte cap (never evicting `entry` itself).
    fn insert(&self, entry: Arc<DocEntry>) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let name = entry.name.clone();
        inner.entries.retain(|(s, _)| s.name() != name);
        inner.entries.push((Slot::Resident(entry), tick));
        self.evict_over_cap(&mut inner, &name);
    }

    /// Evict coldest-first until resident bytes fit the cap, protecting
    /// `protect`. With a store, eviction *spills*: the generation file
    /// is already on disk, so the slot just forgets its mapping. Without
    /// one, the entry is dropped entirely.
    fn evict_over_cap(&self, inner: &mut Inner, protect: &str) {
        loop {
            let resident: usize = inner
                .entries
                .iter()
                .filter_map(|(s, _)| match s {
                    Slot::Resident(e) => Some(e.bytes),
                    Slot::Spilled(_) => None,
                })
                .sum();
            if resident <= self.cap_bytes {
                return;
            }
            let coldest = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (s, _))| {
                    matches!(s, Slot::Resident(_)) && s.name() != protect
                })
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i);
            let Some(i) = coldest else { return };
            inner.evictions += 1;
            match &self.store {
                Some(_) => {
                    let Slot::Resident(e) = &inner.entries[i].0 else { unreachable!() };
                    // Only store-backed entries can come back from disk.
                    if e.generation > 0 {
                        let stub = SpillStub {
                            name: e.name.clone(),
                            generation: e.generation,
                            file_bytes: e.file_bytes,
                        };
                        inner.entries[i].0 = Slot::Spilled(stub);
                        inner.spills += 1;
                    } else {
                        inner.entries.remove(i);
                    }
                }
                None => {
                    inner.entries.remove(i);
                }
            }
        }
    }
}

impl Inner {
    fn empty() -> Inner {
        Inner { entries: Vec::new(), tick: 0, evictions: 0, spills: 0, remaps: 0, next_gen: 0 }
    }
}

fn entry_from(
    name: &str,
    loaded: storage_load::Loaded,
    generation: u64,
    file_bytes: usize,
) -> Arc<DocEntry> {
    Arc::new(DocEntry {
        name: name.to_string(),
        bytes: loaded.doc.approx_heap_bytes()
            + loaded.index.approx_heap_bytes()
            + loaded.stats.approx_heap_bytes(),
        doc: Arc::new(loaded.doc),
        index: Arc::new(loaded.index),
        stats: Arc::new(loaded.stats),
        file_bytes,
        generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_catalog(cap: usize, tag: &str) -> (Catalog, std::path::PathBuf) {
        let dir = std::env::temp_dir()
            .join(format!("blossom-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StoreDir::open(&dir).unwrap();
        (Catalog::with_store(cap, store), dir)
    }

    #[test]
    fn load_then_get_shares_one_entry() {
        let catalog = Catalog::new(usize::MAX);
        let loaded = catalog.load_bytes("bib", b"<bib><book/></bib>").unwrap();
        let got = catalog.get("bib").unwrap();
        assert!(Arc::ptr_eq(&loaded, &got));
        assert!(catalog.get("other").is_none());
    }

    #[test]
    fn reload_replaces_the_entry() {
        let catalog = Catalog::new(usize::MAX);
        catalog.load_bytes("d", b"<r><a/></r>").unwrap();
        catalog.load_bytes("d", b"<r><a/><a/></r>").unwrap();
        let (entries, _) = catalog.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(catalog.get("d").unwrap().doc.len(), 4);
    }

    #[test]
    fn lru_eviction_respects_the_byte_cap_and_recency() {
        // Cap that fits roughly one entry: loading three evicts the
        // coldest, and touching an entry protects it.
        let catalog = Catalog::new(600);
        catalog.load_bytes("a", b"<r><x>aaaaaaaaaa</x></r>").unwrap();
        catalog.load_bytes("b", b"<r><x>bbbbbbbbbb</x></r>").unwrap();
        catalog.get("a");
        catalog.load_bytes("c", b"<r><x>cccccccccc</x></r>").unwrap();
        let (entries, evictions) = catalog.snapshot();
        let names: Vec<&str> = entries.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"c"), "{names:?}");
        assert!(!names.contains(&"b"), "touched 'a' should outlive 'b': {names:?}");
        assert!(evictions >= 1);
    }

    #[test]
    fn an_oversized_document_still_loads() {
        let catalog = Catalog::new(1);
        catalog.load_bytes("big", b"<r><a/><b/><c/></r>").unwrap();
        assert!(catalog.get("big").is_some());
    }

    #[test]
    fn update_swaps_the_snapshot_and_keeps_old_readers_stable() {
        use blossom_xml::mutate::parse_mutations;
        let catalog = Catalog::new(usize::MAX);
        catalog.load_bytes("d", b"<bib><book><title>a</title></book></bib>").unwrap();
        let reader = catalog.get("d").unwrap();
        let muts = parse_mutations("insert 1 1 <book><title>b</title></book>").unwrap();
        let (old_uid, new_entry) = catalog.update("d", &muts, None).unwrap();
        assert_eq!(old_uid, reader.doc.uid());
        assert_ne!(new_entry.doc.uid(), old_uid, "mutated snapshot has a fresh uid");
        // The reader's snapshot is untouched; lookups see the new one.
        assert_eq!(reader.doc.len(), 5);
        assert_eq!(catalog.get("d").unwrap().doc.len(), 8);
        let (entries, _) = catalog.snapshot();
        assert_eq!(entries.len(), 1, "swap replaces, never duplicates");
    }

    #[test]
    fn update_errors_leave_the_entry_alone() {
        use blossom_xml::mutate::parse_mutations;
        let catalog = Catalog::new(usize::MAX);
        assert!(matches!(
            catalog.update("ghost", &[], None),
            Err(CatalogUpdateError::NotFound)
        ));
        catalog.load_bytes("d", b"<r><a/></r>").unwrap();
        let before = catalog.get("d").unwrap();
        let muts = parse_mutations("delete 1.9").unwrap();
        assert!(matches!(
            catalog.update("d", &muts, None),
            Err(CatalogUpdateError::Invalid(_))
        ));
        assert!(Arc::ptr_eq(&before, &catalog.get("d").unwrap()), "failed update is a no-op");
    }

    #[test]
    fn bad_bytes_do_not_poison_the_catalog() {
        let catalog = Catalog::new(usize::MAX);
        assert!(catalog.load_bytes("bad", b"<r><unclosed>").is_err());
        assert!(catalog.get("bad").is_none());
        catalog.load_bytes("good", b"<r/>").unwrap();
        assert!(catalog.get("good").is_some());
    }

    #[test]
    fn a_mapped_entry_charges_a_small_resident_constant() {
        // The satellite pin: with a store, a document with tens of
        // kilobytes of content must charge only its small metadata
        // (symbols, attrs, stats) against the catalog cap.
        let mut xml = String::from("<r>");
        for i in 0..500 {
            xml.push_str(&format!("<item key=\"{i}\">payload text {i} {}</item>", "x".repeat(80)));
        }
        xml.push_str("</r>");
        let owned = Catalog::new(usize::MAX);
        let owned_entry = owned.load_bytes("d", xml.as_bytes()).unwrap();

        let (catalog, dir) = store_catalog(usize::MAX, "charge");
        let mapped_entry = catalog.load_bytes("d", xml.as_bytes()).unwrap();
        assert_eq!(mapped_entry.doc.len(), owned_entry.doc.len());
        if cfg!(all(unix, target_endian = "little")) {
            assert!(mapped_entry.doc.is_mapped());
            assert!(mapped_entry.file_bytes > 40_000, "{}", mapped_entry.file_bytes);
            // Resident charge: attrs + symbols + stats, not columns/text.
            assert!(
                mapped_entry.bytes < owned_entry.bytes / 2,
                "mapped {} vs owned {}",
                mapped_entry.bytes,
                owned_entry.bytes
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_and_remap_roundtrip_under_a_tiny_cap() {
        let (catalog, dir) = store_catalog(1, "spill");
        catalog.load_bytes("a", b"<r><x>aaaa</x></r>").unwrap();
        catalog.load_bytes("b", b"<r><y>bbbb</y></r>").unwrap();
        // Cap 1 byte: loading `b` spills `a` (never the fresh insert).
        let o = catalog.occupancy();
        assert_eq!(o.spilled_docs, 1, "{o:?}");
        assert!(o.spills >= 1);
        assert!(o.spilled_bytes > 0);
        // A get remaps the spilled entry and serves identical content.
        let a = catalog.get("a").unwrap();
        assert_eq!(blossom_xml::writer::to_string(&a.doc), "<r><x>aaaa</x></r>");
        assert!(catalog.occupancy().remaps >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_serves_only_complete_generations() {
        let dir = std::env::temp_dir()
            .join(format!("blossom-catalog-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = StoreDir::open(&dir).unwrap();
            let catalog = Catalog::with_store(usize::MAX, store);
            catalog.load_bytes("keep", b"<r><a>v1</a></r>").unwrap();
            catalog.load_bytes("torn", b"<r><b/></r>").unwrap();
        }
        // Simulate a crash mid-publish of newer generations: a stray
        // temp file and a truncated "published" file (covers external
        // truncation; the rename protocol itself never exposes one).
        let store = StoreDir::open(&dir).unwrap();
        let torn_new = store.path_for("torn", 99);
        let good = std::fs::read(store.scan().unwrap().iter().find(|f| f.name == "torn").unwrap()
            .path.clone()).unwrap();
        std::fs::write(&torn_new, &good[..good.len() / 2]).unwrap();
        std::fs::write(store.path_for("keep", 98).with_extension("blm2.tmp"), b"junk").unwrap();

        let catalog = Catalog::with_store(usize::MAX, StoreDir::open(&dir).unwrap());
        let mut names = catalog.recover().unwrap();
        names.sort();
        assert_eq!(names, ["keep", "torn"]);
        assert!(!torn_new.exists(), "broken newer generation is deleted");
        // Both recover with their pre-crash content.
        assert_eq!(
            blossom_xml::writer::to_string(&catalog.get("keep").unwrap().doc),
            "<r><a>v1</a></r>"
        );
        assert_eq!(
            blossom_xml::writer::to_string(&catalog.get("torn").unwrap().doc),
            "<r><b/></r>"
        );
        // Generations continue past the recovered maximum.
        let updated = catalog.load_bytes("keep", b"<r><a>v2</a></r>").unwrap();
        assert!(updated.generation > 98, "{}", updated.generation);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_publishes_a_new_generation_and_prunes_old_ones() {
        use blossom_xml::mutate::parse_mutations;
        let (catalog, dir) = store_catalog(usize::MAX, "gen");
        let first = catalog.load_bytes("d", b"<bib><book><title>a</title></book></bib>").unwrap();
        let muts = parse_mutations("insert 1 1 <book><title>b</title></book>").unwrap();
        let (_, second) = catalog.update("d", &muts, None).unwrap();
        assert!(second.generation > first.generation);
        if cfg!(all(unix, target_endian = "little")) {
            assert!(second.doc.is_mapped(), "updated snapshot is served mapped");
        }
        // Only the newest generation file remains.
        let store = StoreDir::open(&dir).unwrap();
        let files = store.scan().unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].generation, second.generation);
        // Old readers still navigate their (now unlinked) mapping.
        assert_eq!(first.doc.len(), 5);
        assert_eq!(catalog.get("d").unwrap().doc.len(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ten_times_over_cap_serves_byte_identical_documents() {
        // The acceptance shape in miniature: N documents whose combined
        // owned footprint is far over the cap all stay servable, with
        // resident bytes bounded.
        let mut originals = Vec::new();
        for i in 0..8 {
            let mut xml = format!("<doc{i}>");
            for j in 0..50 {
                xml.push_str(&format!("<row id=\"{j}\">{}</row>", "v".repeat(50)));
            }
            xml.push_str(&format!("</doc{i}>"));
            originals.push(xml);
        }
        // Cap ~1/10 of the total owned footprint.
        let owned_total: usize = {
            let c = Catalog::new(usize::MAX);
            originals
                .iter()
                .enumerate()
                .map(|(i, x)| c.load_bytes(&format!("d{i}"), x.as_bytes()).unwrap().bytes)
                .sum()
        };
        let (catalog, dir) = store_catalog(owned_total / 10, "sweep");
        for (i, xml) in originals.iter().enumerate() {
            catalog.load_bytes(&format!("d{i}"), xml.as_bytes()).unwrap();
        }
        for (i, xml) in originals.iter().enumerate() {
            let entry = catalog.get(&format!("d{i}")).unwrap();
            let expect = blossom_xml::Document::parse_str(xml).unwrap();
            assert_eq!(
                blossom_xml::writer::to_string(&entry.doc),
                blossom_xml::writer::to_string(&expect),
                "d{i}"
            );
            let o = catalog.occupancy();
            assert!(
                o.resident_bytes <= (owned_total / 10) as u64 + entry.bytes as u64,
                "resident {} over cap {}",
                o.resident_bytes,
                owned_total / 10
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
