//! Execution-side queueing for the event-loop server: a bounded,
//! per-client fair scheduler feeding the evaluation pool, and the
//! shared-scan batch registry that coalesces identical in-flight
//! queries.
//!
//! Fairness: jobs are queued per client (connection) and dispatched
//! round-robin across clients, so a connection pipelining heavy twig
//! queries advances one evaluation per turn while point lookups from
//! other connections interleave — one client cannot starve the rest.
//!
//! Admission: the queue is bounded by [`Sched::new`]'s capacity. A full
//! queue rejects at dispatch time — the I/O thread answers `503` with
//! `Retry-After` immediately instead of letting latency collapse under
//! an unbounded backlog. Batch joins bypass admission: they add no
//! evaluation work.

use crate::catalog::DocEntry;
use crate::http::Request;
use crate::span::RequestSpan;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Where a finished response is delivered: an I/O thread, a
/// generation-tagged connection token on it, and the request's sequence
/// slot in that connection's pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Destination {
    pub io_thread: usize,
    pub conn_token: u64,
    pub seq: u64,
}

/// One request awaiting a response — its destination plus the
/// per-request facts a (possibly batched) completion needs, and the
/// request's lifecycle span (which is why `Member` is move-only: the
/// span's stage laps and id travel with exactly one owner).
#[derive(Debug)]
pub struct Member {
    pub dest: Destination,
    /// This member's own cooperative deadline (arrival + budget).
    pub deadline: Option<Instant>,
    pub keep_alive: bool,
    /// When the request was parsed off the wire; latency histograms
    /// measure from here, so queueing delay is included.
    pub arrived: Instant,
    /// Lifecycle span: read/parse laps already recorded at dispatch.
    pub span: RequestSpan,
}

/// The coalescing key: two `/query` requests share one evaluation iff
/// they agree on the document *instance* (uid, not name — a reload
/// changes the uid), the canonical query text, the strategy, and the
/// evaluation thread width. Deadlines are deliberately excluded: they
/// are per-member (see `eventloop`'s batch completion).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    pub doc_uid: u64,
    pub query: String,
    pub strategy: String,
    pub threads: usize,
}

/// One unit of execution-pool work.
pub enum Job {
    /// Serve exactly one request (everything except batchable queries);
    /// the member (and its span) rides in the job.
    Plain { request: Request, member: Member },
    /// Leader of a coalesced batch: evaluate once, then answer every
    /// member registered under `key` when execution starts. The leader's
    /// own member is the first entry in the batch registry, not here.
    BatchLeader { request: Request, key: BatchKey, entry: Arc<DocEntry> },
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Job::Plain { member, .. } => {
                f.debug_struct("Job").field("kind", &"plain").field("member", member).finish()
            }
            Job::BatchLeader { key, .. } => {
                f.debug_struct("Job").field("kind", &"batch-leader").field("key", key).finish()
            }
        }
    }
}

struct SchedInner {
    /// Per-client FIFO queues; `ring` holds clients with pending work
    /// in round-robin order (each client appears at most once).
    queues: HashMap<u64, VecDeque<Job>>,
    ring: VecDeque<u64>,
    len: usize,
    peak: usize,
    closed: bool,
}

/// The bounded fair scheduler between I/O threads and the execution
/// pool.
pub struct Sched {
    inner: Mutex<SchedInner>,
    cv: Condvar,
    cap: usize,
}

impl Sched {
    pub fn new(cap: usize) -> Sched {
        Sched {
            inner: Mutex::new(SchedInner {
                queues: HashMap::new(),
                ring: VecDeque::new(),
                len: 0,
                peak: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue `job` for `client`; `Err(job)` when the queue is at
    /// capacity (admission rejection — the job is handed back so the
    /// caller can answer 503 without cloning requests).
    pub fn push(&self, client: u64, job: Job) -> Result<(), Job> {
        let mut inner = self.inner.lock().unwrap();
        if inner.len >= self.cap || inner.closed {
            return Err(job);
        }
        let queue = inner.queues.entry(client).or_default();
        let was_empty = queue.is_empty();
        queue.push_back(job);
        if was_empty {
            inner.ring.push_back(client);
        }
        inner.len += 1;
        inner.peak = inner.peak.max(inner.len);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeue the next job round-robin across clients; blocks while
    /// empty, returns `None` once closed *and* drained (workers exit
    /// only after every admitted job ran — the drain guarantee).
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(client) = inner.ring.pop_front() {
                let queue = inner.queues.get_mut(&client).expect("ring entry has a queue");
                let job = queue.pop_front().expect("ring entry queue is non-empty");
                if queue.is_empty() {
                    inner.queues.remove(&client);
                } else {
                    inner.ring.push_back(client);
                }
                inner.len -= 1;
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Stop admitting and wake every blocked worker; queued jobs still
    /// drain through [`Sched::pop`].
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Jobs currently queued (the `/stats` gauge).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// High-water mark of the queue depth.
    pub fn peak(&self) -> usize {
        self.inner.lock().unwrap().peak
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// In-flight batches: key → members waiting on one evaluation.
///
/// Lifecycle: the first request for a key calls [`Batches::lead`] and
/// enqueues an execution job; concurrent identical requests
/// [`Batches::join`] for free. When the leader's job starts evaluating
/// it calls [`Batches::take`], fixing the member set — requests
/// arriving after that start a fresh batch, so nobody waits on an
/// evaluation that began with a shorter deadline than their own.
#[derive(Default)]
pub struct Batches {
    inner: Mutex<HashMap<BatchKey, Vec<Member>>>,
}

impl Batches {
    pub fn new() -> Batches {
        Batches::default()
    }

    /// Join an in-flight batch; `Ok(())` iff one existed, otherwise the
    /// member is handed back so the caller can lead a fresh batch
    /// (members are move-only — they own their spans).
    pub fn join(&self, key: &BatchKey, member: Member) -> Result<(), Member> {
        match self.inner.lock().unwrap().get_mut(key) {
            Some(members) => {
                members.push(member);
                Ok(())
            }
            None => Err(member),
        }
    }

    /// Register a fresh batch with its leader as the first member.
    pub fn lead(&self, key: BatchKey, leader: Member) {
        let prev = self.inner.lock().unwrap().insert(key, vec![leader]);
        debug_assert!(prev.is_none(), "lead() over an in-flight batch");
    }

    /// Claim the batch: every member registered so far, in join order
    /// (leader first). The key is removed, ending the coalescing
    /// window.
    pub fn take(&self, key: &BatchKey) -> Vec<Member> {
        self.inner.lock().unwrap().remove(key).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn job(path: &str) -> Job {
        Job::Plain {
            request: Request {
                method: "GET".into(),
                path: path.into(),
                params: Vec::new(),
                headers: Vec::new(),
                body: Vec::new(),
                keep_alive: true,
            },
            member: member(0),
        }
    }

    fn member(seq: u64) -> Member {
        Member {
            dest: Destination { io_thread: 0, conn_token: 0, seq },
            deadline: None,
            keep_alive: true,
            arrived: Instant::now(),
            span: RequestSpan::begin(Instant::now()),
        }
    }

    fn path_of(job: &Job) -> String {
        match job {
            Job::Plain { request, .. } => request.path.clone(),
            Job::BatchLeader { .. } => unreachable!(),
        }
    }

    /// A client with a deep backlog cannot starve a one-shot client:
    /// round-robin dispatch serves the newcomer on the next turn.
    #[test]
    fn round_robin_interleaves_clients() {
        let sched = Sched::new(64);
        for i in 0..10 {
            sched.push(1, job(&format!("/heavy{i}"))).unwrap();
        }
        sched.push(2, job("/point")).unwrap();
        assert_eq!(path_of(&sched.pop().unwrap()), "/heavy0");
        // Client 2 arrived second and gets the second turn, not the 11th.
        assert_eq!(path_of(&sched.pop().unwrap()), "/point");
        assert_eq!(path_of(&sched.pop().unwrap()), "/heavy1");
    }

    #[test]
    fn admission_bound_rejects_and_hands_the_job_back() {
        let sched = Sched::new(2);
        sched.push(1, job("/a")).unwrap();
        sched.push(2, job("/b")).unwrap();
        let rejected = sched.push(3, job("/c")).unwrap_err();
        assert_eq!(path_of(&rejected), "/c");
        assert_eq!(sched.depth(), 2);
        assert_eq!(sched.peak(), 2);
        // Draining reopens admission.
        sched.pop().unwrap();
        sched.push(3, job("/c")).unwrap();
    }

    #[test]
    fn close_drains_queued_jobs_then_returns_none() {
        let sched = Sched::new(8);
        sched.push(1, job("/a")).unwrap();
        sched.close();
        assert!(sched.push(1, job("/late")).is_err(), "closed queue admits nothing");
        assert_eq!(path_of(&sched.pop().unwrap()), "/a");
        assert!(sched.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_push() {
        let sched = Arc::new(Sched::new(8));
        let s = sched.clone();
        let t = std::thread::spawn(move || s.pop().map(|j| path_of(&j)));
        std::thread::sleep(Duration::from_millis(20));
        sched.push(1, job("/woke")).unwrap();
        assert_eq!(t.join().unwrap().as_deref(), Some("/woke"));
    }

    #[test]
    fn batches_join_only_between_lead_and_take() {
        let batches = Batches::new();
        let key = BatchKey {
            doc_uid: 1,
            query: "//a".into(),
            strategy: "auto".into(),
            threads: 1,
        };
        let bounced = batches.join(&key, member(1));
        assert!(bounced.is_err(), "nothing to join before lead()");
        batches.lead(key.clone(), bounced.unwrap_err());
        assert!(batches.join(&key, member(2)).is_ok());
        assert!(batches.join(&key, member(3)).is_ok());
        let members = batches.take(&key);
        assert_eq!(members.len(), 3);
        assert_eq!(members[0].dest.seq, 1, "leader first");
        // The window closed: later identical requests start fresh.
        assert!(batches.join(&key, member(4)).is_err());
        assert!(batches.take(&key).is_empty());
    }
}
