//! `blossomd`: the concurrent query server. Two serving cores share the
//! routing/evaluation layer in this module:
//!
//! * [`IoModel::EventLoop`] (default) — readiness-driven nonblocking
//!   I/O ([`crate::eventloop`]): a few I/O threads own all connection
//!   state, a separate execution pool evaluates queries, identical
//!   in-flight queries coalesce into one evaluation, and a bounded fair
//!   queue applies admission control (503 + `Retry-After` past the
//!   knee). Idle keep-alive connections cost no CPU.
//! * [`IoModel::ThreadPerRequest`] — the PR 5 baseline: an accept loop
//!   feeding a fixed pool of blocking workers, one connection per
//!   worker at a time. Kept for the latency-under-load comparison in
//!   `BENCH_server.json`.
//!
//! Robustness contract (DESIGN.md §10): malformed or oversized requests
//! get a 4xx and never touch the engine; query parse/eval errors become
//! 4xx/5xx responses instead of process exits; a per-request wall-clock
//! deadline aborts runaway queries with 503; `POST /shutdown` flips an
//! atomic flag, accepting stops, and every in-flight request drains
//! before the process exits.

use crate::accesslog::{AccessLog, LogTarget};
use crate::catalog::Catalog;
use crate::http::{read_request, render_response, write_response, Next, Request};
use crate::json_str;
use crate::metrics::{endpoint_index, Metrics, PromGauges};
use crate::sched::{Batches, Sched};
use crate::span::{LogCtx, Outcome, RequestSpan, Stage};
use blossom_core::engine::{EngineError, EngineOptions, SharedPlanCache};
use blossom_core::plan::Strategy;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Which serving core runs the socket side.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IoModel {
    /// Nonblocking readiness-driven I/O threads + execution pool.
    #[default]
    EventLoop,
    /// Blocking worker pool, one connection per worker (PR 5 baseline).
    ThreadPerRequest,
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<IoModel, String> {
        match s {
            "event-loop" | "eventloop" => Ok(IoModel::EventLoop),
            "thread-per-request" | "threaded" => Ok(IoModel::ThreadPerRequest),
            other => Err(format!(
                "unknown io model {other:?} (want event-loop or thread-per-request)"
            )),
        }
    }
}

impl std::fmt::Display for IoModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoModel::EventLoop => "event-loop",
            IoModel::ThreadPerRequest => "thread-per-request",
        })
    }
}

/// Everything configurable about a server instance.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Execution workers (event loop) or connection workers
    /// (thread-per-request).
    pub workers: usize,
    /// Readiness-driven I/O threads (event loop only).
    pub io_threads: usize,
    /// `EngineOptions::threads` per query evaluation.
    pub query_threads: usize,
    /// Per-request evaluation budget; `None` never aborts. Requests may
    /// tighten (never extend) their own with `?deadline_ms=N`.
    pub deadline: Option<Duration>,
    /// Bound on the execution queue; past it `/query` answers 503 with
    /// `Retry-After` (event loop only).
    pub max_queue: usize,
    /// Coalesce identical concurrent queries into one evaluation
    /// (event loop only).
    pub batch: bool,
    /// Which serving core to run.
    pub io_model: IoModel,
    /// Catalog byte cap (approximate heap bytes across entries).
    pub catalog_bytes: usize,
    /// Persistent store directory: documents are published as BLM2
    /// generation files, served mapped, spilled on eviction, and
    /// recovered across restarts. `None` keeps the catalog heap-only.
    pub store_dir: Option<String>,
    /// Largest accepted request body (`POST /load` documents).
    pub max_body: usize,
    /// Capacity of the process-wide shared plan cache.
    pub plan_cache_capacity: usize,
    /// Requests at or above this wall time get a structured slow-query
    /// log record; `None` disables the threshold.
    pub slow_ms: Option<u64>,
    /// Deterministic access-log sampling: log every request whose id is
    /// divisible by N (0 disables sampling).
    pub log_sample: u64,
    /// Where slow-query/access records go.
    pub access_log: LogTarget,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            io_threads: 2,
            query_threads: 1,
            deadline: Some(Duration::from_secs(10)),
            max_queue: 1024,
            batch: true,
            io_model: IoModel::EventLoop,
            catalog_bytes: 512 * 1024 * 1024,
            store_dir: None,
            max_body: 256 * 1024 * 1024,
            plan_cache_capacity: 1024,
            slow_ms: None,
            log_sample: 0,
            access_log: LogTarget::Stderr,
        }
    }
}

/// State shared by the serving core and every worker.
pub(crate) struct Shared {
    pub(crate) catalog: Catalog,
    pub(crate) plans: Arc<SharedPlanCache>,
    pub(crate) metrics: Metrics,
    pub(crate) shutdown: AtomicBool,
    pub(crate) config: ServerConfig,
    pub(crate) started: Instant,
    /// Bounded fair execution queue (event loop only).
    pub(crate) sched: Sched,
    /// In-flight coalesced batches (event loop only).
    pub(crate) batches: Batches,
    /// Fairness ids for accepted connections.
    pub(crate) next_client: AtomicU64,
    /// The event loop's I/O-thread mailboxes, once running; lets an
    /// external `ServerHandle::shutdown` wake blocked pollers.
    pub(crate) io: OnceLock<Arc<Vec<Arc<crate::eventloop::IoHandle>>>>,
    /// The structured slow-query/access log (both serving cores).
    pub(crate) log: AccessLog,
}

impl Shared {
    /// Retire one finished request span: fold it into every metrics
    /// surface and hand it to the access-log policy. Every span created
    /// by either serving core ends here exactly once.
    pub(crate) fn finish(&self, span: RequestSpan) {
        let wall_us = span.total_us();
        self.metrics.observe_span(&span);
        self.log.log(&span, wall_us);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Control handle for a server started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for every in-flight request to drain.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handles) = self.shared.io.get() {
            for h in handles.iter() {
                h.wake();
            }
        }
        let _ = self.thread.join();
    }
}

impl Server {
    /// Bind the listener (without accepting yet), so callers can learn
    /// the ephemeral port before the first request.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let log = AccessLog::new(&config.access_log, config.slow_ms, config.log_sample)?;
        // With a store directory, the catalog persists every entry as a
        // BLM2 generation file and recovers complete generations now,
        // before the first request.
        let catalog = match &config.store_dir {
            None => Catalog::new(config.catalog_bytes),
            Some(dir) => {
                let store = blossom_storage::StoreDir::open(std::path::Path::new(dir))
                    .map_err(|e| std::io::Error::other(e.0))?;
                let catalog = Catalog::with_store(config.catalog_bytes, store);
                catalog.recover().map_err(std::io::Error::other)?;
                catalog
            }
        };
        let shared = Arc::new(Shared {
            log,
            catalog,
            plans: Arc::new(SharedPlanCache::new(config.plan_cache_capacity)),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            sched: Sched::new(config.max_queue),
            batches: Batches::new(),
            next_client: AtomicU64::new(0),
            io: OnceLock::new(),
            config,
            started: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Load a document into the catalog before serving (the CLI's
    /// `--load name=path` flags).
    pub fn preload(&self, name: &str, path: &str) -> Result<usize, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        Ok(self.shared.catalog.load_bytes(name, &bytes)?.doc.len())
    }

    /// Serve until shutdown + drain, under the configured I/O model.
    pub fn run(self) {
        let Server { listener, shared } = self;
        match shared.config.io_model {
            IoModel::EventLoop => crate::eventloop::run(listener, shared),
            IoModel::ThreadPerRequest => run_blocking(listener, shared),
        }
    }

    /// Run on a background thread; for tests and in-process harnesses.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = self.shared.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, shared, thread }
    }
}

/// The thread-per-request core: accept loop feeding a fixed pool of
/// blocking workers. The listener goes non-blocking so the loop can
/// poll the shutdown flag; accepted sockets are switched back to
/// blocking before they reach a worker.
fn run_blocking(listener: TcpListener, shared: Arc<Shared>) {
    listener.set_nonblocking(true).expect("set_nonblocking");
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..shared.config.workers.max(1))
        .map(|_| {
            let rx = rx.clone();
            let shared = shared.clone();
            std::thread::spawn(move || loop {
                // Holding the lock only for the dequeue keeps the
                // other workers accepting; `Err` means the sender is
                // gone and the queue is empty — drain complete.
                let next = rx.lock().unwrap().recv();
                match next {
                    Ok(stream) => handle_connection(stream, &shared),
                    Err(_) => break,
                }
            })
        })
        .collect();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(false).is_ok() {
                    let _ = tx.send(stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping the sender ends the workers' recv loops once the
    // already-queued connections are served.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
}

/// Serve one connection (thread-per-request core): a keep-alive loop of
/// request → response. The read timeout bounds how long a worker sits
/// on an idle connection before re-checking the shutdown flag — this is
/// what lets the drain finish while clients hold keep-alive sockets
/// open (and why this core burns CPU on idle connections; the event
/// loop does not).
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, shared.config.max_body) {
            Ok(Next::Request(request)) => {
                let arrived = Instant::now();
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                shared.metrics.inflight.fetch_add(1, Ordering::Relaxed);
                // The blocking reader cannot separate read from parse
                // (it interleaves them line by line), so this core's
                // spans start at framing-complete: Read and Parse laps
                // are 0 and Execute absorbs routing from here.
                let mut span = RequestSpan::begin(arrived);
                let deadline = request_deadline(&request, &shared.config, arrived);
                span.endpoint = endpoint_index(&request.path);
                span.bytes_in = request.body.len() as u64;
                span.deadline = deadline;
                span.budget = deadline.map(|d| d.saturating_duration_since(arrived));
                span.force_log = request.param("trace") == Some("1");
                if shared.log.armed() {
                    span.log = Some(Box::new(LogCtx {
                        method: request.method.clone(),
                        path: request.path.clone(),
                        doc: request
                            .param("doc")
                            .or_else(|| request.param("name"))
                            .map(str::to_string),
                        query: request.param("q").map(str::to_string),
                        strategy: None,
                        trace_json: None,
                    }));
                }
                let (status, content_type, body) =
                    respond(&request, shared, deadline, &mut span);
                // During shutdown the drain finishes the current request
                // but does not linger on an idle keep-alive socket.
                let close =
                    !request.keep_alive || shared.shutdown.load(Ordering::SeqCst);
                if status >= 400 {
                    shared.metrics.track_error(status);
                }
                span.finish_status(status);
                span.mark(Stage::Execute);
                let id = span.id.to_string();
                let bytes = render_response(
                    status,
                    content_type,
                    &body,
                    close,
                    &[("X-Request-Id", &id)],
                );
                span.bytes_out = bytes.len() as u64;
                span.mark(Stage::Serialize);
                let written = writer.write_all(&bytes).is_ok();
                span.mark(Stage::Write);
                if !written {
                    span.outcome = Outcome::Disconnect;
                }
                shared.finish(span);
                if !written || close {
                    return;
                }
            }
            Ok(Next::Closed) => return,
            Ok(Next::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                // Framing is unreliable after a malformed request, so
                // answer and close; the *server* keeps running.
                shared.metrics.track_error(e.status);
                let body = format!("error: {}\n", e.message);
                let _ =
                    write_response(&mut writer, e.status, "text/plain", body.as_bytes(), true);
                return;
            }
        }
    }
}

/// The effective deadline for one request: the server's configured
/// budget, tightened by a `?deadline_ms=N` parameter when present
/// (testing and per-call SLOs). A request can never *extend* the
/// server's budget.
pub(crate) fn request_deadline(
    request: &Request,
    config: &ServerConfig,
    arrived: Instant,
) -> Option<Instant> {
    let requested = request
        .param("deadline_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|ms| *ms >= 1)
        .map(Duration::from_millis);
    match (config.deadline, requested) {
        (Some(c), Some(r)) => Some(arrived + c.min(r)),
        (Some(c), None) => Some(arrived + c),
        (None, Some(r)) => Some(arrived + r),
        (None, None) => None,
    }
}

/// Route one request; returns `(status, content type, body)`. Pure with
/// respect to request counters/latency — both serving cores tally those
/// themselves (the event loop counts at dispatch, before queueing).
pub(crate) fn respond(
    request: &Request,
    shared: &Shared,
    deadline: Option<Instant>,
    span: &mut RequestSpan,
) -> (u16, &'static str, Vec<u8>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "text/plain", b"ok\n".to_vec()),
        ("GET", "/query") => query(request, shared, deadline, span),
        ("POST", "/load") => load(request, shared),
        ("POST", "/update") => update(request, shared, deadline),
        ("GET", "/stats") => (200, "application/json", stats(shared).into_bytes()),
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            metrics_text(shared).into_bytes(),
        ),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (200, "text/plain", b"draining\n".to_vec())
        }
        (_, "/healthz" | "/query" | "/load" | "/update" | "/stats" | "/metrics" | "/shutdown") => {
            (405, "text/plain", format!("error: {} not allowed here\n", request.method).into_bytes())
        }
        (_, path) => (404, "text/plain", format!("error: no route {path}\n").into_bytes()),
    }
}

/// `GET /query?doc=NAME&q=QUERY[&strategy=S][&threads=N][&profile=1]
/// [&deadline_ms=N]`.
fn query(
    request: &Request,
    shared: &Shared,
    deadline: Option<Instant>,
    span: &mut RequestSpan,
) -> (u16, &'static str, Vec<u8>) {
    let bad = |msg: String| (400, "text/plain", format!("error: {msg}\n").into_bytes());
    let Some(doc_name) = request.param("doc") else {
        return bad("missing ?doc=NAME".to_string());
    };
    let Some(q) = request.param("q") else {
        return bad("missing ?q=QUERY".to_string());
    };
    let strategy = match request.param("strategy").unwrap_or("auto").parse::<Strategy>() {
        Ok(s) => s,
        Err(e) => return bad(e),
    };
    let threads = match request.param("threads").map(str::parse::<usize>) {
        None => shared.config.query_threads,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => return bad("bad ?threads= (want an integer >= 1)".to_string()),
    };
    let profile = request.param("profile") == Some("1");
    let Some(entry) = shared.catalog.get(doc_name) else {
        return (
            404,
            "text/plain",
            format!("error: no document {doc_name:?} in the catalog\n").into_bytes(),
        );
    };

    // Tracing is always on so /stats sees the executed strategy; the
    // trace is observational (PR 4's invariant: identical result bytes).
    let engine = entry.engine(
        shared.plans.clone(),
        EngineOptions { threads, trace: true, deadline, ..EngineOptions::default() },
    );
    // The plain body is the serialized result plus a newline —
    // byte-identical to `blossom query` stdout, so harnesses can
    // `cmp` the two directly (and so batched responses, which use the
    // same `eval_query_bytes` contract, match solo ones).
    match engine.eval_query_bytes(q, strategy) {
        Ok((bytes, trace)) => {
            shared.metrics.record_strategy(&trace.executed.to_string());
            // Attach the full trace only to records that will be slow
            // (or were forced): the compact rendering is the expensive
            // part, so fast sampled records skip it.
            let slow = shared.log.slow_us().is_some_and(|t| span.elapsed_us() >= t);
            let force = span.force_log;
            if let Some(log) = span.log.as_deref_mut() {
                log.strategy = Some(trace.executed.to_string());
                if force || slow {
                    log.trace_json = Some(trace.to_json_compact());
                }
            }
            if profile {
                let text = String::from_utf8(bytes).expect("serializer emits UTF-8");
                let body = format!(
                    "{{\"result\": {}, \"profile\": {}}}\n",
                    json_str(&text),
                    trace.to_json()
                );
                (200, "application/json", body.into_bytes())
            } else {
                (200, "text/plain", bytes)
            }
        }
        Err(EngineError::Deadline) => (
            503,
            "text/plain",
            format!("error: {}\n", EngineError::Deadline).into_bytes(),
        ),
        Err(e) => bad(e.to_string()),
    }
}

/// `POST /load?name=NAME` with the document bytes (XML or `.blsm`) as
/// the body.
fn load(request: &Request, shared: &Shared) -> (u16, &'static str, Vec<u8>) {
    let Some(name) = request.param("name") else {
        return (400, "text/plain", b"error: missing ?name=NAME\n".to_vec());
    };
    match shared.catalog.load_bytes(name, &request.body) {
        Ok(entry) => {
            let body = format!(
                "{{\"loaded\": {}, \"nodes\": {}, \"approx_bytes\": {}}}\n",
                json_str(name),
                entry.doc.len(),
                entry.bytes
            );
            (200, "application/json", body.into_bytes())
        }
        Err(e) => (400, "text/plain", format!("error: {e}\n").into_bytes()),
    }
}

/// `POST /update?doc=NAME` with a mutation script (one `insert` /
/// `delete` / `replace` line per mutation) as the body. On success the
/// catalog swaps in the mutated snapshot — in-flight readers keep their
/// old `Arc<Document>` — and the old uid's plan-cache entries are
/// invalidated; plans for every other document survive untouched.
fn update(
    request: &Request,
    shared: &Shared,
    deadline: Option<Instant>,
) -> (u16, &'static str, Vec<u8>) {
    use crate::catalog::CatalogUpdateError;
    let bad = |msg: String| (400, "text/plain", format!("error: {msg}\n").into_bytes());
    let Some(doc_name) = request.param("doc") else {
        return bad("missing ?doc=NAME".to_string());
    };
    let Ok(script) = std::str::from_utf8(&request.body) else {
        return bad("mutation script is not UTF-8".to_string());
    };
    if script.trim().is_empty() {
        return bad("empty mutation script".to_string());
    }
    let muts = match blossom_xml::mutate::parse_mutations(script) {
        Ok(m) => m,
        Err(e) => return bad(format!("bad mutation script: {e}")),
    };
    match shared.catalog.update(doc_name, &muts, deadline) {
        Ok((old_uid, entry)) => {
            let dropped = shared.plans.invalidate_doc(old_uid);
            shared.metrics.updates.fetch_add(1, Ordering::Relaxed);
            shared.metrics.mutations_applied.fetch_add(muts.len() as u64, Ordering::Relaxed);
            shared.metrics.plans_invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
            let body = format!(
                "{{\"updated\": {}, \"mutations\": {}, \"nodes\": {}, \"approx_bytes\": {}, \"plans_invalidated\": {}}}\n",
                json_str(doc_name),
                muts.len(),
                entry.doc.len(),
                entry.bytes,
                dropped
            );
            (200, "application/json", body.into_bytes())
        }
        Err(CatalogUpdateError::NotFound) => (
            404,
            "text/plain",
            format!("error: no document {doc_name:?} in the catalog\n").into_bytes(),
        ),
        Err(CatalogUpdateError::Deadline) => (
            503,
            "text/plain",
            format!("error: {}\n", CatalogUpdateError::Deadline).into_bytes(),
        ),
        Err(e @ CatalogUpdateError::Invalid(_)) => bad(e.to_string()),
    }
}

/// `GET /metrics`: the whole metrics surface in Prometheus text
/// exposition format 0.0.4 — counters, point-in-time gauges assembled
/// here, and cumulative per-endpoint/per-stage latency histograms.
fn metrics_text(shared: &Shared) -> String {
    let cache = shared.plans.stats();
    let occ = shared.catalog.occupancy();
    let gauges = PromGauges {
        io_model: shared.config.io_model.to_string(),
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        queue_depth: shared.sched.depth() as u64,
        queue_peak: shared.sched.peak() as u64,
        queue_capacity: shared.sched.capacity() as u64,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_entries: cache.len as u64,
        cache_capacity: cache.capacity as u64,
        catalog_documents: occ.resident_docs,
        catalog_bytes: occ.resident_bytes,
        catalog_evictions: occ.evictions,
        catalog_spilled_documents: occ.spilled_docs,
        catalog_mapped_bytes: occ.mapped_bytes,
        catalog_spilled_bytes: occ.spilled_bytes,
        catalog_spills: occ.spills,
        catalog_remaps: occ.remaps,
    };
    shared.metrics.render_prometheus(&gauges)
}

/// `GET /stats`: request counters, latency percentiles (global and per
/// endpoint), batching/admission tallies, queue gauges, plan-cache and
/// catalog contents.
fn stats(shared: &Shared) -> String {
    let cache = shared.plans.stats();
    let (entries, evictions) = shared.catalog.snapshot();
    let occ = shared.catalog.occupancy();
    let catalog_fields = entries
        .iter()
        .map(|row| {
            format!(
                "{{\"name\": {}, \"approx_bytes\": {}, \"state\": \"{}\", \"generation\": {}}}",
                json_str(&row.name),
                row.bytes,
                row.state,
                row.generation
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{{}, \
         \"io_model\": {}, \
         \"queue\": {{\"depth\": {}, \"peak\": {}, \"capacity\": {}}}, \
         \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"capacity\": {}}}, \
         \"catalog\": {{\"documents\": [{catalog_fields}], \"evictions\": {evictions}, \
         \"resident_bytes\": {}, \"mapped_bytes\": {}, \"spilled_bytes\": {}, \
         \"spills\": {}, \"remaps\": {}}}, \
         \"uptime_us\": {}}}\n",
        shared.metrics.render_json_fields(),
        json_str(&shared.config.io_model.to_string()),
        shared.sched.depth(),
        shared.sched.peak(),
        shared.sched.capacity(),
        cache.hits,
        cache.misses,
        cache.len,
        cache.capacity,
        occ.resident_bytes,
        occ.mapped_bytes,
        occ.spilled_bytes,
        occ.spills,
        occ.remaps,
        shared.started.elapsed().as_micros(),
    )
}
