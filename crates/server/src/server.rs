//! `blossomd`: the concurrent query server. A `TcpListener` accept loop
//! feeds a fixed worker pool (the same channel-backed work-queue shape
//! as `core::exec`'s scan partitioning, but long-lived); workers speak
//! the minimal HTTP subset in [`crate::http`] and evaluate queries
//! against the shared [`crate::catalog::Catalog`] through cheap
//! per-request [`Engine`] views that all share one process-wide plan
//! cache.
//!
//! Robustness contract (DESIGN.md §10): malformed or oversized requests
//! get a 4xx and never touch the engine; query parse/eval errors become
//! 4xx/5xx responses instead of process exits; a per-request wall-clock
//! deadline aborts runaway queries with 503; `POST /shutdown` flips an
//! atomic flag, the accept loop stops, and every in-flight request
//! drains before the process exits.

use crate::catalog::Catalog;
use crate::http::{read_request, write_response, Next, Request};
use crate::json_str;
use crate::metrics::Metrics;
use blossom_core::engine::{EngineError, EngineOptions, SharedPlanCache};
use blossom_core::plan::Strategy;
use blossom_xml::writer;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything configurable about a server instance.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// `EngineOptions::threads` per query evaluation.
    pub query_threads: usize,
    /// Per-request evaluation budget; `None` never aborts.
    pub deadline: Option<Duration>,
    /// Catalog byte cap (approximate heap bytes across entries).
    pub catalog_bytes: usize,
    /// Largest accepted request body (`POST /load` documents).
    pub max_body: usize,
    /// Capacity of the process-wide shared plan cache.
    pub plan_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            query_threads: 1,
            deadline: Some(Duration::from_secs(10)),
            catalog_bytes: 512 * 1024 * 1024,
            max_body: 256 * 1024 * 1024,
            plan_cache_capacity: 1024,
        }
    }
}

/// State shared by the accept loop and every worker.
struct Shared {
    catalog: Catalog,
    plans: Arc<SharedPlanCache>,
    metrics: Metrics,
    shutdown: AtomicBool,
    config: ServerConfig,
    started: Instant,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Control handle for a server started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for every in-flight request to drain.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }
}

impl Server {
    /// Bind the listener (without accepting yet), so callers can learn
    /// the ephemeral port before the first request.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let shared = Arc::new(Shared {
            catalog: Catalog::new(config.catalog_bytes),
            plans: Arc::new(SharedPlanCache::new(config.plan_cache_capacity)),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            config,
            started: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Load a document into the catalog before serving (the CLI's
    /// `--load name=path` flags).
    pub fn preload(&self, name: &str, path: &str) -> Result<usize, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        Ok(self.shared.catalog.load_bytes(name, &bytes)?.doc.len())
    }

    /// Run the accept loop until shutdown, then drain: the listener goes
    /// non-blocking so the loop can poll the shutdown flag, accepted
    /// sockets are switched back to blocking before they reach a worker.
    pub fn run(self) {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true).expect("set_nonblocking");
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::spawn(move || loop {
                    // Holding the lock only for the dequeue keeps the
                    // other workers accepting; `Err` means the sender is
                    // gone and the queue is empty — drain complete.
                    let next = rx.lock().unwrap().recv();
                    match next {
                        Ok(stream) => handle_connection(stream, &shared),
                        Err(_) => break,
                    }
                })
            })
            .collect();

        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(false).is_ok() {
                        let _ = tx.send(stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Dropping the sender ends the workers' recv loops once the
        // already-queued connections are served.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
    }

    /// Run on a background thread; for tests and in-process harnesses.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = self.shared.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, shared, thread }
    }
}

/// Serve one connection: a keep-alive loop of request → response. The
/// read timeout bounds how long a worker sits on an idle connection
/// before re-checking the shutdown flag — this is what lets the drain
/// finish while clients hold keep-alive sockets open.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, shared.config.max_body) {
            Ok(Next::Request(request)) => {
                let (status, content_type, body) = respond(&request, shared);
                // During shutdown the drain finishes the current request
                // but does not linger on an idle keep-alive socket.
                let close =
                    !request.keep_alive || shared.shutdown.load(Ordering::SeqCst);
                if status >= 400 {
                    track_error(shared, status);
                }
                if write_response(&mut writer, status, content_type, &body, close).is_err()
                    || close
                {
                    return;
                }
            }
            Ok(Next::Closed) => return,
            Ok(Next::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                // Framing is unreliable after a malformed request, so
                // answer and close; the *server* keeps running.
                track_error(shared, e.status);
                let body = format!("error: {}\n", e.message);
                let _ =
                    write_response(&mut writer, e.status, "text/plain", body.as_bytes(), true);
                return;
            }
        }
    }
}

fn track_error(shared: &Shared, status: u16) {
    if status >= 500 {
        if status == 503 {
            shared.metrics.deadline_aborts.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.metrics.server_errors.fetch_add(1, Ordering::Relaxed);
        }
    } else {
        shared.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Route one request; returns `(status, content type, body)`.
fn respond(request: &Request, shared: &Shared) -> (u16, &'static str, Vec<u8>) {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "text/plain", b"ok\n".to_vec()),
        ("GET", "/query") => query(request, shared),
        ("POST", "/load") => load(request, shared),
        ("GET", "/stats") => (200, "application/json", stats(shared).into_bytes()),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (200, "text/plain", b"draining\n".to_vec())
        }
        (_, "/healthz" | "/query" | "/load" | "/stats" | "/shutdown") => {
            (405, "text/plain", format!("error: {} not allowed here\n", request.method).into_bytes())
        }
        (_, path) => (404, "text/plain", format!("error: no route {path}\n").into_bytes()),
    }
}

/// `GET /query?doc=NAME&q=QUERY[&strategy=S][&threads=N][&profile=1]`.
fn query(request: &Request, shared: &Shared) -> (u16, &'static str, Vec<u8>) {
    let bad = |msg: String| (400, "text/plain", format!("error: {msg}\n").into_bytes());
    let Some(doc_name) = request.param("doc") else {
        return bad("missing ?doc=NAME".to_string());
    };
    let Some(q) = request.param("q") else {
        return bad("missing ?q=QUERY".to_string());
    };
    let strategy = match request.param("strategy").unwrap_or("auto").parse::<Strategy>() {
        Ok(s) => s,
        Err(e) => return bad(e),
    };
    let threads = match request.param("threads").map(str::parse::<usize>) {
        None => shared.config.query_threads,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => return bad("bad ?threads= (want an integer >= 1)".to_string()),
    };
    let profile = request.param("profile") == Some("1");
    let Some(entry) = shared.catalog.get(doc_name) else {
        return (
            404,
            "text/plain",
            format!("error: no document {doc_name:?} in the catalog\n").into_bytes(),
        );
    };

    // Tracing is always on so /stats sees the executed strategy; the
    // trace is observational (PR 4's invariant: identical result bytes).
    let engine = entry.engine(
        shared.plans.clone(),
        EngineOptions {
            threads,
            trace: true,
            deadline: shared.config.deadline.map(|d| Instant::now() + d),
            ..EngineOptions::default()
        },
    );
    let start = Instant::now();
    match engine.eval_query_traced(q, strategy) {
        Ok((result, trace)) => {
            shared.metrics.record_latency(start.elapsed());
            shared.metrics.record_strategy(&trace.executed.to_string());
            // The plain body is the serialized result plus a newline —
            // byte-identical to `blossom query` stdout, so harnesses can
            // `cmp` the two directly.
            let mut text = writer::to_string(&result);
            text.push('\n');
            if profile {
                let body = format!(
                    "{{\"result\": {}, \"profile\": {}}}\n",
                    json_str(&text),
                    trace.to_json()
                );
                (200, "application/json", body.into_bytes())
            } else {
                (200, "text/plain", text.into_bytes())
            }
        }
        Err(EngineError::Deadline) => (
            503,
            "text/plain",
            format!("error: {}\n", EngineError::Deadline).into_bytes(),
        ),
        Err(e) => bad(e.to_string()),
    }
}

/// `POST /load?name=NAME` with the document bytes (XML or `.blsm`) as
/// the body.
fn load(request: &Request, shared: &Shared) -> (u16, &'static str, Vec<u8>) {
    let Some(name) = request.param("name") else {
        return (400, "text/plain", b"error: missing ?name=NAME\n".to_vec());
    };
    match shared.catalog.load_bytes(name, &request.body) {
        Ok(entry) => {
            let body = format!(
                "{{\"loaded\": {}, \"nodes\": {}, \"approx_bytes\": {}}}\n",
                json_str(name),
                entry.doc.len(),
                entry.bytes
            );
            (200, "application/json", body.into_bytes())
        }
        Err(e) => (400, "text/plain", format!("error: {e}\n").into_bytes()),
    }
}

/// `GET /stats`: request counters, latency percentiles, strategy and
/// plan-cache tallies, catalog contents.
fn stats(shared: &Shared) -> String {
    let cache = shared.plans.stats();
    let (entries, evictions) = shared.catalog.snapshot();
    let catalog_fields = entries
        .iter()
        .map(|(name, bytes)| format!("{{\"name\": {}, \"approx_bytes\": {bytes}}}", json_str(name)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{{}, \
         \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"capacity\": {}}}, \
         \"catalog\": {{\"documents\": [{catalog_fields}], \"evictions\": {evictions}}}, \
         \"uptime_us\": {}}}\n",
        shared.metrics.render_json_fields(),
        cache.hits,
        cache.misses,
        cache.len,
        cache.capacity,
        shared.started.elapsed().as_micros(),
    )
}
