//! Prometheus text exposition (format 0.0.4): a tiny renderer used by
//! `GET /metrics` and an equally tiny in-tree checker used by the tests
//! and the load harness to assert that what we expose actually parses.
//!
//! The renderer covers exactly what the server needs — counters,
//! gauges, and cumulative histograms derived from the log2-µs buckets
//! in [`crate::metrics`] — and guarantees (checked by the checker):
//!
//! * every sample family is preceded by its `# TYPE` line;
//! * histogram `_bucket` series are cumulative and non-decreasing in
//!   `le` order, end in `le="+Inf"`, and the `+Inf` count equals the
//!   family's `_count`;
//! * label values are escaped (`\\`, `\"`, `\n`) and sample values are
//!   valid floats.

use crate::metrics::BUCKETS;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{inner}}}")
}

/// Emit the `# HELP` / `# TYPE` header for a metric family.
pub fn header(out: &mut String, name: &str, help: &str, typ: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {typ}");
}

/// Emit one sample line.
pub fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    let _ = writeln!(out, "{name}{} {value}", label_block(labels));
}

/// Render one cumulative histogram series from log2-µs bucket counts:
/// `name_bucket{...,le="..."}` lines (le in seconds, `2^(i+1)` µs upper
/// bounds; the open-ended top bucket folds into `+Inf`), then `_sum`
/// (seconds) and `_count`. The header is emitted separately so several
/// label sets can share one family.
pub fn histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    buckets: &[u64; BUCKETS],
    total_us: u64,
) {
    let base = label_block(labels);
    let base_inner = base.trim_start_matches('{').trim_end_matches('}');
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate().take(BUCKETS - 1) {
        cumulative += c;
        let le = (1u64 << (i + 1)) as f64 / 1e6;
        if base_inner.is_empty() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        } else {
            let _ = writeln!(out, "{name}_bucket{{{base_inner},le=\"{le}\"}} {cumulative}");
        }
    }
    cumulative += buckets[BUCKETS - 1];
    if base_inner.is_empty() {
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    } else {
        let _ = writeln!(out, "{name}_bucket{{{base_inner},le=\"+Inf\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_sum{base} {}", total_us as f64 / 1e6);
    let _ = writeln!(out, "{name}_count{base} {cumulative}");
}

/// Summary of a checked exposition.
#[derive(Debug, PartialEq, Eq)]
pub struct ExpoStats {
    pub families: usize,
    pub samples: usize,
}

fn parse_labels(block: &str) -> Result<BTreeMap<String, String>, String> {
    // `block` is the text between `{` and `}`.
    let mut labels = BTreeMap::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without '=' in {block:?}"))?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value in {block:?}"));
        }
        // Scan the quoted value, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return Err(format!("dangling escape in {block:?}"));
                    };
                    value.push(match esc {
                        'n' => '\n',
                        c => c,
                    });
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {block:?}"))?;
        labels.insert(key, value);
        rest = after[1 + end + 1..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Validate a text exposition; returns family/sample counts or the
/// first problem found. This is deliberately a subset parser: enough to
/// catch malformed names, missing TYPE lines, unparsable values, and
/// non-cumulative histograms — the failure modes a hand-rolled renderer
/// can actually have.
pub fn check(text: &str) -> Result<ExpoStats, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    // (family, labels-minus-le) → [(le, count)] in exposition order.
    let mut hist_buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut hist_counts: HashMap<(String, String), f64> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| at("TYPE without a name".into()))?;
            let typ = parts.next().ok_or_else(|| at("TYPE without a type".into()))?;
            if !matches!(typ, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(at(format!("unknown type {typ:?}")));
            }
            if types.insert(name.to_string(), typ.to_string()).is_some() {
                return Err(at(format!("duplicate TYPE for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }

        // Sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| at("sample without a value".into()))?;
        let value: f64 = value
            .parse()
            .map_err(|_| at(format!("unparsable value {value:?}")))?;
        let (name, labels) = match name_labels.find('{') {
            Some(b) => {
                if !name_labels.ends_with('}') {
                    return Err(at(format!("unterminated label block in {name_labels:?}")));
                }
                (
                    &name_labels[..b],
                    parse_labels(&name_labels[b + 1..name_labels.len() - 1]).map_err(at)?,
                )
            }
            None => (name_labels, BTreeMap::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(at(format!("bad metric name {name:?}")));
        }
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                name.strip_suffix(s)
                    .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(at(format!("sample {name} precedes its TYPE line")));
        }
        samples += 1;

        if types.get(family).map(String::as_str) == Some("histogram") {
            let series_labels = labels
                .iter()
                .filter(|(k, _)| k.as_str() != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            let key = (family.to_string(), series_labels);
            if name.ends_with("_bucket") {
                let le = labels
                    .get("le")
                    .ok_or_else(|| at(format!("{name} without le label")))?;
                let le = if le == "+Inf" { f64::INFINITY } else {
                    le.parse()
                        .map_err(|_| at(format!("unparsable le {le:?}")))?
                };
                hist_buckets.entry(key).or_default().push((le, value));
            } else if name.ends_with("_count") {
                hist_counts.insert(key, value);
            }
        }
    }

    for ((family, series), buckets) in &hist_buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = -1.0f64;
        for &(le, count) in buckets {
            if le <= prev_le {
                return Err(format!("{family}{{{series}}}: le not increasing at {le}"));
            }
            if count < prev_count {
                return Err(format!(
                    "{family}{{{series}}}: bucket counts decrease at le={le}"
                ));
            }
            prev_le = le;
            prev_count = count;
        }
        let Some(&(last_le, last_count)) = buckets.last() else { continue };
        if last_le != f64::INFINITY {
            return Err(format!("{family}{{{series}}}: missing le=\"+Inf\" bucket"));
        }
        match hist_counts.get(&(family.clone(), series.clone())) {
            Some(&c) if c == last_count => {}
            Some(&c) => {
                return Err(format!(
                    "{family}{{{series}}}: +Inf bucket {last_count} != _count {c}"
                ))
            }
            None => return Err(format!("{family}{{{series}}}: missing _count")),
        }
    }

    Ok(ExpoStats { families: types.len(), samples })
}

/// Fetch one sample's value from an exposition: the first sample line
/// whose name matches and whose label block contains every `labels`
/// pair. For harness assertions, not a general query language.
pub fn value(text: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name_labels, value) = line.rsplit_once(' ')?;
        let (n, block) = match name_labels.find('{') {
            Some(b) => (&name_labels[..b], &name_labels[b..]),
            None => (name_labels, ""),
        };
        if n != name {
            continue;
        }
        if labels
            .iter()
            .all(|(k, v)| block.contains(&format!("{k}=\"{}\"", escape_label(v))))
        {
            return value.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_histogram() -> String {
        let mut out = String::new();
        header(&mut out, "x_seconds", "test", "histogram");
        let mut buckets = [0u64; BUCKETS];
        buckets[0] = 2;
        buckets[6] = 3; // 64..128µs
        buckets[BUCKETS - 1] = 1; // open-ended top
        histogram(&mut out, "x_seconds", &[("endpoint", "/query")], &buckets, 421);
        out
    }

    #[test]
    fn renderer_output_passes_the_checker() {
        let mut out = String::new();
        header(&mut out, "a_total", "test counter", "counter");
        sample(&mut out, "a_total", &[], 3.0);
        header(&mut out, "b", "test gauge", "gauge");
        sample(&mut out, "b", &[("k", "v\"w\\x")], 1.5);
        out.push_str(&tiny_histogram());
        let stats = check(&out).expect("well-formed");
        assert_eq!(stats.families, 3);
        assert!(stats.samples > 30, "{stats:?}");
    }

    #[test]
    fn histogram_is_cumulative_and_inf_matches_count() {
        let out = tiny_histogram();
        assert!(out.contains("x_seconds_bucket{endpoint=\"/query\",le=\"+Inf\"} 6"), "{out}");
        assert!(out.contains("x_seconds_count{endpoint=\"/query\"} 6"), "{out}");
        // 64..128µs upper bound in seconds.
        assert!(out.contains("le=\"0.000128\"} 5"), "{out}");
        assert!(out.contains("x_seconds_sum{endpoint=\"/query\"} 0.000421"), "{out}");
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        assert!(check("no_type_line 1\n").is_err());
        assert!(check("# TYPE x counter\nx notanumber\n").is_err());
        assert!(check("# TYPE x counter\n9bad 1\n").is_err());
        assert!(check("# TYPE x wibble\nx 1\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 5\n\
                   h_bucket{le=\"0.2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 1\nh_count 5\n";
        assert!(check(bad).unwrap_err().contains("decrease"), "{:?}", check(bad));
        // +Inf disagrees with _count.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 1\nh_count 7\n";
        assert!(check(bad).unwrap_err().contains("_count"), "{:?}", check(bad));
        // Missing +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_count 5\n";
        assert!(check(bad).unwrap_err().contains("+Inf"), "{:?}", check(bad));
    }

    #[test]
    fn value_extracts_by_name_and_labels() {
        let out = tiny_histogram();
        assert_eq!(value(&out, "x_seconds_count", &[("endpoint", "/query")]), Some(6.0));
        assert_eq!(value(&out, "x_seconds_count", &[("endpoint", "/load")]), None);
        assert_eq!(value(&out, "missing", &[]), None);
    }
}
