//! A thin, dependency-free syscall shim for the event loop: readiness
//! polling (`epoll` on Linux, `poll(2)` elsewhere), a self-wakeup
//! channel, and per-thread CPU clocks.
//!
//! The repo's zero-external-crates rule forbids `libc`/`mio`, but std
//! already links the platform C library, so declaring the handful of
//! symbols we need (`epoll_*`, `poll`, `clock_gettime`) costs nothing
//! and keeps the build offline. Everything unsafe is confined to this
//! module behind safe wrappers; fds are owned (`close` on drop) and
//! tokens are plain `u64`s the caller maps back to connections.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness of one registered fd, reported by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup: the connection should be torn down after a
    /// final read attempt drains whatever the peer sent before dying.
    pub error: bool,
}

/// What a registration waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

// ---------------------------------------------------------------------------
// Linux: epoll. Level-triggered (the default), which matches the
// state-machine style in `eventloop.rs`: interest is explicit and
// re-armed by `modify`, never inferred from a drained buffer.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    // x86-64's epoll_event is packed; other Linux arches use natural
    // alignment. Getting this wrong corrupts the token, so mirror glibc.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An owned epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            // RDHUP rides with read interest: it exists to notice the
            // peer's half-close early, and a closed read side reports
            // it level-triggered forever — a connection that has
            // stopped reading must stop hearing about it too.
            let mut events = 0;
            if interest.readable {
                events |= EPOLLIN | EPOLLRDHUP;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events, data: token };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL on modern kernels
            // but must be non-null for pre-2.6.9 compatibility.
            let mut ev = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Block until at least one registered fd is ready or `timeout`
        /// elapses (`None` blocks indefinitely); readiness lands in
        /// `out` (cleared first).
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = loop {
                let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, ms) };
                if n >= 0 {
                    break n as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for ev in &buf[..n] {
                let (events, data) = (ev.events, ev.data);
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    error: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Non-Linux Unix fallback: poll(2) over a registration table. O(n) per
// wait, fine for the fd counts this server targets.
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::sync::Mutex;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Mutex::new(Vec::new()) })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut regs = self.registered.lock().unwrap();
            for r in regs.iter_mut() {
                if r.0 == fd {
                    *r = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|r| r.0 != fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let regs: Vec<_> = self.registered.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = regs
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
                if n >= 0 {
                    break n;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pf, (_, token, _)) in fds.iter().zip(&regs) {
                if pf.revents != 0 {
                    out.push(Event {
                        token: *token,
                        readable: pf.revents & (POLLIN | POLLHUP) != 0,
                        writable: pf.revents & POLLOUT != 0,
                        error: pf.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

// ---------------------------------------------------------------------------
// Waker: a nonblocking socketpair. The read end lives in a poller; any
// thread can wake that poller by writing a byte to the write end.
// ---------------------------------------------------------------------------

/// Wakes a [`Poller`] from another thread.
pub struct Waker {
    tx: UnixStream,
}

/// The pollable read end of a [`Waker`].
pub struct WakeReceiver {
    rx: UnixStream,
}

/// Build a connected waker pair; register `WakeReceiver` with
/// [`Interest::READ`] and call [`Waker::wake`] from anywhere.
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

impl Waker {
    /// Wake the paired poller. A full pipe means a wake is already
    /// pending, which is just as good — the error is ignored.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl WakeReceiver {
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consume all pending wake bytes so the level-triggered poller
    /// stops reporting the fd as readable.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

// ---------------------------------------------------------------------------
// Per-thread CPU clock, for the idle-burn regression metric: each I/O
// thread samples its own CLOCK_THREAD_CPUTIME_ID per loop iteration and
// publishes the delta, so `/stats` can prove idle connections cost
// nothing even while unrelated threads are busy.
// ---------------------------------------------------------------------------

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[cfg(target_os = "linux")]
const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
#[cfg(not(target_os = "linux"))]
const CLOCK_THREAD_CPUTIME_ID: i32 = 16; // macOS value; best-effort elsewhere

extern "C" {
    fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
}

/// CPU time consumed by the calling thread, in microseconds (0 if the
/// platform clock is unavailable).
pub fn thread_cpu_us() -> u64 {
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    (ts.tv_sec as u64) * 1_000_000 + (ts.tv_nsec as u64) / 1_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_sees_readable_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing yet: a zero timeout returns empty.
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        (&client).write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "wrote a byte but the poller saw {events:?}"
        );
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn poller_reports_writable_and_modify_narrows_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let _ = client;

        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 1, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable), "{events:?}");

        // Narrow to read-only: an idle socket reports nothing.
        poller.modify(server.as_raw_fd(), 1, Interest::READ).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.iter().all(|e| e.token != 1 || !e.writable), "{events:?}");
    }

    #[test]
    fn waker_crosses_threads() {
        let (waker, rx) = waker().unwrap();
        let poller = Poller::new().unwrap();
        poller.register(rx.fd(), 99, Interest::READ).unwrap();

        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
            waker // keep the write end alive: dropping it reads as HUP
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(2000))).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable), "{events:?}");
        let _waker = t.join().unwrap();
        rx.drain();
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.is_empty(), "drained waker still readable: {events:?}");
    }

    #[test]
    fn thread_cpu_clock_advances_under_work() {
        let before = thread_cpu_us();
        // Burn a little CPU; volatile-ish accumulator defeats const-fold.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let after = thread_cpu_us();
        assert!(after > before, "thread CPU clock did not advance ({before} -> {after})");
    }
}
