//! `blossom-server` — `blossomd`, a zero-dependency concurrent query
//! server over the BlossomTree engine.
//!
//! The serving model inverts the CLI's: instead of parse → index →
//! evaluate → exit per invocation, a server process loads documents
//! into a shared [`catalog::Catalog`] once and then answers any number
//! of concurrent queries over them, amortizing parsing, indexing, *and*
//! planning (one process-wide [`blossom_core::SharedPlanCache`]). See
//! `DESIGN.md` §10 for the architecture and protocol grammar.
//!
//! Layers:
//!
//! * [`http`] — a minimal dependency-free HTTP/1.1 subset
//!   (`Content-Length` framing only) with early 4xx rejection of
//!   malformed or oversized requests;
//! * [`catalog`] — named `Arc`-shared immutable documents behind a
//!   byte-bounded LRU;
//! * [`metrics`] — lock-free counters and log-scaled latency
//!   histograms (global and per endpoint) feeding `GET /stats`;
//! * [`sys`] — a zero-dependency readiness shim (epoll on Linux,
//!   poll(2) elsewhere) plus a cross-thread waker and a thread-CPU
//!   clock;
//! * [`span`] — per-request lifecycle spans: process-unique ids and
//!   stage laps (read/parse/queue/batch/execute/serialize/write) that
//!   sum to the request's wall time by construction;
//! * [`promtext`] — Prometheus text-exposition rendering for
//!   `GET /metrics`, plus the in-tree format checker the tests and the
//!   load harness run against scrapes;
//! * [`accesslog`] — the structured slow-query/access log: single-line
//!   JSON records gated by `--slow-ms`, deterministic sampling, or
//!   `?trace=1`;
//! * [`sched`] — the bounded per-client fair execution queue and the
//!   shared-scan batch registry;
//! * [`eventloop`] — the default serving core: nonblocking I/O threads
//!   owning connection state machines (incremental framing,
//!   pipelining, keep-alive without timeout polling), an execution
//!   pool, request coalescing, and admission control;
//! * [`server`] — configuration, request routing, per-request
//!   deadlines, graceful drain, and the thread-per-request baseline
//!   core;
//! * [`client`] — a small blocking client used by the load harness,
//!   the differential tester's server mode, and the tests.

pub mod accesslog;
pub mod catalog;
pub mod client;
pub(crate) mod eventloop;
pub mod http;
pub mod metrics;
pub mod promtext;
pub mod sched;
pub mod server;
pub mod span;
pub mod sys;

pub use client::{Client, Response};
pub use server::{IoModel, Server, ServerConfig, ServerHandle};

/// Render `s` as a JSON string literal (quotes, backslashes, control
/// characters escaped) — the one JSON primitive the server needs.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
