//! A minimal HTTP/1.1 subset — just enough protocol for the query
//! server and its load harness, with no external dependencies.
//!
//! Supported: request lines `METHOD /target HTTP/1.1`, headers,
//! `Content-Length`-framed bodies (no chunked encoding), keep-alive,
//! pipelining, percent-encoded query strings. Oversized request lines,
//! too many headers, and oversized bodies are rejected early with 4xx
//! before any work happens; see `DESIGN.md` §10/§12 for the grammar.
//!
//! Two entry points share the same grammar: [`read_request`] pulls one
//! request off a blocking `BufRead` (the client and the legacy
//! thread-per-request path), and [`parse_request_bytes`] parses
//! incrementally out of a byte buffer that may hold a partial request,
//! a complete one, or several pipelined ones — the event loop's framing
//! primitive, safe to call again as more TCP segments arrive.

use std::io::{BufRead, Read, Write};

/// Longest accepted request/header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// A client error detected while reading a request; becomes a 4xx
/// response. The connection is closed afterwards since framing may be
/// lost.
#[derive(Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path portion of the target, percent-decoded (`/query`).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub params: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// False when the client sent `Connection: close`.
    pub keep_alive: bool,
}

impl Request {
    /// The last value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of waiting for the next request on a keep-alive connection.
#[derive(Debug)]
pub enum Next {
    /// A complete request.
    Request(Request),
    /// Clean close: EOF before the first byte of a request line.
    Closed,
    /// A read timeout fired before any byte of the next request arrived
    /// (idle keep-alive, when the socket has a read timeout). Safe to
    /// retry — nothing was consumed — or to close during shutdown.
    Idle,
}

enum Line {
    Some(String),
    Eof,
    Idle,
}

/// Read one line terminated by `\n`, stripping a trailing `\r`, bounded
/// by [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<Line, HttpError> {
    let mut line = Vec::new();
    let mut limited = reader.take(MAX_LINE as u64 + 1);
    let n = match limited.read_until(b'\n', &mut line) {
        Ok(n) => n,
        // A timeout with nothing consumed leaves framing intact.
        Err(e)
            if line.is_empty()
                && matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
        {
            return Ok(Line::Idle);
        }
        Err(e) => return Err(HttpError::new(400, format!("reading request: {e}"))),
    };
    if n == 0 {
        return Ok(Line::Eof);
    }
    if line.len() > MAX_LINE {
        return Err(HttpError::new(431, format!("request line over {MAX_LINE} bytes")));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Line::Some)
        .map_err(|_| HttpError::new(400, "request line not UTF-8"))
}

/// Read one request off the connection. `max_body` bounds the accepted
/// `Content-Length`. Timeouts *inside* a request (after its first byte)
/// are errors — framing is lost — but before it they are [`Next::Idle`].
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Next, HttpError> {
    let request_line = match read_line(reader)? {
        Line::Some(line) => line,
        Line::Eof => return Ok(Next::Closed),
        Line::Idle => return Ok(Next::Idle),
    };
    let (method, target) = split_request_line(&request_line)?;
    let (method, target) = (method.to_string(), target.to_string());

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader)? {
            Line::Some(line) => line,
            Line::Eof => return Err(HttpError::new(400, "connection closed inside headers")),
            Line::Idle => return Err(HttpError::new(400, "timed out inside headers")),
        };
        if line.is_empty() {
            break;
        }
        push_header(&mut headers, &line)?;
    }

    let content_length = content_length_of(&headers, max_body)?;
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::new(400, format!("reading body: {e}")))?;
    Ok(Next::Request(assemble(&method, &target, headers, body)))
}

/// Split and validate `METHOD /target HTTP/1.x`.
fn split_request_line(request_line: &str) -> Result<(&str, &str), HttpError> {
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, format!("malformed request line {request_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, format!("unsupported protocol {version:?}")));
    }
    Ok((method, target))
}

/// Parse one `Name: value` header line into `headers`, enforcing
/// [`MAX_HEADERS`].
fn push_header(headers: &mut Vec<(String, String)>, line: &str) -> Result<(), HttpError> {
    if headers.len() == MAX_HEADERS {
        return Err(HttpError::new(431, format!("more than {MAX_HEADERS} headers")));
    }
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::new(400, format!("malformed header {line:?}")));
    };
    headers.push((name.trim().to_string(), value.trim().to_string()));
    Ok(())
}

/// The validated `Content-Length` (0 when absent), bounded by `max_body`.
fn content_length_of(headers: &[(String, String)], max_body: usize) -> Result<usize, HttpError> {
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(400, format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    Ok(content_length)
}

/// Build the [`Request`] once the framing is fully decoded.
fn assemble(method: &str, target: &str, headers: Vec<(String, String)>, body: Vec<u8>) -> Request {
    let keep_alive = !headers
        .iter()
        .any(|(k, v)| k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close"));
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let params = query.map(parse_query).unwrap_or_default();
    Request {
        method: method.to_string(),
        path: percent_decode(path),
        params,
        headers,
        body,
        keep_alive,
    }
}

/// Outcome of [`parse_request_bytes`] over an accumulation buffer.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request occupying the first `consumed` bytes of the
    /// buffer; the caller drops them and may parse again (pipelining).
    Complete { request: Request, consumed: usize },
    /// No complete request yet — read more bytes and retry. Nothing is
    /// consumed, so partial TCP segments cost nothing.
    Partial,
}

/// One `\n`-terminated line out of `buf[start..]`, `\r` stripped, with
/// the offset just past the terminator; `None` while the terminator has
/// not arrived. [`MAX_LINE`] is enforced even on unterminated data so a
/// peer cannot grow the buffer without bound.
fn take_line(buf: &[u8], start: usize) -> Result<Option<(&str, usize)>, HttpError> {
    match buf[start..].iter().position(|&b| b == b'\n') {
        Some(nl) => {
            if nl > MAX_LINE {
                return Err(HttpError::new(431, format!("request line over {MAX_LINE} bytes")));
            }
            let mut line = &buf[start..start + nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let line = std::str::from_utf8(line)
                .map_err(|_| HttpError::new(400, "request line not UTF-8"))?;
            Ok(Some((line, start + nl + 1)))
        }
        None if buf.len() - start > MAX_LINE => {
            Err(HttpError::new(431, format!("request line over {MAX_LINE} bytes")))
        }
        None => Ok(None),
    }
}

/// Incrementally parse one request from the front of `buf`.
///
/// This is restartable: on [`Parsed::Partial`] the caller appends newly
/// received bytes and calls again (re-scanning a partial request is
/// cheap — requests are small and bodies are length-checked before they
/// accumulate). Errors are terminal for the connection, exactly like
/// [`read_request`]'s: framing can no longer be trusted.
pub fn parse_request_bytes(buf: &[u8], max_body: usize) -> Result<Parsed, HttpError> {
    let Some((request_line, mut pos)) = take_line(buf, 0)? else {
        return Ok(Parsed::Partial);
    };
    let (method, target) = split_request_line(request_line)?;
    let (method, target) = (method.to_string(), target.to_string());

    let mut headers = Vec::new();
    loop {
        let Some((line, next)) = take_line(buf, pos)? else {
            return Ok(Parsed::Partial);
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        push_header(&mut headers, line)?;
    }

    // Length-check *before* waiting for the body, so an oversized
    // announcement is rejected without buffering a single body byte.
    let content_length = content_length_of(&headers, max_body)?;
    if buf.len() - pos < content_length {
        return Ok(Parsed::Partial);
    }
    let body = buf[pos..pos + content_length].to_vec();
    Ok(Parsed::Complete {
        request: assemble(&method, &target, headers, body),
        consumed: pos + content_length,
    })
}

/// Decode `k=v&k2=v2` with percent-escapes and `+`-for-space.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// RFC 3986 percent-decoding; invalid escapes pass through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// Percent-encode everything outside the RFC 3986 unreserved set, for
/// clients building query strings.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Standard reason phrases for the statuses the server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Render one response with `Content-Length` framing into a byte
/// vector. `close` adds `Connection: close`; `extra_headers` appends
/// literal header lines (e.g. `("Retry-After", "1")` on admission
/// rejections).
pub fn render_response(
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let mut response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_text(status),
        content_type,
        body.len(),
    )
    .into_bytes();
    for (name, value) in extra_headers {
        response.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if close {
        response.extend_from_slice(b"Connection: close\r\n");
    }
    response.extend_from_slice(b"\r\n");
    response.extend_from_slice(body);
    response
}

/// Write one response with `Content-Length` framing. `close` adds
/// `Connection: close` so the client knows not to reuse the socket.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    // One write per response: split small writes stall behind Nagle's
    // algorithm waiting on the peer's delayed ACK.
    w.write_all(&render_response(status, content_type, body, close, &[]))?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        match read_request(&mut BufReader::new(raw), 1024)? {
            Next::Request(r) => Ok(Some(r)),
            Next::Closed => Ok(None),
            Next::Idle => panic!("in-memory readers never time out"),
        }
    }

    #[test]
    fn get_with_params_round_trips() {
        let r = parse(b"GET /query?doc=bib&q=%2F%2Fbook%5Btitle%5D&x=a+b HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.param("doc"), Some("bib"));
        assert_eq!(r.param("q"), Some("//book[title]"));
        assert_eq!(r.param("x"), Some("a b"));
        assert!(r.keep_alive);
    }

    #[test]
    fn post_reads_content_length_body() {
        let r = parse(b"POST /load?name=d HTTP/1.1\r\nContent-Length: 5\r\n\r\n<r/>\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.body, b"<r/>\n");
        assert_eq!(r.header("content-length"), Some("5"));
    }

    #[test]
    fn eof_before_request_is_clean_close() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_are_4xx() {
        assert_eq!(parse(b"NONSENSE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /x SMTP/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err().status,
            413
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().status,
            400
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
        assert_eq!(parse(long.as_bytes()).unwrap_err().status, 431);
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn percent_encode_round_trips() {
        let original = "//book[title='a b']/@*";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }

    /// Feed a request byte-by-byte: the incremental parser must report
    /// `Partial` for every strict prefix and parse the whole thing once
    /// the last byte lands — headers split across TCP segments included.
    #[test]
    fn incremental_parse_survives_partial_reads() {
        let raw: &[u8] =
            b"POST /load?name=d HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\n<r/>\n";
        for cut in 0..raw.len() {
            match parse_request_bytes(&raw[..cut], 1024).unwrap() {
                Parsed::Partial => {}
                Parsed::Complete { .. } => panic!("complete at prefix length {cut}"),
            }
        }
        match parse_request_bytes(raw, 1024).unwrap() {
            Parsed::Complete { request, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.param("name"), Some("d"));
                assert_eq!(request.body, b"<r/>\n");
            }
            Parsed::Partial => panic!("full request still partial"),
        }
    }

    /// Two pipelined requests in one buffer: the first parse consumes
    /// exactly the first request, the second parse gets the rest.
    #[test]
    fn incremental_parse_handles_pipelined_requests() {
        let mut raw = Vec::new();
        raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n");
        let first_len = raw.len();
        raw.extend_from_slice(b"POST /load?name=x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc");
        // Plus a partial third request still in flight.
        raw.extend_from_slice(b"GET /stats HT");

        let Parsed::Complete { request, consumed } = parse_request_bytes(&raw, 1024).unwrap()
        else {
            panic!("first pipelined request not parsed");
        };
        assert_eq!(request.path, "/healthz");
        assert_eq!(consumed, first_len);

        let Parsed::Complete { request, consumed } =
            parse_request_bytes(&raw[first_len..], 1024).unwrap()
        else {
            panic!("second pipelined request not parsed");
        };
        assert_eq!(request.path, "/load");
        assert_eq!(request.body, b"abc");

        match parse_request_bytes(&raw[first_len + consumed..], 1024).unwrap() {
            Parsed::Partial => {}
            Parsed::Complete { request, .. } => panic!("phantom third request {request:?}"),
        }
    }

    /// Oversized data is rejected even before a line terminator ever
    /// arrives (a peer cannot balloon the buffer), oversized bodies are
    /// rejected from the `Content-Length` announcement alone, and a
    /// buffer that begins with garbage stays an error on re-parse after
    /// more bytes arrive (the reset sequence).
    #[test]
    fn incremental_parse_rejects_oversized_then_reset() {
        // An unterminated request line beyond MAX_LINE: 431 immediately.
        let flood = vec![b'a'; MAX_LINE + 2];
        assert_eq!(parse_request_bytes(&flood, 1024).unwrap_err().status, 431);

        // Oversized Content-Length: 413 with zero body bytes buffered.
        let big = b"POST /load HTTP/1.1\r\nContent-Length: 99999\r\n\r\n";
        assert_eq!(parse_request_bytes(big, 1024).unwrap_err().status, 413);

        // Garbage stays garbage: appending a valid request after the
        // malformed line must not resynchronize the parser — the
        // connection owner closes after the 4xx.
        let mut mixed = b"NOT HTTP AT ALL\r\n".to_vec();
        assert_eq!(parse_request_bytes(&mixed, 1024).unwrap_err().status, 400);
        mixed.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(parse_request_bytes(&mixed, 1024).unwrap_err().status, 400);

        // An oversized *terminated* header line is also 431.
        let mut long_header = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        long_header.extend_from_slice(&vec![b'p'; MAX_LINE]);
        long_header.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_request_bytes(&long_header, 1024).unwrap_err().status, 431);
    }

    #[test]
    fn render_response_appends_extra_headers() {
        let bytes = render_response(503, "text/plain", b"busy\n", false, &[("Retry-After", "1")]);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nbusy\n"), "{text}");
    }

    #[test]
    fn response_has_length_framing() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"hi", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhi"), "{text}");
    }
}
