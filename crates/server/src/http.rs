//! A minimal HTTP/1.1 subset — just enough protocol for the query
//! server and its load harness, with no external dependencies.
//!
//! Supported: request lines `METHOD /target HTTP/1.1`, headers,
//! `Content-Length`-framed bodies (no chunked encoding), keep-alive,
//! percent-encoded query strings. Oversized request lines, too many
//! headers, and oversized bodies are rejected early with 4xx before any
//! work happens; see `DESIGN.md` §10 for the full grammar.

use std::io::{BufRead, Read, Write};

/// Longest accepted request/header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// A client error detected while reading a request; becomes a 4xx
/// response. The connection is closed afterwards since framing may be
/// lost.
#[derive(Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path portion of the target, percent-decoded (`/query`).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub params: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// False when the client sent `Connection: close`.
    pub keep_alive: bool,
}

impl Request {
    /// The last value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of waiting for the next request on a keep-alive connection.
#[derive(Debug)]
pub enum Next {
    /// A complete request.
    Request(Request),
    /// Clean close: EOF before the first byte of a request line.
    Closed,
    /// A read timeout fired before any byte of the next request arrived
    /// (idle keep-alive, when the socket has a read timeout). Safe to
    /// retry — nothing was consumed — or to close during shutdown.
    Idle,
}

enum Line {
    Some(String),
    Eof,
    Idle,
}

/// Read one line terminated by `\n`, stripping a trailing `\r`, bounded
/// by [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<Line, HttpError> {
    let mut line = Vec::new();
    let mut limited = reader.take(MAX_LINE as u64 + 1);
    let n = match limited.read_until(b'\n', &mut line) {
        Ok(n) => n,
        // A timeout with nothing consumed leaves framing intact.
        Err(e)
            if line.is_empty()
                && matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
        {
            return Ok(Line::Idle);
        }
        Err(e) => return Err(HttpError::new(400, format!("reading request: {e}"))),
    };
    if n == 0 {
        return Ok(Line::Eof);
    }
    if line.len() > MAX_LINE {
        return Err(HttpError::new(431, format!("request line over {MAX_LINE} bytes")));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Line::Some)
        .map_err(|_| HttpError::new(400, "request line not UTF-8"))
}

/// Read one request off the connection. `max_body` bounds the accepted
/// `Content-Length`. Timeouts *inside* a request (after its first byte)
/// are errors — framing is lost — but before it they are [`Next::Idle`].
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Next, HttpError> {
    let request_line = match read_line(reader)? {
        Line::Some(line) => line,
        Line::Eof => return Ok(Next::Closed),
        Line::Idle => return Ok(Next::Idle),
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, format!("malformed request line {request_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, format!("unsupported protocol {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader)? {
            Line::Some(line) => line,
            Line::Eof => return Err(HttpError::new(400, "connection closed inside headers")),
            Line::Idle => return Err(HttpError::new(400, "timed out inside headers")),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::new(431, format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(400, format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::new(400, format!("reading body: {e}")))?;

    let keep_alive = !headers
        .iter()
        .any(|(k, v)| k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close"));

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let params = query.map(parse_query).unwrap_or_default();
    Ok(Next::Request(Request {
        method: method.to_string(),
        path: percent_decode(path),
        params,
        headers,
        body,
        keep_alive,
    }))
}

/// Decode `k=v&k2=v2` with percent-escapes and `+`-for-space.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// RFC 3986 percent-decoding; invalid escapes pass through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// Percent-encode everything outside the RFC 3986 unreserved set, for
/// clients building query strings.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Standard reason phrases for the statuses the server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one response with `Content-Length` framing. `close` adds
/// `Connection: close` so the client knows not to reuse the socket.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    // One write per response: split small writes stall behind Nagle's
    // algorithm waiting on the peer's delayed ACK.
    let mut response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}\r\n",
        status,
        status_text(status),
        content_type,
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
    )
    .into_bytes();
    response.extend_from_slice(body);
    w.write_all(&response)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        match read_request(&mut BufReader::new(raw), 1024)? {
            Next::Request(r) => Ok(Some(r)),
            Next::Closed => Ok(None),
            Next::Idle => panic!("in-memory readers never time out"),
        }
    }

    #[test]
    fn get_with_params_round_trips() {
        let r = parse(b"GET /query?doc=bib&q=%2F%2Fbook%5Btitle%5D&x=a+b HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.param("doc"), Some("bib"));
        assert_eq!(r.param("q"), Some("//book[title]"));
        assert_eq!(r.param("x"), Some("a b"));
        assert!(r.keep_alive);
    }

    #[test]
    fn post_reads_content_length_body() {
        let r = parse(b"POST /load?name=d HTTP/1.1\r\nContent-Length: 5\r\n\r\n<r/>\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.body, b"<r/>\n");
        assert_eq!(r.header("content-length"), Some("5"));
    }

    #[test]
    fn eof_before_request_is_clean_close() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_are_4xx() {
        assert_eq!(parse(b"NONSENSE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /x SMTP/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err().status,
            413
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().status,
            400
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
        assert_eq!(parse(long.as_bytes()).unwrap_err().status, 431);
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn percent_encode_round_trips() {
        let original = "//book[title='a b']/@*";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }

    #[test]
    fn response_has_length_framing() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"hi", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhi"), "{text}");
    }
}
