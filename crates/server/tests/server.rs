//! End-to-end tests over a real listening server: spawn on an ephemeral
//! port, drive it with the crate's own client, and check the robustness
//! contract — correct bytes under concurrency, 4xx on garbage without
//! killing the process, deadline aborts as 503, graceful drain.

use blossom_server::{Client, Server, ServerConfig};
use blossom_xml::writer;
use std::time::Duration;

fn spawn_default() -> blossom_server::ServerHandle {
    Server::bind(ServerConfig::default()).expect("bind ephemeral").spawn()
}

/// What `blossom query` would print for this document/query, plus the
/// newline the server's body contract adds.
fn direct_eval(xml: &str, query: &str) -> String {
    let engine = blossom_core::Engine::from_xml(xml).unwrap();
    let result = engine.eval_query_str(query, blossom_core::Strategy::Auto).unwrap();
    format!("{}\n", writer::to_string(&result))
}

const BIB: &str = "<bib><book><title>B</title><author>x</author></book>\
                   <book><title>A</title></book></bib>";

#[test]
fn load_then_query_matches_direct_evaluation() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();

    let loaded = client.load("bib", BIB.as_bytes()).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body_str());
    assert!(loaded.body_str().contains("\"loaded\": \"bib\""));

    for query in ["//book/title", "//book[author]", "for $b in //book order by $b/title return <t>{$b/title}</t>"] {
        let response = client.query("bib", query, &[]).unwrap();
        assert_eq!(response.status, 200, "{query}: {}", response.body_str());
        assert_eq!(response.body_str(), direct_eval(BIB, query), "{query}");
    }
    handle.shutdown();
}

#[test]
fn snapshot_bytes_load_like_xml() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    let doc = blossom_xml::Document::parse_str(BIB).unwrap();
    let snap = blossom_xml::succinct::encode(&doc);
    assert_eq!(client.load("snap", &snap).unwrap().status, 200);
    let response = client.query("snap", "//book/title", &[]).unwrap();
    assert_eq!(response.body_str(), direct_eval(BIB, "//book/title"));
    handle.shutdown();
}

#[test]
fn client_errors_are_4xx_and_the_server_survives() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();

    // Unknown document, bad query text, bad strategy, missing params,
    // unknown route, wrong method: all client errors.
    assert_eq!(client.query("nope", "//a", &[]).unwrap().status, 404);
    assert_eq!(client.query("bib", "//book[", &[]).unwrap().status, 400);
    assert_eq!(client.query("bib", "//a", &["strategy=warp"]).unwrap().status, 400);
    assert_eq!(client.get("/query?doc=bib").unwrap().status, 400);
    assert_eq!(client.get("/no/such/route").unwrap().status, 404);
    assert_eq!(client.request("POST", "/healthz", &[]).unwrap().status, 405);
    // Unparsable document bytes.
    assert_eq!(client.load("bad", b"<r><unclosed>").unwrap().status, 400);

    // A malformed request line gets 400 and closes that connection...
    let mut raw = Client::connect(handle.addr()).unwrap();
    let garbage = raw.send_raw(b"COMPLETE NONSENSE\r\n\r\n").unwrap();
    assert_eq!(garbage.status, 400);
    assert!(garbage.closed);

    // ...but the server keeps serving other connections.
    let good = client.query("bib", "//book/title", &[]).unwrap();
    assert_eq!(good.status, 200);
    assert_eq!(good.body_str(), direct_eval(BIB, "//book/title"));
    handle.shutdown();
}

#[test]
fn profile_returns_trace_json_alongside_the_result() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let response = client.query("bib", "//book/title", &["profile=1"]).unwrap();
    assert_eq!(response.status, 200);
    let body = response.body_str();
    for key in ["\"result\"", "\"profile\"", "\"blossom_profile\"", "\"strategy\"", "\"operators\"", "\"cache\""] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    // The embedded result is the same bytes the plain endpoint returns.
    let plain = client.query("bib", "//book/title", &[]).unwrap();
    assert!(
        body.contains(&blossom_server::json_str(&plain.body_str())),
        "profile envelope does not embed the plain body: {body}"
    );
    handle.shutdown();
}

#[test]
fn deadline_aborts_are_503() {
    // A tiny budget and a three-way Cartesian product: the cooperative
    // deadline must fire and surface as 503, not kill the worker.
    let mut xml = String::from("<r>");
    for i in 0..80 {
        xml.push_str(&format!("<a>{i}</a>"));
    }
    xml.push_str("</r>");
    let handle = Server::bind(ServerConfig {
        deadline: Some(Duration::from_micros(1)),
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("wide", xml.as_bytes()).unwrap();
    let response = client
        .query("wide", "for $x in //a for $y in //a for $z in //a return <t>{$x}</t>", &[])
        .unwrap();
    assert_eq!(response.status, 503, "{}", response.body_str());
    assert!(response.body_str().contains("deadline"), "{}", response.body_str());
    // The worker that hit the deadline still serves the next request
    // (healthz: the 1µs budget would 503 any real query here).
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body_str(), "ok\n");
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_byte_identical_results() {
    let handle = spawn_default();
    let mut setup = Client::connect(handle.addr()).unwrap();
    let mut xml = String::from("<bib>");
    for i in 0..200 {
        xml.push_str(&format!("<book><title>t{i}</title><year>{}</year></book>", 1990 + i % 30));
    }
    xml.push_str("</bib>");
    setup.load("bib", xml.as_bytes()).unwrap();

    let queries = [
        ("//book/title", ""),
        ("//book[year]/title", "strategy=ts"),
        ("//book//title", "strategy=pl"),
        ("for $b in //book where $b/year < 2000 return <t>{$b/title}</t>", ""),
    ];
    let addr = handle.addr();
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let xml = xml.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..5 {
                    let (q, extra) = queries[(w + round) % queries.len()];
                    let extras: Vec<&str> = if extra.is_empty() { vec![] } else { vec![extra] };
                    let response = client.query("bib", q, &extras).unwrap();
                    assert_eq!(response.status, 200, "{q}: {}", response.body_str());
                    assert_eq!(response.body_str(), direct_eval(&xml, q), "{q}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let body = stats.body_str();
    assert!(body.contains("\"requests\""), "{body}");
    assert!(body.contains("\"plan_cache\""), "{body}");
    assert!(body.contains("\"p99\""), "{body}");
    // 8 workers × 5 rounds over 4 distinct queries: the shared plan
    // cache must have served most of them from memory.
    assert!(body.contains("\"hits\""), "{body}");
    handle.shutdown();
}

#[test]
fn shutdown_endpoint_drains_and_exits() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let response = client.request("POST", "/shutdown", &[]).unwrap();
    assert_eq!(response.status, 200);
    assert!(response.closed, "shutdown responses close the connection");
    // The run loop must observe the flag and return; join via shutdown().
    handle.shutdown();
}

#[test]
fn healthz_and_keep_alive() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Several requests over one connection: keep-alive works.
    for _ in 0..3 {
        let response = client.get("/healthz").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "ok\n");
        assert!(!response.closed);
    }
    handle.shutdown();
}

#[test]
fn oversized_body_is_413() {
    let handle = Server::bind(ServerConfig { max_body: 64, ..ServerConfig::default() })
        .unwrap()
        .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let big = vec![b'x'; 1000];
    let response = client.load("big", &big).unwrap();
    assert_eq!(response.status, 413);
    handle.shutdown();
}
