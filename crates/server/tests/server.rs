//! End-to-end tests over a real listening server: spawn on an ephemeral
//! port, drive it with the crate's own client, and check the robustness
//! contract — correct bytes under concurrency, 4xx on garbage without
//! killing the process, deadline aborts as 503, graceful drain.

use blossom_server::{Client, Server, ServerConfig};
use blossom_xml::writer;
use std::time::Duration;

fn spawn_default() -> blossom_server::ServerHandle {
    Server::bind(ServerConfig::default()).expect("bind ephemeral").spawn()
}

/// What `blossom query` would print for this document/query, plus the
/// newline the server's body contract adds.
fn direct_eval(xml: &str, query: &str) -> String {
    let engine = blossom_core::Engine::from_xml(xml).unwrap();
    let result = engine.eval_query_str(query, blossom_core::Strategy::Auto).unwrap();
    format!("{}\n", writer::to_string(&result))
}

const BIB: &str = "<bib><book><title>B</title><author>x</author></book>\
                   <book><title>A</title></book></bib>";

#[test]
fn load_then_query_matches_direct_evaluation() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();

    let loaded = client.load("bib", BIB.as_bytes()).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body_str());
    assert!(loaded.body_str().contains("\"loaded\": \"bib\""));

    for query in ["//book/title", "//book[author]", "for $b in //book order by $b/title return <t>{$b/title}</t>"] {
        let response = client.query("bib", query, &[]).unwrap();
        assert_eq!(response.status, 200, "{query}: {}", response.body_str());
        assert_eq!(response.body_str(), direct_eval(BIB, query), "{query}");
    }
    handle.shutdown();
}

#[test]
fn snapshot_bytes_load_like_xml() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    let doc = blossom_xml::Document::parse_str(BIB).unwrap();
    let snap = blossom_xml::succinct::encode(&doc);
    assert_eq!(client.load("snap", &snap).unwrap().status, 200);
    let response = client.query("snap", "//book/title", &[]).unwrap();
    assert_eq!(response.body_str(), direct_eval(BIB, "//book/title"));
    handle.shutdown();
}

#[test]
fn client_errors_are_4xx_and_the_server_survives() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();

    // Unknown document, bad query text, bad strategy, missing params,
    // unknown route, wrong method: all client errors.
    assert_eq!(client.query("nope", "//a", &[]).unwrap().status, 404);
    assert_eq!(client.query("bib", "//book[", &[]).unwrap().status, 400);
    assert_eq!(client.query("bib", "//a", &["strategy=warp"]).unwrap().status, 400);
    assert_eq!(client.get("/query?doc=bib").unwrap().status, 400);
    assert_eq!(client.get("/no/such/route").unwrap().status, 404);
    assert_eq!(client.request("POST", "/healthz", &[]).unwrap().status, 405);
    // Unparsable document bytes.
    assert_eq!(client.load("bad", b"<r><unclosed>").unwrap().status, 400);

    // A malformed request line gets 400 and closes that connection...
    let mut raw = Client::connect(handle.addr()).unwrap();
    let garbage = raw.send_raw(b"COMPLETE NONSENSE\r\n\r\n").unwrap();
    assert_eq!(garbage.status, 400);
    assert!(garbage.closed);

    // ...but the server keeps serving other connections.
    let good = client.query("bib", "//book/title", &[]).unwrap();
    assert_eq!(good.status, 200);
    assert_eq!(good.body_str(), direct_eval(BIB, "//book/title"));
    handle.shutdown();
}

#[test]
fn profile_returns_trace_json_alongside_the_result() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let response = client.query("bib", "//book/title", &["profile=1"]).unwrap();
    assert_eq!(response.status, 200);
    let body = response.body_str();
    for key in ["\"result\"", "\"profile\"", "\"blossom_profile\"", "\"strategy\"", "\"operators\"", "\"cache\""] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    // The embedded result is the same bytes the plain endpoint returns.
    let plain = client.query("bib", "//book/title", &[]).unwrap();
    assert!(
        body.contains(&blossom_server::json_str(&plain.body_str())),
        "profile envelope does not embed the plain body: {body}"
    );
    handle.shutdown();
}

#[test]
fn deadline_aborts_are_503() {
    // A tiny budget and a three-way Cartesian product: the cooperative
    // deadline must fire and surface as 503, not kill the worker.
    let mut xml = String::from("<r>");
    for i in 0..80 {
        xml.push_str(&format!("<a>{i}</a>"));
    }
    xml.push_str("</r>");
    let handle = Server::bind(ServerConfig {
        deadline: Some(Duration::from_micros(1)),
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("wide", xml.as_bytes()).unwrap();
    let response = client
        .query("wide", "for $x in //a for $y in //a for $z in //a return <t>{$x}</t>", &[])
        .unwrap();
    assert_eq!(response.status, 503, "{}", response.body_str());
    assert!(response.body_str().contains("deadline"), "{}", response.body_str());
    // The worker that hit the deadline still serves the next request
    // (healthz: the 1µs budget would 503 any real query here).
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body_str(), "ok\n");
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_byte_identical_results() {
    let handle = spawn_default();
    let mut setup = Client::connect(handle.addr()).unwrap();
    let mut xml = String::from("<bib>");
    for i in 0..200 {
        xml.push_str(&format!("<book><title>t{i}</title><year>{}</year></book>", 1990 + i % 30));
    }
    xml.push_str("</bib>");
    setup.load("bib", xml.as_bytes()).unwrap();

    let queries = [
        ("//book/title", ""),
        ("//book[year]/title", "strategy=ts"),
        ("//book//title", "strategy=pl"),
        ("for $b in //book where $b/year < 2000 return <t>{$b/title}</t>", ""),
    ];
    let addr = handle.addr();
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let xml = xml.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..5 {
                    let (q, extra) = queries[(w + round) % queries.len()];
                    let extras: Vec<&str> = if extra.is_empty() { vec![] } else { vec![extra] };
                    let response = client.query("bib", q, &extras).unwrap();
                    assert_eq!(response.status, 200, "{q}: {}", response.body_str());
                    assert_eq!(response.body_str(), direct_eval(&xml, q), "{q}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let body = stats.body_str();
    assert!(body.contains("\"requests\""), "{body}");
    assert!(body.contains("\"plan_cache\""), "{body}");
    assert!(body.contains("\"p99\""), "{body}");
    // 8 workers × 5 rounds over 4 distinct queries: the shared plan
    // cache must have served most of them from memory.
    assert!(body.contains("\"hits\""), "{body}");
    handle.shutdown();
}

#[test]
fn shutdown_endpoint_drains_and_exits() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let response = client.request("POST", "/shutdown", &[]).unwrap();
    assert_eq!(response.status, 200);
    assert!(response.closed, "shutdown responses close the connection");
    // The run loop must observe the flag and return; join via shutdown().
    handle.shutdown();
}

#[test]
fn healthz_and_keep_alive() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Several requests over one connection: keep-alive works.
    for _ in 0..3 {
        let response = client.get("/healthz").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "ok\n");
        assert!(!response.closed);
    }
    handle.shutdown();
}

#[test]
fn oversized_body_is_413() {
    let handle = Server::bind(ServerConfig { max_body: 64, ..ServerConfig::default() })
        .unwrap()
        .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let big = vec![b'x'; 1000];
    let response = client.load("big", &big).unwrap();
    assert_eq!(response.status, 413);
    handle.shutdown();
}

/// Extract an integer stats field by key (first occurrence).
fn stat_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = body.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// A query that keeps one execution worker busy for about `ms`
/// milliseconds: a three-way Cartesian product far larger than the
/// budget, cut off by `?deadline_ms=` so occupancy is machine-speed
/// independent.
fn occupy(addr: std::net::SocketAddr, ms: u64) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let response = client
            .query(
                "wide",
                "for $x in //a for $y in //a for $z in //a return <t>{$x}</t>",
                &[&format!("deadline_ms={ms}")],
            )
            .unwrap();
        assert_eq!(response.status, 503, "occupier should die on its deadline");
    })
}

fn wide_xml() -> String {
    let mut xml = String::from("<r>");
    for i in 0..500 {
        xml.push_str(&format!("<a>{i}</a>"));
    }
    xml.push_str("</r>");
    xml
}

#[test]
fn stats_reports_queue_batching_io_and_endpoint_fields() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    client.query("bib", "//book/title", &[]).unwrap();
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let body = stats.body_str();
    for key in [
        "\"io_model\": \"event-loop\"",
        "\"queue\": {\"depth\": ",
        "\"peak\": ",
        "\"capacity\": ",
        "\"admission_rejections\": ",
        "\"batching\": {\"batched_requests\": ",
        "\"evaluations_saved\": ",
        "\"io\": {\"wakeups\": ",
        "\"cpu_us\": ",
        "\"latency_us\": {\"count\": ",
        "\"endpoints\": {",
        "\"/query\": {\"count\": 1",
        "\"/load\": {\"count\": 1",
    ] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    assert_eq!(stat_u64(&body, "capacity"), 1024, "default queue bound");
    handle.shutdown();
}

/// The PR 5 server woke every worker every 100ms per idle keep-alive
/// connection. The event loop must not: parked connections sit in the
/// poller, so I/O-thread CPU and wakeups stay near zero no matter how
/// many idle sockets are open. (Measured via the self-sampled
/// `io.cpu_us` / `io.wakeups` counters so parallel test load cannot
/// pollute the reading.)
#[test]
fn idle_connections_cost_no_io_cpu_or_wakeups() {
    let handle = spawn_default();
    let idle: Vec<std::net::TcpStream> = (0..64)
        .map(|_| std::net::TcpStream::connect(handle.addr()).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    let mut client = Client::connect(handle.addr()).unwrap();
    let before = client.get("/stats").unwrap().body_str();
    std::thread::sleep(Duration::from_millis(1000));
    let after = client.get("/stats").unwrap().body_str();

    let cpu = stat_u64(&after, "cpu_us") - stat_u64(&before, "cpu_us");
    let wakeups = stat_u64(&after, "wakeups") - stat_u64(&before, "wakeups");
    // Budget: the 500ms safety tick (2 I/O threads → ~4 returns) plus
    // the /stats request itself. 64 idle connections polled at 100ms
    // would be ~640 wakeups and tens of ms of CPU.
    assert!(wakeups < 40, "idle window saw {wakeups} wakeups with 64 idle connections");
    assert!(cpu < 100_000, "idle window burned {cpu}µs of I/O-thread CPU");
    drop(idle);
    handle.shutdown();
}

/// The slow occupier query from [`occupy`], hand-encoded for a raw
/// socket, with the given evaluation deadline.
fn slow_query_request(deadline_ms: u64) -> String {
    let q = "for%20%24x%20in%20//a%20for%20%24y%20in%20//a%20for%20%24z%20in%20//a%20return%20%24x";
    format!("GET /query?doc=wide&q={q}&deadline_ms={deadline_ms} HTTP/1.1\r\nHost: x\r\n\r\n")
}

/// Wakeup delta across a window in which a client hangs up while its
/// response is still being computed. The abandoned connection must cost
/// nothing: level-triggered readiness re-reports a closed read side (or
/// an error) on every wait, and that hot loop can starve the very
/// completion that would end it.
fn wakeups_around_hangup(prelude: &[u8], linger_ms: u64) -> u64 {
    let handle =
        Server::bind(ServerConfig { workers: 2, ..ServerConfig::default() }).unwrap().spawn();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.load("wide", wide_xml().as_bytes()).unwrap();
    let before = client.get("/stats").unwrap().body_str();

    let mut gone = std::net::TcpStream::connect(addr).unwrap();
    std::io::Write::write_all(&mut gone, prelude).unwrap();
    std::io::Write::write_all(&mut gone, slow_query_request(400).as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(linger_ms));
    drop(gone);

    // Wait out the abandoned query's deadline; its completion lands on
    // a dead connection and must be dropped, then drain must work.
    std::thread::sleep(Duration::from_millis(600));
    let after = client.get("/stats").unwrap().body_str();
    handle.shutdown();
    stat_u64(&after, "wakeups") - stat_u64(&before, "wakeups")
}

/// Clean hangup (FIN): the read side stays readable forever at EOF, so
/// the loop must drop READ interest while the response is pending.
#[test]
fn eof_with_pending_response_does_not_spin_the_poller() {
    let wakeups = wakeups_around_hangup(b"", 150);
    assert!(wakeups < 150, "EOF'd connection spun the poller: {wakeups} wakeups in ~750ms");
}

/// Hard hangup (RST): a /healthz response left unread client-side makes
/// close() send a reset, so the poller reports an error event while the
/// slow query's response is still pending — the connection must close
/// immediately rather than stay registered and re-report forever.
#[test]
fn reset_with_pending_response_does_not_spin_the_poller() {
    let wakeups = wakeups_around_hangup(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", 200);
    assert!(wakeups < 150, "reset connection spun the poller: {wakeups} wakeups in ~800ms");
}

#[test]
fn coalesced_identical_queries_return_solo_bytes_and_save_evaluations() {
    let handle = Server::bind(ServerConfig { workers: 1, ..ServerConfig::default() })
        .unwrap()
        .spawn();
    let addr = handle.addr();
    let mut setup = Client::connect(addr).unwrap();
    setup.load("wide", wide_xml().as_bytes()).unwrap();
    setup.load("bib", BIB.as_bytes()).unwrap();
    let solo = setup.query("bib", "//book/title", &[]).unwrap();
    assert_eq!(solo.status, 200);
    assert_eq!(solo.body_str(), direct_eval(BIB, "//book/title"));

    // Fill the single worker, then land 4 identical queries while it is
    // busy: one leads, three join, one evaluation serves all four.
    let occupier = occupy(addr, 600);
    std::thread::sleep(Duration::from_millis(100));
    let followers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query("bib", "//book/title", &[]).unwrap()
            })
        })
        .collect();
    for f in followers {
        let response = f.join().unwrap();
        assert_eq!(response.status, 200, "{}", response.body_str());
        assert_eq!(
            response.body_str(),
            direct_eval(BIB, "//book/title"),
            "batched response must be byte-identical to solo evaluation"
        );
    }
    occupier.join().unwrap();

    let stats = setup.get("/stats").unwrap().body_str();
    assert!(
        stat_u64(&stats, "batched_requests") >= 4,
        "expected a 4-member batch in {stats}"
    );
    assert!(
        stat_u64(&stats, "evaluations_saved") >= 3,
        "expected >= 3 evaluations saved in {stats}"
    );
    handle.shutdown();
}

#[test]
fn a_members_deadline_expiring_mid_batch_does_not_poison_the_others() {
    let handle = Server::bind(ServerConfig { workers: 1, ..ServerConfig::default() })
        .unwrap()
        .spawn();
    let addr = handle.addr();
    let mut setup = Client::connect(addr).unwrap();
    setup.load("wide", wide_xml().as_bytes()).unwrap();
    setup.load("bib", BIB.as_bytes()).unwrap();

    // Worker busy until ~600ms. The first joiner's 50ms budget expires
    // while its batch is still queued; the second joiner has the full
    // default budget. Identical (doc, query) — they coalesce.
    let occupier = occupy(addr, 600);
    std::thread::sleep(Duration::from_millis(100));
    let tight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query("bib", "//book/title", &["deadline_ms=50"]).unwrap()
    });
    std::thread::sleep(Duration::from_millis(50));
    let lax = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query("bib", "//book/title", &[]).unwrap()
    });

    let tight = tight.join().unwrap();
    let lax = lax.join().unwrap();
    occupier.join().unwrap();
    assert_eq!(tight.status, 503, "expired member: {}", tight.body_str());
    assert!(tight.body_str().contains("deadline"), "{}", tight.body_str());
    assert_eq!(lax.status, 200, "surviving member: {}", lax.body_str());
    assert_eq!(
        lax.body_str(),
        direct_eval(BIB, "//book/title"),
        "survivor still gets solo-identical bytes"
    );
    handle.shutdown();
}

#[test]
fn admission_control_rejects_with_503_and_retry_after() {
    let handle = Server::bind(ServerConfig {
        workers: 1,
        max_queue: 1,
        batch: false, // identical bursts must queue, not coalesce
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn();
    let addr = handle.addr();
    let mut setup = Client::connect(addr).unwrap();
    setup.load("wide", wide_xml().as_bytes()).unwrap();
    setup.load("bib", BIB.as_bytes()).unwrap();

    let occupier = occupy(addr, 700);
    std::thread::sleep(Duration::from_millis(100));
    let burst: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query("bib", "//book/title", &[]).unwrap()
            })
        })
        .collect();
    let responses: Vec<_> = burst.into_iter().map(|t| t.join().unwrap()).collect();
    occupier.join().unwrap();

    let rejected: Vec<_> = responses.iter().filter(|r| r.status == 503).collect();
    let served = responses.iter().filter(|r| r.status == 200).count();
    assert!(!rejected.is_empty(), "queue bound 1 must reject part of a 6-burst");
    assert!(served >= 1, "the admitted request must still be served");
    for r in &rejected {
        assert_eq!(r.header("Retry-After"), Some("1"), "{:?}", r.headers);
        assert!(r.body_str().contains("overloaded"), "{}", r.body_str());
    }
    let stats = setup.get("/stats").unwrap().body_str();
    assert!(stat_u64(&stats, "admission_rejections") >= rejected.len() as u64, "{stats}");
    handle.shutdown();
}

#[test]
fn pipelined_requests_get_ordered_responses() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();

    // Three requests in one TCP segment; responses must come back in
    // request order with correct bodies.
    let query_target = "/query?doc=bib&q=%2F%2Fbook%2Ftitle";
    let pipelined = format!(
        "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
         GET {query_target} HTTP/1.1\r\nHost: x\r\n\r\n\
         GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
    );
    client.write_raw(pipelined.as_bytes()).unwrap();
    let first = client.recv().unwrap();
    let second = client.recv().unwrap();
    let third = client.recv().unwrap();
    assert_eq!((first.status, first.body_str().as_str()), (200, "ok\n"));
    assert_eq!(second.status, 200);
    assert_eq!(second.body_str(), direct_eval(BIB, "//book/title"));
    assert_eq!((third.status, third.body_str().as_str()), (200, "ok\n"));

    // A request whose header block dribbles in across many segments
    // still parses (incremental framing, not read-to-timeout).
    for fragment in ["GET /hea", "lthz HTTP/1.1\r\nHo", "st: x\r\nContent-Le", "ngth: 0\r\n\r\n"] {
        client.write_raw(fragment.as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let dribbled = client.recv().unwrap();
    assert_eq!((dribbled.status, dribbled.body_str().as_str()), (200, "ok\n"));
    handle.shutdown();
}

#[test]
fn thread_per_request_model_still_serves_identical_bytes() {
    let handle = Server::bind(ServerConfig {
        io_model: blossom_server::IoModel::ThreadPerRequest,
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let response = client.query("bib", "//book/title", &[]).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.body_str(), direct_eval(BIB, "//book/title"));
    let stats = client.get("/stats").unwrap().body_str();
    assert!(stats.contains("\"io_model\": \"thread-per-request\""), "{stats}");
    handle.shutdown();
}

#[test]
fn deadline_ms_param_tightens_but_cannot_extend_the_budget() {
    let handle = spawn_default(); // default budget: 10s
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("wide", wide_xml().as_bytes()).unwrap();
    let response = client
        .query(
            "wide",
            "for $x in //a for $y in //a for $z in //a return <t>{$x}</t>",
            &["deadline_ms=1"],
        )
        .unwrap();
    assert_eq!(response.status, 503, "{}", response.body_str());
    assert!(response.body_str().contains("deadline"), "{}", response.body_str());
    // A cheap query under the same tightened budget still succeeds.
    client.load("bib", BIB.as_bytes()).unwrap();
    let quick = client.query("bib", "//book/title", &["deadline_ms=5000"]).unwrap();
    assert_eq!(quick.status, 200);
    assert_eq!(quick.body_str(), direct_eval(BIB, "//book/title"));
    handle.shutdown();
}

// ---------------------------------------------------------------------
// POST /update
// ---------------------------------------------------------------------

/// Serialize what `xml` becomes after applying `script` (engine-side
/// splice), for byte-comparing server responses.
fn mutated_xml(xml: &str, script: &str) -> String {
    let doc = blossom_xml::Document::parse_str(xml).unwrap();
    let muts = blossom_xml::mutate::parse_mutations(script).unwrap();
    writer::to_string(&blossom_xml::mutate::apply_all(&doc, &muts).unwrap())
}

#[test]
fn update_then_query_matches_the_mutated_document() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let script = "insert 1 0 <book><title>C</title><author>y</author></book>\n\
                  replace 1.2.1 <title>BB</title>\n\
                  delete 1.3";
    let response = client.update("bib", script).unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    let body = response.body_str();
    assert!(body.contains("\"updated\": \"bib\""), "{body}");
    assert!(body.contains("\"mutations\": 3"), "{body}");

    let after = mutated_xml(BIB, script);
    for query in ["//book/title", "//book[author]/title", "for $b in //book return $b/title"] {
        let got = client.query("bib", query, &[]).unwrap();
        assert_eq!(got.status, 200, "{query}: {}", got.body_str());
        assert_eq!(got.body_str(), direct_eval(&after, query), "{query}");
    }
    handle.shutdown();
}

#[test]
fn update_4xx_matrix() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();

    // Missing ?doc=, unknown doc, empty body, non-UTF-8 body, bad
    // script syntax, invalid mutation, wrong method: all 4xx, and none
    // of them change the document.
    assert_eq!(client.request("POST", "/update", b"delete 1.1").unwrap().status, 400);
    assert_eq!(client.update("ghost", "delete 1.1").unwrap().status, 404);
    assert_eq!(client.update("bib", "").unwrap().status, 400);
    assert_eq!(
        client.request("POST", "/update?doc=bib", &[0xff, 0xfe, 0x00]).unwrap().status,
        400
    );
    assert_eq!(client.update("bib", "munge 1.1").unwrap().status, 400);
    assert_eq!(client.update("bib", "delete 1.9").unwrap().status, 400);
    assert_eq!(client.update("bib", "delete 1").unwrap().status, 400);
    assert_eq!(client.request("GET", "/update?doc=bib", &[]).unwrap().status, 405);

    let unchanged = client.query("bib", "//book/title", &[]).unwrap();
    assert_eq!(unchanged.body_str(), direct_eval(BIB, "//book/title"));
    handle.shutdown();
}

#[test]
fn oversized_update_body_is_413() {
    let handle = Server::bind(ServerConfig { max_body: 64, ..ServerConfig::default() })
        .unwrap()
        .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let script = "insert 1 0 <x/>\n".repeat(100);
    let response = client.update("bib", &script).unwrap();
    assert_eq!(response.status, 413);
    handle.shutdown();
}

#[test]
fn update_past_its_deadline_is_503_and_a_no_op() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("wide", wide_xml().as_bytes()).unwrap();
    // Thousands of splices against a tightened 1ms budget: the
    // per-mutation deadline poll must abort, all-or-nothing.
    let script = "insert 1 0 <a>zz</a>\n".repeat(4000);
    let response = client
        .request("POST", "/update?doc=wide&deadline_ms=1", script.as_bytes())
        .unwrap();
    assert_eq!(response.status, 503, "{}", response.body_str());
    assert!(response.body_str().contains("deadline"), "{}", response.body_str());
    let unchanged = client.query("wide", "//a[1]", &[]).unwrap();
    assert_eq!(unchanged.body_str(), direct_eval(&wide_xml(), "//a[1]"));
    handle.shutdown();
}

/// Queries racing an update must each see one coherent snapshot: every
/// response is byte-identical to the document either before or after
/// the mutation — never a mix, never an error.
#[test]
fn queries_concurrent_with_update_see_exactly_one_snapshot() {
    let handle = spawn_default();
    let addr = handle.addr();
    let mut setup = Client::connect(addr).unwrap();
    setup.load("bib", BIB.as_bytes()).unwrap();
    let script = "insert 1 0 <book><title>Z</title></book>";
    let before = direct_eval(BIB, "//book/title");
    let after = direct_eval(&mutated_xml(BIB, script), "//book/title");

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let (before, after) = (before.clone(), after.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..50 {
                    let r = client.query("bib", "//book/title", &[]).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body_str());
                    let body = r.body_str();
                    assert!(
                        body == before || body == after,
                        "tore a snapshot: {body:?} is neither {before:?} nor {after:?}"
                    );
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    let response = setup.update("bib", script).unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    for r in readers {
        r.join().unwrap();
    }
    // After the swap every reader sees the new snapshot.
    let settled = setup.query("bib", "//book/title", &[]).unwrap();
    assert_eq!(settled.body_str(), after);
    handle.shutdown();
}

#[test]
fn stats_reports_update_counters_and_scoped_invalidation() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("a", BIB.as_bytes()).unwrap();
    client.load("b", "<r><x>1</x></r>".as_bytes()).unwrap();
    // Warm one plan per document.
    client.query("a", "//book/title", &[]).unwrap();
    client.query("b", "//x", &[]).unwrap();
    let warm = client.get("/stats").unwrap().body_str();

    let response = client.update("a", "delete 1.2\ninsert 1 0 <book><title>N</title></book>").unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert!(response.body_str().contains("\"plans_invalidated\": 1"), "{}", response.body_str());

    // b's plan survived the update: re-running its query is a cache hit.
    let hits_before = stat_u64(&client.get("/stats").unwrap().body_str(), "hits");
    client.query("b", "//x", &[]).unwrap();
    let body = client.get("/stats").unwrap().body_str();
    assert_eq!(stat_u64(&body, "hits"), hits_before + 1, "untouched doc's plan stayed warm");
    assert!(
        body.contains("\"updates\": {\"count\": 1, \"mutations_applied\": 2, \"plans_invalidated\": 1}"),
        "{body}"
    );
    assert!(body.contains("\"/update\": {\"count\": 1"), "{body}");
    // Only a's entry was dropped: entry count went 2 -> 1 (plus the
    // re-planned queries since).
    let entries_warm = stat_u64(&warm, "entries");
    assert_eq!(entries_warm, 2, "{warm}");
    handle.shutdown();
}

/// A unique temp path for file-sink access-log tests.
fn tmp_log(name: &str) -> String {
    let path = std::env::temp_dir().join(format!("blossomd-test-{}-{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

/// The integer value of `"key": N` inside a JSON log record.
fn field_u64(record: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = record.find(&needle).unwrap_or_else(|| panic!("no {key} in {record}"));
    record[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn metrics_exposition_parses_and_tracks_stage_histograms() {
    use blossom_server::promtext;
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    for _ in 0..3 {
        client.query("bib", "//book/title", &[]).unwrap();
    }
    let response = client.get("/metrics").unwrap();
    assert_eq!(response.status, 200);
    let content_type = response.header("Content-Type").expect("content type").to_string();
    assert!(content_type.starts_with("text/plain; version=0.0.4"), "{content_type}");
    let text = response.body_str();
    let stats = promtext::check(&text).expect("exposition must parse");
    assert!(stats.families >= 20, "only {} families", stats.families);
    let v = |name: &str, labels: &[(&str, &str)]| promtext::value(&text, name, labels);
    assert!(v("blossomd_requests_total", &[]).unwrap() >= 4.0);
    assert_eq!(v("blossomd_catalog_documents", &[]), Some(1.0));
    let wall = v("blossomd_request_duration_seconds_count", &[("endpoint", "/query")]);
    assert_eq!(wall, Some(3.0));
    // Every span records all seven stage laps, so each stage family's
    // count equals the endpoint's request count.
    for stage in ["read", "parse", "queue", "batch", "execute", "serialize", "write"] {
        assert_eq!(
            v(
                "blossomd_request_stage_duration_seconds_count",
                &[("endpoint", "/query"), ("stage", stage)],
            ),
            wall,
            "{stage}"
        );
    }
    handle.shutdown();
}

#[test]
fn slow_log_records_reconstruct_wall_time_and_correlate_ids() {
    let path = tmp_log("slow");
    let handle = Server::bind(ServerConfig {
        // Threshold 0ms: every request is "slow", making the test
        // deterministic without an actually slow query.
        slow_ms: Some(0),
        access_log: blossom_server::accesslog::LogTarget::File(path.clone()),
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let response = client.query("bib", "//book/title", &[]).unwrap();
    assert_eq!(response.status, 200);
    let id = response.header("X-Request-Id").expect("responses carry X-Request-Id").to_string();
    assert!(id.parse::<u64>().unwrap() >= 1, "{id}");
    // Joining the server guarantees every record reached the file.
    handle.shutdown();

    let log = std::fs::read_to_string(&path).unwrap();
    let record = log
        .lines()
        .find(|l| l.contains(&format!("\"id\": {id},")))
        .unwrap_or_else(|| panic!("no record for id {id} in: {log}"));
    assert!(record.contains("\"endpoint\": \"/query\""), "{record}");
    assert!(record.contains("\"outcome\": \"ok\""), "{record}");
    assert!(record.contains("\"slow\": true"), "{record}");
    assert!(record.contains("\"query\": \"//book/title\""), "{record}");
    assert!(record.contains("\"strategy\": \""), "{record}");
    // Slow /query records carry the engine trace inline.
    assert!(record.contains("\"trace\": {"), "{record}");
    assert!(record.contains("\"blossom_profile\""), "{record}");
    // Stage laps reconstruct the logged wall time (>= 95% is the
    // acceptance bar; the lap design makes it exact).
    let wall = field_u64(record, "wall_us");
    let stages_at = record.find("\"stages_us\"").unwrap();
    let stages: u64 = ["read", "parse", "queue", "batch", "execute", "serialize", "write"]
        .iter()
        .map(|stage| field_u64(&record[stages_at..], stage))
        .sum();
    assert!(stages <= wall, "stage laps exceed wall: {record}");
    assert!(stages * 100 >= wall * 95, "stages {stages}us < 95% of wall {wall}us: {record}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_param_forces_a_log_record_when_nothing_else_would() {
    let path = tmp_log("trace");
    let handle = Server::bind(ServerConfig {
        access_log: blossom_server::accesslog::LogTarget::File(path.clone()),
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load("bib", BIB.as_bytes()).unwrap();
    let quiet = client.query("bib", "//book/title", &[]).unwrap();
    let forced = client.query("bib", "//book/title", &["trace=1"]).unwrap();
    assert_eq!(forced.body_str(), quiet.body_str(), "?trace=1 never changes the response body");
    let quiet_id = quiet.header("X-Request-Id").unwrap().to_string();
    let forced_id = forced.header("X-Request-Id").unwrap().to_string();
    assert_ne!(quiet_id, forced_id);
    handle.shutdown();

    let log = std::fs::read_to_string(&path).unwrap();
    assert!(log.contains(&format!("\"id\": {forced_id},")), "no forced record in: {log}");
    assert!(
        !log.contains(&format!("\"id\": {quiet_id},")),
        "un-traced fast request should not be logged: {log}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn endpoint_metrics_normalize_trailing_slashes_and_query_strings() {
    use blossom_server::promtext;
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Routing is strict (the trailing-slash spelling is a 404), but the
    // metrics endpoint label normalizes to the canonical path.
    assert_eq!(client.get("/healthz/").unwrap().status, 404);
    assert_eq!(client.get("/healthz?verbose=1").unwrap().status, 200);
    let text = client.get("/metrics").unwrap().body_str();
    assert_eq!(
        promtext::value(
            &text,
            "blossomd_request_duration_seconds_count",
            &[("endpoint", "/healthz")],
        ),
        Some(2.0)
    );
    assert_eq!(
        promtext::value(&text, "blossomd_request_duration_seconds_count", &[("endpoint", "other")]),
        None,
        "nothing should fall into the catch-all bucket"
    );
    handle.shutdown();
}
