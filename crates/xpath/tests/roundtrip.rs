//! Generative round-trip tests: random path ASTs survive
//! display → parse, and the parser never panics on junk.


// Gated: requires the external `proptest` crate. Build with
// `--features proptest` after restoring the dev-dependency (network).
#![cfg(feature = "proptest")]

use blossom_xml::Axis;
use blossom_xpath::ast::{CmpOp, Literal, NodeTest, PathExpr, PathStart, Predicate, Step};
use blossom_xpath::parse_path;
use proptest::prelude::*;

fn node_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        prop::sample::select(vec!["a", "b", "book", "title", "name_of_state"])
            .prop_map(|n| NodeTest::Name(n.into())),
        Just(NodeTest::Wildcard),
        Just(NodeTest::Text),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        "[a-z ]{0,8}".prop_map(Literal::Str),
        (0u32..1000).prop_map(|n| Literal::Num(n as f64)),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge])
}

fn axis() -> impl Strategy<Value = Axis> {
    prop::sample::select(vec![
        Axis::Child,
        Axis::Descendant,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Following,
        Axis::Preceding,
    ])
}

fn predicate(depth: u32) -> BoxedStrategy<Predicate> {
    let leaf = prop_oneof![
        (1u32..5).prop_map(Predicate::Position),
        (cmp_op(), literal()).prop_map(|(op, literal)| Predicate::Value {
            path: None,
            op,
            literal
        }),
        (simple_rel_path(), cmp_op(), literal()).prop_map(|(path, op, literal)| {
            Predicate::Value { path: Some(path), op, literal }
        }),
        simple_rel_path().prop_map(Predicate::Exists),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            4 => leaf,
            1 => (predicate(depth - 1), predicate(depth - 1))
                .prop_map(|(a, b)| Predicate::And(Box::new(a), Box::new(b))),
            1 => (predicate(depth - 1), predicate(depth - 1))
                .prop_map(|(a, b)| Predicate::Or(Box::new(a), Box::new(b))),
            1 => predicate(depth - 1).prop_map(|p| Predicate::Not(Box::new(p))),
        ]
        .boxed()
    }
}

/// Relative paths used inside predicates (name tests only: wildcards and
/// text() are fine but keep shrink output readable).
fn simple_rel_path() -> impl Strategy<Value = PathExpr> {
    prop::collection::vec(
        (axis(), prop::sample::select(vec!["x", "y", "z"])),
        1..3,
    )
    .prop_map(|steps| PathExpr {
        start: PathStart::Context,
        steps: steps
            .into_iter()
            .map(|(axis, name)| Step {
                axis,
                test: NodeTest::Name(name.into()),
                predicates: vec![],
            })
            .collect(),
    })
}

fn path() -> impl Strategy<Value = PathExpr> {
    (
        prop_oneof![
            Just(PathStart::Root { doc: None }),
            Just(PathStart::Root { doc: Some("bib.xml".into()) }),
            prop::sample::select(vec!["v", "book1"])
                .prop_map(|v| PathStart::Variable(v.into())),
        ],
        prop::collection::vec((axis(), node_test(), prop::collection::vec(predicate(1), 0..2)), 1..4),
    )
        .prop_map(|(start, steps)| PathExpr {
            start,
            steps: steps
                .into_iter()
                .map(|(axis, test, predicates)| Step { axis, test, predicates })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any generated AST prints to text the parser maps back to the same
    /// AST — except `//` steps, which print as `//name` and reparse to
    /// the same Descendant step (identity holds).
    #[test]
    fn ast_display_parse_roundtrip(p in path()) {
        let printed = p.to_string();
        let reparsed = parse_path(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(reparsed, p, "printed as {}", printed);
    }

    /// The path parser never panics on arbitrary printable input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = parse_path(&input);
    }
}
