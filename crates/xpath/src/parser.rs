//! Recursive-descent parser for the path-expression subset.
//!
//! Grammar (with `//` meaning descendant-or-self shorthand as usual):
//!
//! ```text
//! Path      ::= 'doc' '(' Str ')' AbsSteps
//!             | '$' Name AbsSteps?
//!             | AbsSteps            (* absolute, no doc() *)
//!             | '.' AbsSteps?       (* context-relative *)
//!             | RelSteps            (* context-relative *)
//! AbsSteps  ::= ('/' | '//') Step (('/' | '//') Step)*
//! RelSteps  ::= Step (('/' | '//') Step)*
//! Step      ::= NodeTest Predicate*
//! NodeTest  ::= Name | '*' | 'text' '(' ')' | '@' Name
//! Predicate ::= '[' OrExpr ']'
//! OrExpr    ::= AndExpr ('or' AndExpr)*
//! AndExpr   ::= Unary ('and' Unary)*
//! Unary     ::= 'not' '(' OrExpr ')'
//!             | Number                       (* positional *)
//!             | ('.' | Path) (CmpOp Literal)?(* value test / existence *)
//! ```
//!
//! A leading `//` inside a predicate is interpreted *relative to the
//! context node* (i.e. `.//`), matching how the paper's appendix queries
//! (`//a[//b]`) are meant.

use crate::ast::{CmpOp, Literal, NodeTest, PathExpr, PathStart, Predicate, Step};
use crate::tokens::{Cursor, SyntaxError, Tok};
use blossom_xml::Axis;

/// Parse a complete path expression; all input must be consumed.
pub fn parse_path(input: &str) -> Result<PathExpr, SyntaxError> {
    let mut cursor = Cursor::new(input)?;
    let path = parse_path_tokens(&mut cursor)?;
    if !cursor.at_end() {
        return Err(cursor.error(format!(
            "unexpected trailing '{}'",
            cursor.peek().unwrap()
        )));
    }
    Ok(path)
}

/// Parse a path expression from a token cursor, stopping at the first
/// token that cannot continue the path. Used by the FLWOR parser.
pub fn parse_path_tokens(cursor: &mut Cursor) -> Result<PathExpr, SyntaxError> {
    // Start.
    let start = if cursor.at_keyword("doc") && cursor.peek_at(1) == Some(&Tok::LParen) {
        cursor.next(); // doc
        cursor.next(); // (
        let uri = match cursor.next() {
            Some(Tok::Str(s)) => s,
            _ => return Err(cursor.error("expected string in doc(...)".into())),
        };
        cursor.expect(&Tok::RParen)?;
        PathStart::Root { doc: Some(uri) }
    } else if cursor.eat(&Tok::Dollar) {
        let name = cursor.expect_name()?;
        PathStart::Variable(name)
    } else if cursor.eat(&Tok::Dot) {
        PathStart::Context
    } else if matches!(cursor.peek(), Some(Tok::Slash | Tok::DSlash)) {
        PathStart::Root { doc: None }
    } else {
        // Relative path beginning directly with a step.
        let mut steps = Vec::new();
        steps.push(parse_step(cursor, Axis::Child)?);
        parse_more_steps(cursor, &mut steps)?;
        return Ok(PathExpr { start: PathStart::Context, steps });
    };

    let mut steps = Vec::new();
    parse_more_steps(cursor, &mut steps)?;
    if matches!(start, PathStart::Root { .. }) && steps.is_empty() {
        return Err(cursor.error("expected '/' or '//' after path start".into()));
    }
    Ok(PathExpr { start, steps })
}

fn parse_more_steps(cursor: &mut Cursor, steps: &mut Vec<Step>) -> Result<(), SyntaxError> {
    loop {
        let axis = if cursor.eat(&Tok::DSlash) {
            Axis::Descendant
        } else if cursor.eat(&Tok::Slash) {
            Axis::Child
        } else {
            return Ok(());
        };
        steps.push(parse_step(cursor, axis)?);
    }
}

fn parse_step(cursor: &mut Cursor, axis: Axis) -> Result<Step, SyntaxError> {
    // Explicit axis: `/following-sibling::b`, `/self::b`, ... — the
    // explicit name replaces the Child axis implied by the `/` separator.
    let axis = if matches!(cursor.peek(), Some(Tok::Name(_)))
        && cursor.peek_at(1) == Some(&Tok::DColon)
    {
        if axis == Axis::Descendant {
            return Err(cursor.error("'//' cannot be combined with an explicit axis".into()));
        }
        let name = cursor.expect_name()?;
        cursor.expect(&Tok::DColon)?;
        match name.as_str() {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "self" => Axis::SelfAxis,
            other => return Err(cursor.error(format!("unsupported axis '{other}'"))),
        }
    } else {
        axis
    };
    let test = match cursor.peek() {
        Some(Tok::Star) => {
            cursor.next();
            NodeTest::Wildcard
        }
        Some(Tok::At) => {
            cursor.next();
            NodeTest::Attribute(cursor.expect_name()?.into())
        }
        Some(Tok::Name(n)) if n == "text" && cursor.peek_at(1) == Some(&Tok::LParen) => {
            cursor.next();
            cursor.next();
            cursor.expect(&Tok::RParen)?;
            NodeTest::Text
        }
        Some(Tok::Name(_)) => NodeTest::Name(cursor.expect_name()?.into()),
        _ => return Err(cursor.error("expected a node test".into())),
    };
    let mut predicates = Vec::new();
    while cursor.eat(&Tok::LBracket) {
        let pred = parse_or_expr(cursor)?;
        cursor.expect(&Tok::RBracket)?;
        predicates.push(pred);
    }
    Ok(Step { axis, test, predicates })
}

fn parse_or_expr(cursor: &mut Cursor) -> Result<Predicate, SyntaxError> {
    let mut left = parse_and_expr(cursor)?;
    while cursor.at_keyword("or") {
        cursor.next();
        let right = parse_and_expr(cursor)?;
        left = Predicate::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_and_expr(cursor: &mut Cursor) -> Result<Predicate, SyntaxError> {
    let mut left = parse_unary(cursor)?;
    while cursor.at_keyword("and") {
        cursor.next();
        let right = parse_unary(cursor)?;
        left = Predicate::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_unary(cursor: &mut Cursor) -> Result<Predicate, SyntaxError> {
    // Parenthesized boolean sub-expression.
    if cursor.peek() == Some(&Tok::LParen) {
        cursor.next();
        let inner = parse_or_expr(cursor)?;
        cursor.expect(&Tok::RParen)?;
        return Ok(inner);
    }
    // not(...)
    if cursor.at_keyword("not") && cursor.peek_at(1) == Some(&Tok::LParen) {
        cursor.next();
        cursor.next();
        let inner = parse_or_expr(cursor)?;
        cursor.expect(&Tok::RParen)?;
        return Ok(Predicate::Not(Box::new(inner)));
    }
    // Positional predicate.
    if let Some(Tok::Num(n)) = cursor.peek() {
        let value = *n;
        if value.fract() != 0.0 || value < 1.0 {
            return Err(cursor.error(format!("invalid position {value}")));
        }
        cursor.next();
        return Ok(Predicate::Position(value as u32));
    }
    // '.' followed by a comparison, or a `.//x`-style relative path.
    if cursor.eat(&Tok::Dot) {
        if let Some(op) = peek_cmp_op(cursor) {
            cursor.next();
            let literal = parse_literal(cursor)?;
            return Ok(Predicate::Value { path: None, op, literal });
        }
        if matches!(cursor.peek(), Some(Tok::Slash | Tok::DSlash)) {
            let path = parse_predicate_path(cursor)?;
            if let Some(op) = peek_cmp_op(cursor) {
                cursor.next();
                let literal = parse_literal(cursor)?;
                return Ok(Predicate::Value { path: Some(path), op, literal });
            }
            return Ok(Predicate::Exists(path));
        }
        return Err(cursor.error("expected comparison or path after '.'".into()));
    }
    // A relative path (leading '//' means .// here), optionally compared.
    let path = parse_predicate_path(cursor)?;
    if let Some(op) = peek_cmp_op(cursor) {
        cursor.next();
        let literal = parse_literal(cursor)?;
        return Ok(Predicate::Value { path: Some(path), op, literal });
    }
    Ok(Predicate::Exists(path))
}

/// Inside predicates, paths are context-relative even when written with a
/// leading `/` or `//`.
fn parse_predicate_path(cursor: &mut Cursor) -> Result<PathExpr, SyntaxError> {
    let first_axis = if cursor.eat(&Tok::DSlash) {
        Axis::Descendant
    } else {
        // A leading single '/' is consumed but keeps the Child axis.
        cursor.eat(&Tok::Slash);
        Axis::Child
    };
    let mut steps = vec![parse_step(cursor, first_axis)?];
    parse_more_steps(cursor, &mut steps)?;
    Ok(PathExpr { start: PathStart::Context, steps })
}

fn peek_cmp_op(cursor: &Cursor) -> Option<CmpOp> {
    match cursor.peek() {
        Some(Tok::Eq) => Some(CmpOp::Eq),
        Some(Tok::Ne) => Some(CmpOp::Ne),
        Some(Tok::Lt) => Some(CmpOp::Lt),
        Some(Tok::Le) => Some(CmpOp::Le),
        Some(Tok::Gt) => Some(CmpOp::Gt),
        Some(Tok::Ge) => Some(CmpOp::Ge),
        _ => None,
    }
}

fn parse_literal(cursor: &mut Cursor) -> Result<Literal, SyntaxError> {
    match cursor.next() {
        Some(Tok::Str(s)) => Ok(Literal::Str(s)),
        Some(Tok::Num(n)) => Ok(Literal::Num(n)),
        other => Err(cursor.error(format!(
            "expected literal, found {}",
            other.map(|t| format!("'{t}'")).unwrap_or_else(|| "end of input".into())
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_absolute_path() {
        let p = parse_path("/a/b//c").unwrap();
        assert_eq!(p.start, PathStart::Root { doc: None });
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[2].axis, Axis::Descendant);
        assert_eq!(p.steps[2].test, NodeTest::Name("c".into()));
    }

    #[test]
    fn doc_call() {
        let p = parse_path(r#"doc("bib.xml")//book"#).unwrap();
        assert_eq!(p.start, PathStart::Root { doc: Some("bib.xml".into()) });
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn variable_path() {
        let p = parse_path("$book1/author").unwrap();
        assert_eq!(p.start, PathStart::Variable("book1".into()));
        assert_eq!(p.steps.len(), 1);
        let bare = parse_path("$aut1").unwrap();
        assert_eq!(bare, PathExpr::variable("aut1"));
    }

    #[test]
    fn relative_path() {
        let p = parse_path("author/last").unwrap();
        assert_eq!(p.start, PathStart::Context);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn predicates_existence_and_value() {
        let p = parse_path(r#"/book[//author="Smith"]/title"#).unwrap();
        assert_eq!(p.steps.len(), 2);
        let pred = &p.steps[0].predicates[0];
        match pred {
            Predicate::Value { path: Some(path), op, literal } => {
                assert_eq!(path.steps[0].axis, Axis::Descendant);
                assert_eq!(*op, CmpOp::Eq);
                assert_eq!(*literal, Literal::Str("Smith".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dot_value_predicate() {
        let p = parse_path(r#"//author[. = "Knuth"]"#).unwrap();
        match &p.steps[0].predicates[0] {
            Predicate::Value { path: None, op: CmpOp::Eq, literal } => {
                assert_eq!(*literal, Literal::Str("Knuth".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn positional_predicate() {
        let p = parse_path("//book[2]").unwrap();
        assert_eq!(p.steps[0].predicates[0], Predicate::Position(2));
        assert!(p.has_positional());
        assert!(parse_path("//book[0]").is_err());
        assert!(parse_path("//book[1.5]").is_err());
    }

    #[test]
    fn multiple_branching_predicates() {
        // Appendix A style: //a[//b2][//b1]//b3
        let p = parse_path("//a[//b2][//b1]//b3").unwrap();
        assert_eq!(p.steps[0].predicates.len(), 2);
        assert_eq!(p.steps.len(), 2);
        assert!(!p.has_positional());
        assert!(!p.has_disjunction());
    }

    #[test]
    fn boolean_connectives() {
        let p = parse_path(r#"//book[author and not(title = "X")]"#).unwrap();
        match &p.steps[0].predicates[0] {
            Predicate::And(a, b) => {
                assert!(matches!(**a, Predicate::Exists(_)));
                assert!(matches!(**b, Predicate::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.has_disjunction());
        let p2 = parse_path("//book[a or b]").unwrap();
        assert!(p2.has_disjunction());
    }

    #[test]
    fn numeric_comparison() {
        let p = parse_path("//book[price < 10]").unwrap();
        match &p.steps[0].predicates[0] {
            Predicate::Value { op: CmpOp::Lt, literal: Literal::Num(n), .. } => {
                assert_eq!(*n, 10.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_text_attribute() {
        let p = parse_path("/a/*/text()").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::Wildcard);
        assert_eq!(p.steps[2].test, NodeTest::Text);
        let p = parse_path("/a/@id").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::Attribute("id".into()));
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "/a/b//c",
            "//a[//b2][//b1]//b3",
            "$book1/author",
            "//book[2]",
            r#"//author[. = "Knuth"]"#,
        ] {
            let p = parse_path(src).unwrap();
            let printed = p.to_string();
            let p2 = parse_path(&printed).unwrap();
            assert_eq!(p, p2, "roundtrip failed for {src}: printed as {printed}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("/").is_err());
        assert!(parse_path("//").is_err());
        assert!(parse_path("/a[").is_err());
        assert!(parse_path("/a]").is_err());
        assert!(parse_path("/a/b trailing").is_err());
        assert!(parse_path("doc(nope)//a").is_err());
        assert!(parse_path("/a[.]").is_err());
    }

    #[test]
    fn appendix_queries_parse() {
        // Every query from the paper's Appendix A (tags renamed with
        // underscores where the paper used spaces).
        let queries = [
            "//a//b4",
            "//a[//b2][//b1]//b3",
            "//a//c2/b1/c2/b1//c3",
            "//a//c2//b1/c2[//c2[b1]]/b1//c3",
            "//b1//c2//b1",
            "//b1//c2[//c3]//b1",
            "//addresses//street_address//name_of_state",
            "//addresses[//zip_code][//country_id]",
            "//address[//name_of_state][//zip_code]//street_address",
            "//address[//street_address][//zip_code][//name_of_city]",
            "//item/attributes//length",
            "//item/title[//author/contact_information//street_address]",
            "//publisher[//mailing_address]//street_address",
            "//author[date_of_birth][//last_name]//street_address",
            "//VP//VP/NP//PP/PP",
            "//VP[VP]//VP[PP]/NP[PP]/NN",
            "//VP[VP]//VP/NP//NN",
            "//VP//VP/NP//PP/IN",
            "//VP[//NP][//VB]//JJ",
            "//phdthesis//author",
            "//phdthesis[//author][//school]",
            "//www[//url]",
            "//www[//editor][//title][//year]",
            "//proceedings[//editor]",
            "//proceedings[//editor][//year][//url]",
        ];
        for q in queries {
            parse_path(q).unwrap_or_else(|e| panic!("failed to parse {q}: {e}"));
        }
    }
}

#[cfg(test)]
mod axis_tests {
    use super::*;

    #[test]
    fn explicit_axes_parse() {
        let p = parse_path("/a/following-sibling::b").unwrap();
        assert_eq!(p.steps[1].axis, Axis::FollowingSibling);
        let p = parse_path("/a/following::b").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Following);
        let p = parse_path("/a/self::a").unwrap();
        assert_eq!(p.steps[1].axis, Axis::SelfAxis);
        let p = parse_path("/a/descendant::b").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Descendant);
        let p = parse_path("/a/child::b").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Child);
    }

    #[test]
    fn explicit_axes_in_predicates() {
        let p = parse_path("//a[following-sibling::b]").unwrap();
        match &p.steps[0].predicates[0] {
            Predicate::Exists(path) => {
                assert_eq!(path.steps[0].axis, Axis::FollowingSibling);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn axis_display_roundtrip() {
        for src in ["/a/following-sibling::b[c]", "//a[following-sibling::b]"] {
            let p = parse_path(src).unwrap();
            let printed = p.to_string();
            assert_eq!(parse_path(&printed).unwrap(), p, "printed: {printed}");
        }
    }

    #[test]
    fn axis_errors() {
        assert!(parse_path("/a//following-sibling::b").is_err());
        assert!(parse_path("/a/ancestor::b").is_err());
        assert!(parse_path("/a/following-sibling:b").is_err());
    }
}

#[cfg(test)]
mod paren_tests {
    use super::*;

    #[test]
    fn parenthesized_predicates() {
        let grouped = parse_path("//x[(a or b) and c]").unwrap();
        match &grouped.steps[0].predicates[0] {
            Predicate::And(l, r) => {
                assert!(matches!(**l, Predicate::Or(_, _)));
                assert!(matches!(**r, Predicate::Exists(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Without parens, `and` binds tighter.
        let flat = parse_path("//x[a or b and c]").unwrap();
        assert!(matches!(
            &flat.steps[0].predicates[0],
            Predicate::Or(_, _)
        ));
        assert_ne!(grouped, flat);
    }

    #[test]
    fn precedence_survives_display() {
        for src in [
            "//x[(a or b) and c]",
            "//x[a or b and c]",
            "//x[not(a or b) and c]",
            "//x[(a or b) and (c or d)]",
        ] {
            let once = parse_path(src).unwrap();
            let printed = once.to_string();
            let twice = parse_path(&printed).unwrap();
            assert_eq!(once, twice, "{src} printed as {printed}");
        }
    }

    #[test]
    fn unbalanced_parens_error() {
        assert!(parse_path("//x[(a or b]").is_err());
        assert!(parse_path("//x[a)]").is_err());
    }
}
