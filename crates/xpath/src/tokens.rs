//! Shared lexer for path expressions and FLWOR expressions.
//!
//! One token vocabulary serves both `blossom-xpath` and `blossom-flwor`:
//! the FLWOR grammar of the paper embeds path expressions everywhere, so
//! its parser drives this lexer and hands sub-sequences to the path
//! parser. Keywords (`for`, `let`, `and`, `not`, ...) are lexed as
//! [`Tok::Name`] and interpreted contextually by the parsers.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Names and keywords: `book`, `for`, `deep-equal`, `name_of_state`.
    Name(String),
    /// Quoted string literal (quotes stripped).
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// `/`
    Slash,
    /// `//`
    DSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `$`
    Dollar,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<` — node "before" comparison.
    Before,
    /// `>>` — node "after" comparison.
    After,
    /// `:=`
    Assign,
    /// `::`
    DColon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Name(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Slash => f.write_str("/"),
            Tok::DSlash => f.write_str("//"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Dollar => f.write_str("$"),
            Tok::Dot => f.write_str("."),
            Tok::At => f.write_str("@"),
            Tok::Star => f.write_str("*"),
            Tok::Comma => f.write_str(","),
            Tok::Eq => f.write_str("="),
            Tok::Ne => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Before => f.write_str("<<"),
            Tok::After => f.write_str(">>"),
            Tok::Assign => f.write_str(":="),
            Tok::DColon => f.write_str("::"),
        }
    }
}

/// A lexing/parsing error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntaxError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the source text.
    pub offset: usize,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for SyntaxError {}

/// Lex all of `input` into `(token, offset)` pairs.
///
/// `<` followed by a letter is *not* lexed here — callers that accept
/// element constructors (the FLWOR `return` clause) must detect that case
/// at the character level before invoking the lexer; in pure path
/// expressions `<` is always a comparison.
pub fn lex(input: &str) -> Result<Vec<(Tok, usize)>, SyntaxError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    out.push((Tok::DSlash, start));
                    i += 2;
                } else {
                    out.push((Tok::Slash, start));
                    i += 1;
                }
            }
            b'[' => {
                out.push((Tok::LBracket, start));
                i += 1;
            }
            b']' => {
                out.push((Tok::RBracket, start));
                i += 1;
            }
            b'(' => {
                // XQuery comment `(: ... :)`, possibly nested.
                if bytes.get(i + 1) == Some(&b':') {
                    let mut depth = 1;
                    i += 2;
                    while i + 1 < bytes.len() && depth > 0 {
                        if bytes[i] == b'(' && bytes[i + 1] == b':' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b':' && bytes[i + 1] == b')' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(SyntaxError {
                            message: "unterminated comment".into(),
                            offset: start,
                        });
                    }
                } else {
                    out.push((Tok::LParen, start));
                    i += 1;
                }
            }
            b')' => {
                out.push((Tok::RParen, start));
                i += 1;
            }
            b'{' => {
                out.push((Tok::LBrace, start));
                i += 1;
            }
            b'}' => {
                out.push((Tok::RBrace, start));
                i += 1;
            }
            b'$' => {
                out.push((Tok::Dollar, start));
                i += 1;
            }
            b'@' => {
                out.push((Tok::At, start));
                i += 1;
            }
            b'*' => {
                out.push((Tok::Star, start));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, start));
                i += 1;
            }
            b'=' => {
                out.push((Tok::Eq, start));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, start));
                    i += 2;
                } else {
                    return Err(SyntaxError { message: "unexpected '!'".into(), offset: start });
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'<') => {
                    out.push((Tok::Before, start));
                    i += 2;
                }
                Some(&b'=') => {
                    out.push((Tok::Le, start));
                    i += 2;
                }
                _ => {
                    out.push((Tok::Lt, start));
                    i += 1;
                }
            },
            b'>' => match bytes.get(i + 1) {
                Some(&b'>') => {
                    out.push((Tok::After, start));
                    i += 2;
                }
                Some(&b'=') => {
                    out.push((Tok::Ge, start));
                    i += 2;
                }
                _ => {
                    out.push((Tok::Gt, start));
                    i += 1;
                }
            },
            b':' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push((Tok::Assign, start));
                    i += 2;
                }
                Some(&b':') => {
                    out.push((Tok::DColon, start));
                    i += 2;
                }
                _ => {
                    return Err(SyntaxError {
                        message: "unexpected ':'".into(),
                        offset: start,
                    });
                }
            },
            b'"' | b'\'' => {
                let quote = b;
                i += 1;
                let s_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SyntaxError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                out.push((Tok::Str(input[s_start..i].to_string()), start));
                i += 1;
            }
            b'0'..=b'9' => {
                let n_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    // Don't swallow a trailing '.' that isn't followed by a digit.
                    if bytes[i] == b'.'
                        && !bytes.get(i + 1).map(u8::is_ascii_digit).unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &input[n_start..i];
                let value: f64 = text.parse().map_err(|_| SyntaxError {
                    message: format!("bad number {text:?}"),
                    offset: n_start,
                })?;
                out.push((Tok::Num(value), n_start));
            }
            _ if is_name_start(b) => {
                let n_start = i;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                out.push((Tok::Name(input[n_start..i].to_string()), n_start));
            }
            b'.' => {
                out.push((Tok::Dot, start));
                i += 1;
            }
            _ => {
                return Err(SyntaxError {
                    message: format!("unexpected character {:?}", input[i..].chars().next().unwrap()),
                    offset: start,
                });
            }
        }
    }
    Ok(out)
}

#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

#[inline]
fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-') || b >= 0x80
}

/// A peekable cursor over lexed tokens, shared by the path and FLWOR
/// parsers.
#[derive(Debug, Clone)]
pub struct Cursor {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
    /// Offset just past the end of the source, for EOF errors.
    end_offset: usize,
}

impl Cursor {
    /// Lex `input` and wrap the tokens.
    pub fn new(input: &str) -> Result<Cursor, SyntaxError> {
        Ok(Cursor { tokens: lex(input)?, pos: 0, end_offset: input.len() })
    }

    /// Wrap pre-lexed tokens.
    pub fn from_tokens(tokens: Vec<(Tok, usize)>, end_offset: usize) -> Cursor {
        Cursor { tokens, pos: 0, end_offset }
    }

    /// Peek at the current token.
    pub fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// Peek `k` tokens ahead (0 = current).
    pub fn peek_at(&self, k: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + k).map(|(t, _)| t)
    }

    /// Offset of the current token (or end of input).
    pub fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|(_, o)| *o).unwrap_or(self.end_offset)
    }

    /// Consume and return the current token.
    #[allow(clippy::should_implement_trait)] // deliberate parser-cursor idiom
    pub fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume the current token if it equals `tok`.
    pub fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume the current token if it is the keyword `kw`.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Name(n)) if n == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Is the current token the keyword `kw`?
    pub fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Name(n)) if n == kw)
    }

    /// Require `tok` or fail.
    pub fn expect(&mut self, tok: &Tok) -> Result<(), SyntaxError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{tok}', found {}",
                self.peek().map(|t| format!("'{t}'")).unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    /// Require a name token and return it.
    pub fn expect_name(&mut self) -> Result<String, SyntaxError> {
        match self.peek() {
            Some(Tok::Name(_)) => match self.next() {
                Some(Tok::Name(n)) => Ok(n),
                _ => unreachable!(),
            },
            _ => Err(self.error("expected a name".to_string())),
        }
    }

    /// True when all tokens are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Build an error at the current offset.
    pub fn error(&self, message: String) -> SyntaxError {
        SyntaxError { message, offset: self.offset() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn path_tokens() {
        assert_eq!(
            toks("//a/b[c='x']"),
            vec![
                Tok::DSlash,
                Tok::Name("a".into()),
                Tok::Slash,
                Tok::Name("b".into()),
                Tok::LBracket,
                Tok::Name("c".into()),
                Tok::Eq,
                Tok::Str("x".into()),
                Tok::RBracket,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != < <= > >= << >> :="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Before,
                Tok::After,
                Tok::Assign
            ]
        );
    }

    #[test]
    fn names_with_hyphens_and_underscores() {
        assert_eq!(
            toks("deep-equal name_of_state"),
            vec![Tok::Name("deep-equal".into()), Tok::Name("name_of_state".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("3"), vec![Tok::Num(3.0)]);
        assert_eq!(toks("3.5"), vec![Tok::Num(3.5)]);
        // A '.' not followed by a digit is a separate Dot token.
        assert_eq!(toks("3.foo"), vec![Tok::Num(3.0), Tok::Dot, Tok::Name("foo".into())]);
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(toks(r#""dq" 'sq'"#), vec![Tok::Str("dq".into()), Tok::Str("sq".into())]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("a (: skip (: nested :) :) b"), vec![
            Tok::Name("a".into()),
            Tok::Name("b".into())
        ]);
        assert!(lex("(: open").is_err());
    }

    #[test]
    fn flwor_snippet() {
        let ts = toks("for $b in doc(\"bib.xml\")//book let $a := $b/author");
        assert_eq!(ts[0], Tok::Name("for".into()));
        assert_eq!(ts[1], Tok::Dollar);
        assert!(ts.contains(&Tok::Assign));
        assert!(ts.contains(&Tok::DSlash));
    }

    #[test]
    fn bad_characters() {
        assert!(lex("a ! b").is_err());
        assert!(lex("a : b").is_err());
        assert!(lex("a ; b").is_err());
    }

    #[test]
    fn cursor_basics() {
        let mut c = Cursor::new("/a/b").unwrap();
        assert!(c.eat(&Tok::Slash));
        assert_eq!(c.expect_name().unwrap(), "a");
        assert!(!c.at_keyword("b")); // next is '/'
        c.expect(&Tok::Slash).unwrap();
        assert_eq!(c.expect_name().unwrap(), "b");
        assert!(c.at_end());
        assert!(c.expect(&Tok::Slash).is_err());
    }
}
