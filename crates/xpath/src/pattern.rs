//! Pattern (twig) trees.
//!
//! A [`PatternTree`] is the tree-pattern-matching form of a path
//! expression (Section 2.1 of the paper): nodes carry tag-name and value
//! constraints, edges carry an axis and a matching mode (`f` mandatory /
//! `l` optional — the mode only becomes `l` for `let`-contributed edges in
//! BlossomTrees). The same structure represents NoK pattern trees, which
//! are simply pattern trees whose edges are all *local* axes.
//!
//! Compilation rejects constructs a conjunctive twig cannot express
//! (positional predicates, `or`, `not`); the navigational evaluator in
//! `blossom-core` handles those directly from the AST instead.

use crate::ast::{CmpOp, Literal, NodeTest, PathExpr, PathStart, Predicate, Step};
use blossom_xml::Axis;
use std::fmt;

/// Index of a node within a [`PatternTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternNodeId(pub u16);

impl PatternNodeId {
    /// The virtual root (matches the document node / evaluation context).
    pub const ROOT: PatternNodeId = PatternNodeId(0);

    /// Index into the tree's node array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Matching mode of the edge from a node's parent (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeMode {
    /// `f` — contributed by a `for` clause or a predicate: the child must
    /// match for the parent's match to be valid.
    Mandatory,
    /// `l` — contributed by a `let` clause: the child may match an empty
    /// sequence.
    Optional,
}

/// A value constraint attached to a pattern node: `value-of(node) op lit`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueTest {
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub literal: Literal,
}

/// One node of a pattern tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternNode {
    /// Parent node; `None` only for the root.
    pub parent: Option<PatternNodeId>,
    /// Axis on the edge from the parent (`Child` for the root, unused).
    pub axis: Axis,
    /// Matching mode of the edge from the parent.
    pub mode: EdgeMode,
    /// Tag-name constraint.
    pub test: NodeTest,
    /// Optional value constraint.
    pub value: Option<ValueTest>,
    /// Is this node's match part of the output (a returning node)?
    pub returning: bool,
    /// Variables bound to this node (a node with any is a *blossom*;
    /// several names can alias one node via `let $b := $a`).
    pub vars: Vec<String>,
    /// Children in insertion order.
    pub children: Vec<PatternNodeId>,
}

/// A pattern tree. Node 0 is a virtual root matching the document node
/// (or, for relative patterns, the evaluation context node).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternTree {
    nodes: Vec<PatternNode>,
}

/// Why a path expression could not be compiled to a pattern tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Positional predicates select by sibling rank, which a twig cannot.
    Positional,
    /// `or` / `not` make the constraint non-conjunctive.
    NotConjunctive,
    /// `$var`-rooted paths only make sense inside a FLWOR/BlossomTree.
    VariableStart(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Positional => {
                f.write_str("positional predicates are not expressible as a pattern tree")
            }
            CompileError::NotConjunctive => {
                f.write_str("or/not predicates are not expressible as a pattern tree")
            }
            CompileError::VariableStart(v) => {
                write!(f, "path starts at variable ${v}; compile it via a BlossomTree")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl PatternTree {
    /// A tree with just the virtual root.
    pub fn new() -> PatternTree {
        PatternTree {
            nodes: vec![PatternNode {
                parent: None,
                axis: Axis::Child,
                mode: EdgeMode::Mandatory,
                test: NodeTest::Wildcard,
                value: None,
                returning: false,
                vars: Vec::new(),
                children: Vec::new(),
            }],
        }
    }

    /// Compile a path expression rooted at the document (or context).
    ///
    /// The last step of the main spine becomes the (single) returning node.
    pub fn compile(path: &PathExpr) -> Result<PatternTree, CompileError> {
        if let PathStart::Variable(v) = &path.start {
            return Err(CompileError::VariableStart(v.clone()));
        }
        let mut tree = PatternTree::new();
        let last = tree.add_path(PatternNodeId::ROOT, &path.steps, EdgeMode::Mandatory)?;
        if let Some(last) = last {
            tree.nodes[last.index()].returning = true;
        }
        Ok(tree)
    }

    /// Append `steps` as a chain under `base`; predicates become branches.
    /// Returns the id of the last spine node (or `None` if `steps` is empty).
    pub fn add_path(
        &mut self,
        base: PatternNodeId,
        steps: &[Step],
        mode: EdgeMode,
    ) -> Result<Option<PatternNodeId>, CompileError> {
        let mut current = base;
        let mut added_any = false;
        for step in steps {
            // Only the first added edge carries the (possibly optional) mode;
            // deeper edges of the same path are mandatory relative to it.
            let edge_mode = if added_any { EdgeMode::Mandatory } else { mode };
            current = self.add_node(current, step.axis, edge_mode, step.test.clone());
            added_any = true;
            for pred in &step.predicates {
                self.add_predicate(current, pred)?;
            }
        }
        Ok(added_any.then_some(current))
    }

    fn add_predicate(
        &mut self,
        node: PatternNodeId,
        pred: &Predicate,
    ) -> Result<(), CompileError> {
        match pred {
            Predicate::Exists(path) => {
                self.add_path(node, &path.steps, EdgeMode::Mandatory)?;
                Ok(())
            }
            Predicate::Value { path: None, op, literal } => {
                self.set_value(node, ValueTest { op: *op, literal: literal.clone() });
                Ok(())
            }
            Predicate::Value { path: Some(path), op, literal } => {
                let leaf = self.add_path(node, &path.steps, EdgeMode::Mandatory)?;
                if let Some(leaf) = leaf {
                    self.set_value(leaf, ValueTest { op: *op, literal: literal.clone() });
                }
                Ok(())
            }
            Predicate::And(a, b) => {
                self.add_predicate(node, a)?;
                self.add_predicate(node, b)
            }
            Predicate::Position(_) => Err(CompileError::Positional),
            Predicate::Or(_, _) | Predicate::Not(_) => Err(CompileError::NotConjunctive),
        }
    }

    /// Add a child node and return its id.
    pub fn add_node(
        &mut self,
        parent: PatternNodeId,
        axis: Axis,
        mode: EdgeMode,
        test: NodeTest,
    ) -> PatternNodeId {
        let id = PatternNodeId(self.nodes.len() as u16);
        self.nodes.push(PatternNode {
            parent: Some(parent),
            axis,
            mode,
            test,
            value: None,
            returning: false,
            vars: Vec::new(),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attach a value constraint to `node` (conjoined if one exists: only a
    /// single constraint is kept — callers conjoin by adding extra branch
    /// nodes, which is what `add_predicate` does for path-valued tests).
    pub fn set_value(&mut self, node: PatternNodeId, value: ValueTest) {
        self.nodes[node.index()].value = Some(value);
    }

    /// Mark `node` as returning.
    pub fn set_returning(&mut self, node: PatternNodeId, returning: bool) {
        self.nodes[node.index()].returning = returning;
    }

    /// Bind a variable name to `node` (making it a blossom). A node can
    /// carry several aliases.
    pub fn set_var(&mut self, node: PatternNodeId, var: &str) {
        let vars = &mut self.nodes[node.index()].vars;
        if !vars.iter().any(|v| v == var) {
            vars.push(var.to_string());
        }
        self.nodes[node.index()].returning = true;
    }

    /// Access a node.
    pub fn node(&self, id: PatternNodeId) -> &PatternNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: PatternNodeId) -> &mut PatternNode {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes, including the virtual root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (the root exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate node ids in creation (pre-order-compatible) order.
    pub fn ids(&self) -> impl Iterator<Item = PatternNodeId> {
        (0..self.nodes.len() as u16).map(PatternNodeId)
    }

    /// Ids of all returning nodes.
    pub fn returning_nodes(&self) -> Vec<PatternNodeId> {
        self.ids().filter(|&id| self.node(id).returning).collect()
    }

    /// Id of the node bound to `var`, if any.
    pub fn var_node(&self, var: &str) -> Option<PatternNodeId> {
        self.ids().find(|&id| self.node(id).vars.iter().any(|v| v == var))
    }

    /// Is this a NoK pattern tree (all edges local)?
    pub fn is_nok(&self) -> bool {
        self.ids()
            .skip(1)
            .all(|id| self.node(id).axis.is_local())
    }

    /// Depth-first (pre-order) traversal from the root.
    pub fn preorder(&self) -> Vec<PatternNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![PatternNodeId::ROOT];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

impl Default for PatternTree {
    fn default() -> Self {
        PatternTree::new()
    }
}

impl fmt::Display for PatternTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            tree: &PatternTree,
            id: PatternNodeId,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let n = tree.node(id);
            for _ in 0..depth {
                f.write_str("  ")?;
            }
            if id == PatternNodeId::ROOT {
                writeln!(f, "(root)")?;
            } else {
                let axis = match n.axis {
                    Axis::Child => "/",
                    Axis::Descendant => "//",
                    Axis::FollowingSibling => "~",
                    Axis::PrecedingSibling => "~<",
                    Axis::Following => ">>",
                    Axis::Preceding => "<<",
                    Axis::SelfAxis => ".",
                };
                let mode = if n.mode == EdgeMode::Optional { " (l)" } else { "" };
                let ret = if n.returning { " *" } else { "" };
                let var = n
                    .vars
                    .iter()
                    .map(|v| format!(" ${v}"))
                    .collect::<String>();
                let value = n
                    .value
                    .as_ref()
                    .map(|v| format!(" [. {} {}]", v.op, v.literal))
                    .unwrap_or_default();
                writeln!(f, "{axis}{}{value}{mode}{ret}{var}", n.test)?;
            }
            for &c in &n.children {
                rec(tree, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, PatternNodeId::ROOT, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    #[test]
    fn compile_chain() {
        let tree = PatternTree::compile(&parse_path("/a/b//c").unwrap()).unwrap();
        // root + 3 steps.
        assert_eq!(tree.len(), 4);
        let ret = tree.returning_nodes();
        assert_eq!(ret.len(), 1);
        let leaf = tree.node(ret[0]);
        assert_eq!(leaf.test, NodeTest::Name("c".into()));
        assert_eq!(leaf.axis, Axis::Descendant);
        assert!(!tree.is_nok()); // has a // edge
    }

    #[test]
    fn compile_branches_from_predicates() {
        let tree =
            PatternTree::compile(&parse_path("//a[//b2][//b1]//b3").unwrap()).unwrap();
        // root, a, b2, b1, b3.
        assert_eq!(tree.len(), 5);
        let a = tree.node(PatternNodeId(1));
        assert_eq!(a.children.len(), 3);
        // Only b3 is returning.
        assert_eq!(tree.returning_nodes().len(), 1);
        assert_eq!(
            tree.node(tree.returning_nodes()[0]).test,
            NodeTest::Name("b3".into())
        );
    }

    #[test]
    fn compile_value_tests() {
        let tree = PatternTree::compile(
            &parse_path(r#"/book[//author="Smith"]/title"#).unwrap(),
        )
        .unwrap();
        // root, book, author, title.
        assert_eq!(tree.len(), 4);
        let author = tree
            .ids()
            .find(|&id| tree.node(id).test == NodeTest::Name("author".into()))
            .unwrap();
        let v = tree.node(author).value.as_ref().unwrap();
        assert_eq!(v.op, CmpOp::Eq);
        assert_eq!(v.literal, Literal::Str("Smith".into()));
        assert!(!tree.node(author).returning);
    }

    #[test]
    fn compile_dot_value() {
        let tree =
            PatternTree::compile(&parse_path(r#"//author[.="Knuth"]"#).unwrap()).unwrap();
        assert_eq!(tree.len(), 2);
        let a = tree.node(PatternNodeId(1));
        assert!(a.value.is_some());
        assert!(a.returning);
    }

    #[test]
    fn compile_and_conjoins() {
        let tree =
            PatternTree::compile(&parse_path("//a[b and c]").unwrap()).unwrap();
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.node(PatternNodeId(1)).children.len(), 2);
    }

    #[test]
    fn compile_rejections() {
        assert_eq!(
            PatternTree::compile(&parse_path("//a[2]").unwrap()),
            Err(CompileError::Positional)
        );
        assert_eq!(
            PatternTree::compile(&parse_path("//a[b or c]").unwrap()),
            Err(CompileError::NotConjunctive)
        );
        assert_eq!(
            PatternTree::compile(&parse_path("//a[not(b)]").unwrap()),
            Err(CompileError::NotConjunctive)
        );
        assert!(matches!(
            PatternTree::compile(&parse_path("$v/a").unwrap()),
            Err(CompileError::VariableStart(_))
        ));
    }

    #[test]
    fn nok_detection() {
        let nok = PatternTree::compile(&parse_path("/a/b[c]/d").unwrap()).unwrap();
        assert!(nok.is_nok());
        let not_nok = PatternTree::compile(&parse_path("/a//b").unwrap()).unwrap();
        assert!(!not_nok.is_nok());
    }

    #[test]
    fn preorder_visits_all() {
        let tree =
            PatternTree::compile(&parse_path("//a[b][c]//d[e]").unwrap()).unwrap();
        let order = tree.preorder();
        assert_eq!(order.len(), tree.len());
        assert_eq!(order[0], PatternNodeId::ROOT);
        // Parent precedes child.
        for &id in &order {
            if let Some(p) = tree.node(id).parent {
                let pi = order.iter().position(|&x| x == p).unwrap();
                let ci = order.iter().position(|&x| x == id).unwrap();
                assert!(pi < ci);
            }
        }
    }

    #[test]
    fn var_binding() {
        let mut tree = PatternTree::new();
        let book = tree.add_node(
            PatternNodeId::ROOT,
            Axis::Descendant,
            EdgeMode::Mandatory,
            NodeTest::Name("book".into()),
        );
        tree.set_var(book, "b");
        assert_eq!(tree.var_node("b"), Some(book));
        assert_eq!(tree.var_node("x"), None);
        assert!(tree.node(book).returning);
    }

    #[test]
    fn display_contains_structure() {
        let tree = PatternTree::compile(
            &parse_path(r#"//a[.="v"]/b"#).unwrap(),
        )
        .unwrap();
        let s = tree.to_string();
        assert!(s.contains("//a"));
        assert!(s.contains("/b"));
        assert!(s.contains("*"), "returning marker present: {s}");
    }
}
