//! Abstract syntax for the path-expression subset.
//!
//! The subset matches what the paper's queries use: `/` and `//` axes,
//! name and wildcard tests, `text()`, attribute tests, and predicates
//! combining relative paths, positional filters and value comparisons with
//! `and`/`or`/`not`.

use blossom_xml::Axis;
use std::fmt;

/// Where a path starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStart {
    /// Absolute: from the document root. `doc` carries the argument of a
    /// `doc("...")` call when present.
    Root {
        /// Document URI from `doc(...)`, if written.
        doc: Option<String>,
    },
    /// `$var/...` — from a variable binding.
    Variable(String),
    /// Relative to the evaluation context (inside predicates).
    Context,
}

/// A node test in a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A tag name.
    Name(Box<str>),
    /// `*` — any element.
    Wildcard,
    /// `text()` — text nodes.
    Text,
    /// `@name` — an attribute.
    Attribute(Box<str>),
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Attribute(n) => write!(f, "@{n}"),
        }
    }
}

/// Comparison operators in value predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with operands swapped (`a op b` == `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A literal in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// String literal; compared against trimmed string values.
    Str(String),
    /// Numeric literal; string values are coerced to numbers when possible.
    Num(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Num(n) => write!(f, "{n}"),
        }
    }
}

/// A predicate inside `[...]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Existence of a relative path: `[a//b]`.
    Exists(PathExpr),
    /// Positional: `[3]`.
    Position(u32),
    /// Value comparison `lhs op literal`; `lhs = None` means `.` (the
    /// context node's own string value).
    Value {
        /// Relative path to the compared node, or `None` for `.`.
        path: Option<PathExpr>,
        /// The comparison operator.
        op: CmpOp,
        /// The literal right-hand side.
        literal: Literal,
    },
    /// `p1 and p2`.
    And(Box<Predicate>, Box<Predicate>),
    /// `p1 or p2`.
    Or(Box<Predicate>, Box<Predicate>),
    /// `not(p)`.
    Not(Box<Predicate>),
}

/// One step of a path: the axis from the previous step, a node test and
/// its predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Axis connecting this step to the previous one (or to the start).
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates, in source order.
    pub predicates: Vec<Predicate>,
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// Starting context.
    pub start: PathStart,
    /// The steps; may be empty for a bare `$var` or `.`.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// A bare variable reference `$v`.
    pub fn variable(name: &str) -> PathExpr {
        PathExpr { start: PathStart::Variable(name.to_string()), steps: Vec::new() }
    }

    /// Does this path (or any nested predicate path) use a positional
    /// predicate? Those are outside what pattern trees can express.
    pub fn has_positional(&self) -> bool {
        fn pred_has(p: &Predicate) -> bool {
            match p {
                Predicate::Position(_) => true,
                Predicate::Exists(path) => path.has_positional(),
                Predicate::Value { path, .. } => {
                    path.as_ref().map(PathExpr::has_positional).unwrap_or(false)
                }
                Predicate::And(a, b) | Predicate::Or(a, b) => pred_has(a) || pred_has(b),
                Predicate::Not(p) => pred_has(p),
            }
        }
        self.steps.iter().any(|s| s.predicates.iter().any(pred_has))
    }

    /// Does this path use `or`/`not` in predicates? Those cannot be
    /// compiled into a conjunctive pattern tree.
    pub fn has_disjunction(&self) -> bool {
        fn pred_has(p: &Predicate) -> bool {
            match p {
                Predicate::Or(_, _) | Predicate::Not(_) => true,
                Predicate::Exists(path) => path.has_disjunction(),
                Predicate::Value { path, .. } => {
                    path.as_ref().map(PathExpr::has_disjunction).unwrap_or(false)
                }
                Predicate::And(a, b) => pred_has(a) || pred_has(b),
                Predicate::Position(_) => false,
            }
        }
        self.steps.iter().any(|s| s.predicates.iter().any(pred_has))
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            PathStart::Root { doc: Some(uri) } => write!(f, "doc({uri:?})")?,
            PathStart::Root { doc: None } => {}
            PathStart::Variable(v) => write!(f, "${v}")?,
            PathStart::Context => {
                if self.steps.is_empty() {
                    f.write_str(".")?;
                }
            }
        }
        for (i, step) in self.steps.iter().enumerate() {
            let relative_first = i == 0 && matches!(self.start, PathStart::Context);
            match step.axis {
                Axis::Child => {
                    if !relative_first {
                        f.write_str("/")?;
                    }
                }
                Axis::Descendant => f.write_str("//")?,
                Axis::FollowingSibling => f.write_str("/following-sibling::")?,
                Axis::PrecedingSibling => f.write_str("/preceding-sibling::")?,
                Axis::Following => f.write_str("/following::")?,
                Axis::Preceding => f.write_str("/preceding::")?,
                Axis::SelfAxis => f.write_str("/self::")?,
            }
            write!(f, "{}", step.test)?;
            for p in &step.predicates {
                write!(f, "[{}]", DisplayPred(p))?;
            }
        }
        Ok(())
    }
}

struct DisplayPred<'a>(&'a Predicate);

/// Like [`DisplayPred`] but parenthesizes `or` so reparsing keeps the
/// operator precedence (`and` binds tighter than `or`).
struct DisplayGuarded<'a>(&'a Predicate);

impl fmt::Display for DisplayGuarded<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Predicate::Or(_, _) => write!(f, "({})", DisplayPred(self.0)),
            other => write!(f, "{}", DisplayPred(other)),
        }
    }
}

impl fmt::Display for DisplayPred<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Predicate::Exists(p) => write!(f, "{p}"),
            Predicate::Position(n) => write!(f, "{n}"),
            Predicate::Value { path: None, op, literal } => write!(f, ". {op} {literal}"),
            Predicate::Value { path: Some(p), op, literal } => {
                write!(f, "{p} {op} {literal}")
            }
            Predicate::And(a, b) => {
                write!(f, "{} and {}", DisplayGuarded(a), DisplayGuarded(b))
            }
            Predicate::Or(a, b) => write!(f, "{} or {}", DisplayPred(a), DisplayPred(b)),
            Predicate::Not(p) => write!(f, "not({})", DisplayPred(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Lt.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal));
    }

    #[test]
    fn cmp_op_flip() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
    }
}
