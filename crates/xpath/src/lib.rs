#![warn(missing_docs)]

//! Path-expression parsing and pattern trees for BlossomTree.
//!
//! This crate covers the paper's query-language substrate:
//!
//! * a lexer shared with the FLWOR parser ([`tokens`]),
//! * an AST and recursive-descent parser for the XPath subset the paper's
//!   queries use ([`ast`], [`parser`]),
//! * pattern (twig) trees with returning nodes, value constraints and
//!   `f`/`l` edge modes ([`pattern`]), the common representation consumed
//!   by the NoK matcher, structural joins and the BlossomTree builder.
//!
//! ```
//! use blossom_xpath::{parse_path, PatternTree};
//!
//! let path = parse_path("//book[//author = \"Knuth\"]/title").unwrap();
//! let twig = PatternTree::compile(&path).unwrap();
//! assert_eq!(twig.returning_nodes().len(), 1);
//! ```

pub mod ast;
pub mod parser;
pub mod pattern;
pub mod tokens;

pub use ast::{CmpOp, Literal, NodeTest, PathExpr, PathStart, Predicate, Step};
pub use parser::{parse_path, parse_path_tokens};
pub use pattern::{
    CompileError, EdgeMode, PatternNode, PatternNodeId, PatternTree, ValueTest,
};
pub use tokens::{Cursor, SyntaxError, Tok};
