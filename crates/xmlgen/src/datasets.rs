//! The five evaluation datasets of Table 1, as seeded generators.
//!
//! The paper used two synthetic corpora (a recursive-DTD document and two
//! XBench documents) and two real corpora (Treebank and dblp). The real
//! corpora are not redistributable, so each generator reproduces the
//! *shape* the experiments depend on — recursiveness, depth profile and
//! tag-vocabulary size (Table 1's columns) plus the tag chains the
//! Appendix A queries probe — at a configurable node-count scale.

use crate::gen::Gen;
use blossom_xml::Document;

/// The five datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// d1 — synthetic, recursive DTD (8 tags, deep).
    D1Recursive,
    /// d2 — XBench "address"-like: shallow, non-recursive, 7 tags.
    D2Address,
    /// d3 — XBench "catalog"-like: deeper, non-recursive, ~51 tags.
    D3Catalog,
    /// d4 — Treebank-like: highly recursive, very deep, ~250 tags.
    D4Treebank,
    /// d5 — dblp-like: shallow bibliography, ~35 tags.
    D5Dblp,
}

impl Dataset {
    /// All five, in Table 1 order.
    pub fn all() -> [Dataset; 5] {
        [
            Dataset::D1Recursive,
            Dataset::D2Address,
            Dataset::D3Catalog,
            Dataset::D4Treebank,
            Dataset::D5Dblp,
        ]
    }

    /// Table 1 name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::D1Recursive => "d1",
            Dataset::D2Address => "d2",
            Dataset::D3Catalog => "d3",
            Dataset::D4Treebank => "d4",
            Dataset::D5Dblp => "d5",
        }
    }

    /// Is the dataset recursive (Table 1 category)?
    pub fn recursive(self) -> bool {
        matches!(self, Dataset::D1Recursive | Dataset::D4Treebank)
    }

    /// Node count reported by the paper's Table 1.
    pub fn paper_nodes(self) -> usize {
        match self {
            Dataset::D1Recursive => 1_212_548,
            Dataset::D2Address => 403_201,
            Dataset::D3Catalog => 620_604,
            Dataset::D4Treebank => 2_437_666,
            Dataset::D5Dblp => 3_332_130,
        }
    }

    /// Default generated size: 1/10 of the paper's, so the full Table 3
    /// sweep runs in CI time. Scale up with [`generate_scaled`].
    pub fn default_nodes(self) -> usize {
        self.paper_nodes() / 10
    }
}

/// Generate `dataset` with roughly `target_nodes` nodes.
pub fn generate(dataset: Dataset, target_nodes: usize, seed: u64) -> Document {
    match dataset {
        Dataset::D1Recursive => d1(target_nodes, seed),
        Dataset::D2Address => d2(target_nodes, seed),
        Dataset::D3Catalog => d3(target_nodes, seed),
        Dataset::D4Treebank => d4(target_nodes, seed),
        Dataset::D5Dblp => d5(target_nodes, seed),
    }
}

/// Generate at `scale` × the paper's node count.
pub fn generate_scaled(dataset: Dataset, scale: f64, seed: u64) -> Document {
    let target = (dataset.paper_nodes() as f64 * scale) as usize;
    generate(dataset, target.max(100), seed)
}

/// d1 — recursive DTD with 8 tags (a, b1–b4, c1–c3). Nested `a`s and
/// `c2/b1/c2/b1` chains feed the Appendix A d1 queries.
fn d1(target: usize, seed: u64) -> Document {
    let mut g = Gen::new(seed);
    g.open("a");
    while g.nodes() < target {
        a_body(&mut g, 1);
    }
    g.close();
    g.finish()
}

fn a_body(g: &mut Gen, depth: u16) {
    // Children of an <a>: nested a (recursion), b's and c's.
    if depth < 4 && g.chance(0.3) {
        g.open("a");
        let reps = g.int(1, 3);
        for _ in 0..reps {
            a_body(g, depth + 1);
        }
        g.close();
    }
    let chains = g.int(1, 2);
    for _ in 0..chains {
        if g.chance(0.7) {
            b1_chain(g, depth + 1);
        }
    }
    if g.chance(0.3) {
        let t = g.phrase(1);
        g.leaf("b2", &t);
    }
    if g.chance(0.3) {
        let t = g.phrase(1);
        g.leaf("b3", &t);
    }
    if g.chance(0.15) {
        let t = g.phrase(1);
        g.leaf("b4", &t);
    }
    if g.chance(0.4) {
        g.open("c1");
        if g.chance(0.5) {
            let t = g.phrase(1);
            g.leaf("b2", &t);
        }
        if g.chance(0.5) {
            let t = g.phrase(1);
            g.leaf("b3", &t);
        }
        g.close();
    }
}

/// b1 → c2 → b1 → c2 ... chains (the d1 queries' backbone), depth-capped
/// so max depth stays ≈ 8.
fn b1_chain(g: &mut Gen, depth: u16) {
    g.open("b1");
    if depth < 7 && g.chance(0.8) {
        g.open("c2");
        // A c2 can spawn more than one b1 branch, so the deep-branching
        // Q4 pattern (c2[//c2[b1]]/b1) occurs.
        let branches = g.int(1, 2);
        for _ in 0..branches {
            if depth + 1 < 8 && g.chance(0.7) {
                b1_chain(g, depth + 2);
            }
        }
        if g.chance(0.4) {
            let t = g.phrase(1);
            g.leaf("c3", &t);
        }
        g.close();
    } else if depth < 8 && g.chance(0.5) {
        let t = g.phrase(1);
        g.leaf("c3", &t);
    }
    g.close();
}

/// d2 — address list: addresses → address* → fields; ~7 tags, shallow,
/// non-recursive. Field presence probabilities create the h/m/l
/// selectivity spread of the d2 queries.
fn d2(target: usize, seed: u64) -> Document {
    let mut g = Gen::new(seed);
    g.open("addresses");
    while g.nodes() < target {
        g.open("address");
        g.open("street_address");
        let t = g.phrase(2);
        g.text(&t);
        // A nested state inside the street block is rare: Q1's
        // high-selectivity chain.
        if g.chance(0.05) {
            let s = g.phrase(1);
            g.leaf("name_of_state", &s);
        }
        g.close();
        if g.chance(0.8) {
            let c = g.phrase(1);
            g.leaf("name_of_city", &c);
        }
        if g.chance(0.45) {
            let s = g.phrase(1);
            g.leaf("name_of_state", &s);
        }
        if g.chance(0.7) {
            let z = g.number(10000, 99999);
            g.leaf("zip_code", &z);
        }
        if g.chance(0.25) {
            let c = g.number(1, 200);
            g.leaf("country_id", &c);
        }
        g.close();
    }
    g.close();
    g.finish()
}

/// d3 — catalog: catalog → item* with publisher/author subtrees; ~51
/// tags, max depth ≈ 8, non-recursive.
fn d3(target: usize, seed: u64) -> Document {
    const SUBJECTS: &[&str] =
        &["databases", "systems", "networks", "theory", "graphics", "languages"];
    let mut g = Gen::new(seed);
    g.open("catalog");
    let mut serial = 0u32;
    while g.nodes() < target {
        serial += 1;
        g.open("item");
        g.attr("id", &format!("I{serial}"));
        let t = g.phrase(3);
        g.leaf("title", &t);
        g.open("attributes");
        g.open("size_of_book");
        let l = g.number(100, 900);
        g.leaf("length", &l);
        let w = g.number(50, 400);
        g.leaf("width", &w);
        if g.chance(0.5) {
            let h = g.number(10, 60);
            g.leaf("height", &h);
        }
        g.close();
        if g.chance(0.6) {
            let w = g.number(100, 2000);
            g.leaf("weight", &w);
        }
        g.close();
        // Publisher with a deeply nested mailing address (depth 8 leaves).
        if g.chance(0.5) {
            g.open("publisher");
            let n = g.phrase(2);
            g.leaf("publisher_name", &n);
            if g.chance(0.7) {
                g.open("contact_information");
                g.open("mailing_address");
                g.open("street_information");
                let s = g.phrase(2);
                g.leaf("street_address", &s);
                if g.chance(0.4) {
                    let s2 = g.phrase(1);
                    g.leaf("suite_number", &s2);
                }
                g.close();
                let c = g.phrase(1);
                g.leaf("name_of_city", &c);
                if g.chance(0.6) {
                    let st = g.phrase(1);
                    g.leaf("name_of_state", &st);
                }
                let z = g.number(10000, 99999);
                g.leaf("zip_code", &z);
                g.close();
                if g.chance(0.3) {
                    let p = g.number(1000000, 9999999);
                    g.leaf("phone_number", &p);
                }
                g.close();
            }
            g.close();
        }
        // Authors.
        g.open("authors");
        let n_authors = g.int(1, 3);
        for _ in 0..n_authors {
            g.open("author");
            let f = g.phrase(1);
            g.leaf("first_name", &f);
            let l = g.phrase(1);
            g.leaf("last_name", &l);
            if g.chance(0.4) {
                let d = g.number(1940, 1990);
                g.leaf("date_of_birth", &d);
            }
            if g.chance(0.35) {
                g.open("contact_information");
                g.open("mailing_address");
                let s = g.phrase(2);
                g.leaf("street_address", &s);
                let c = g.phrase(1);
                g.leaf("name_of_city", &c);
                g.close();
                if g.chance(0.5) {
                    let e = g.phrase(1);
                    g.leaf("email_address", &e);
                }
                g.close();
            }
            g.close();
        }
        g.close();
        // Assorted catalog fields to widen the tag vocabulary.
        let yr = g.number(1970, 2004);
        g.leaf("date_of_release", &yr);
        let subj = (*g.pick(SUBJECTS)).to_string();
        g.leaf("subject", &subj);
        if g.chance(0.5) {
            g.open("pricing");
            let p = g.number(10, 300);
            g.leaf("suggested_retail_price", &p);
            if g.chance(0.5) {
                let c = g.number(5, 150);
                g.leaf("cost", &c);
            }
            g.close();
        }
        if g.chance(0.4) {
            g.open("publication_details");
            let i = g.number(1000000, 9999999);
            g.leaf("isbn", &i);
            let e = g.number(1, 9);
            g.leaf("edition", &e);
            if g.chance(0.5) {
                let p = g.number(100, 1200);
                g.leaf("number_of_pages", &p);
            }
            g.close();
        }
        if g.chance(0.3) {
            g.open("media");
            let f = g.phrase(1);
            g.leaf("format", &f);
            if g.chance(0.5) {
                let d = g.phrase(1);
                g.leaf("digital_rights", &d);
            }
            g.close();
        }
        if g.chance(0.25) {
            g.open("reviews");
            let r = g.int(1, 2);
            for _ in 0..r {
                g.open("review");
                let rating = g.number(1, 5);
                g.leaf("rating", &rating);
                let c = g.phrase(4);
                g.leaf("comment", &c);
                g.close();
            }
            g.close();
        }
        if g.chance(0.2) {
            g.open("related_items");
            let ri = g.number(1, 5000);
            g.leaf("related_item_id", &ri);
            g.close();
        }
        if g.chance(0.3) {
            let a = g.phrase(6);
            g.leaf("abstract", &a);
        }
        if g.chance(0.3) {
            let s = g.phrase(1);
            g.leaf("series", &s);
        }
        if g.chance(0.2) {
            let t = g.phrase(1);
            g.leaf("translator", &t);
        }
        if g.chance(0.2) {
            let il = g.phrase(1);
            g.leaf("illustrator", &il);
        }
        if g.chance(0.2) {
            let lang = g.phrase(1);
            g.leaf("language", &lang);
        }
        if g.chance(0.15) {
            let bind = g.phrase(1);
            g.leaf("binding", &bind);
        }
        if g.chance(0.15) {
            let aw = g.phrase(2);
            g.leaf("award", &aw);
        }
        g.close();
    }
    g.close();
    g.finish()
}

/// d4 — Treebank-like parse trees: highly recursive, max depth ≈ 36,
/// ~250 tags (core syntactic categories plus a long tail of rare tags).
fn d4(target: usize, seed: u64) -> Document {
    let rare: Vec<String> = (0..240).map(|i| format!("T{i:03}")).collect();
    let mut g = Gen::new(seed);
    g.open("FILE");
    while g.nodes() < target {
        g.open("S");
        sentence(&mut g, 2, &rare);
        g.close();
    }
    g.close();
    g.finish()
}

fn sentence(g: &mut Gen, depth: u16, rare: &[String]) {
    // NP VP core with recursive expansions.
    np(g, depth, rare);
    vp(g, depth, rare);
    if g.chance(0.1) {
        let tag = g.pick(rare).clone();
        let w = g.phrase(1);
        g.leaf(&tag, &w);
    }
}

fn vp(g: &mut Gen, depth: u16, rare: &[String]) {
    g.open("VP");
    let w = g.phrase(1);
    g.leaf("VB", &w);
    if depth < 34 && g.chance(0.42) {
        vp(g, depth + 1, rare); // nested VP — deep recursion
    }
    if depth < 34 && g.chance(0.6) {
        np(g, depth + 1, rare);
    }
    if depth < 34 && g.chance(0.35) {
        pp(g, depth + 1, rare);
    }
    if g.chance(0.15) {
        let w = g.phrase(1);
        g.leaf("JJ", &w);
    }
    if g.chance(0.05) {
        let tag = g.pick(rare).clone();
        let w = g.phrase(1);
        g.leaf(&tag, &w);
    }
    g.close();
}

fn np(g: &mut Gen, depth: u16, rare: &[String]) {
    g.open("NP");
    if g.chance(0.4) {
        let w = g.phrase(1);
        g.leaf("DT", &w);
    }
    if g.chance(0.3) {
        let w = g.phrase(1);
        g.leaf("JJ", &w);
    }
    let w = g.phrase(1);
    g.leaf("NN", &w);
    if depth < 34 && g.chance(0.25) {
        np(g, depth + 1, rare);
    }
    if depth < 34 && g.chance(0.3) {
        pp(g, depth + 1, rare);
    }
    g.close();
}

fn pp(g: &mut Gen, depth: u16, rare: &[String]) {
    g.open("PP");
    let w = g.phrase(1);
    g.leaf("IN", &w);
    if depth < 34 && g.chance(0.25) {
        pp(g, depth + 1, rare); // PP/PP chains for Q1
    }
    if depth < 34 && g.chance(0.5) {
        np(g, depth + 1, rare);
    }
    g.close();
}

/// d5 — dblp-like bibliography: flat records, ~35 tags, non-recursive.
fn d5(target: usize, seed: u64) -> Document {
    let mut g = Gen::new(seed);
    g.open("dblp");
    while g.nodes() < target {
        let kind = g.int(0, 99);
        match kind {
            // Record mix approximating dblp: mostly articles and
            // inproceedings, few theses/www/proceedings.
            0..=39 => record(&mut g, "article", &["journal", "volume", "number"]),
            40..=74 => record(&mut g, "inproceedings", &["booktitle", "crossref"]),
            75..=82 => record(&mut g, "book", &["publisher", "isbn"]),
            83..=88 => record(&mut g, "incollection", &["booktitle", "chapter"]),
            89..=92 => proceedings(&mut g),
            93..=95 => thesis(&mut g, "phdthesis"),
            96..=97 => thesis(&mut g, "mastersthesis"),
            _ => www(&mut g),
        }
    }
    g.close();
    g.finish()
}

fn common_fields(g: &mut Gen) {
    let n_auth = g.int(1, 3);
    for _ in 0..n_auth {
        let a = g.phrase(2);
        g.leaf("author", &a);
    }
    let t = g.phrase(4);
    g.leaf("title", &t);
    let y = g.number(1960, 2004);
    g.leaf("year", &y);
}

fn record(g: &mut Gen, tag: &str, extras: &[&str]) {
    g.open(tag);
    let key = format!("k{}", g.int(0, 9_999_999));
    g.attr("key", &key);
    common_fields(g);
    if g.chance(0.8) {
        let p = format!("{}-{}", g.int(1, 400), g.int(401, 800));
        g.leaf("pages", &p);
    }
    for e in extras {
        if g.chance(0.7) {
            let v = g.phrase(1);
            g.leaf(e, &v);
        }
    }
    if g.chance(0.5) {
        let u = format!("http://example.org/{}", g.int(0, 99999));
        g.leaf("url", &u);
    }
    if g.chance(0.4) {
        let e = format!("db/{}.html", g.int(0, 9999));
        g.leaf("ee", &e);
    }
    if g.chance(0.1) {
        let c = g.phrase(1);
        g.leaf("cite", &c);
    }
    if g.chance(0.1) {
        let n = g.phrase(3);
        g.leaf("note", &n);
    }
    if g.chance(0.05) {
        let m = g.phrase(1);
        g.leaf("month", &m);
    }
    if g.chance(0.05) {
        let c = g.phrase(1);
        g.leaf("cdrom", &c);
    }
    g.close();
}

fn proceedings(g: &mut Gen) {
    g.open("proceedings");
    let key = format!("p{}", g.int(0, 999_999));
    g.attr("key", &key);
    if g.chance(0.85) {
        let e = g.phrase(2);
        g.leaf("editor", &e);
        if g.chance(0.4) {
            let e2 = g.phrase(2);
            g.leaf("editor", &e2);
        }
    }
    let t = g.phrase(4);
    g.leaf("title", &t);
    let y = g.number(1970, 2004);
    g.leaf("year", &y);
    if g.chance(0.6) {
        let u = format!("http://example.org/proc/{}", g.int(0, 9999));
        g.leaf("url", &u);
    }
    if g.chance(0.6) {
        let p = g.phrase(1);
        g.leaf("publisher", &p);
    }
    if g.chance(0.5) {
        let s = g.phrase(2);
        g.leaf("series", &s);
    }
    if g.chance(0.4) {
        let v = g.number(1, 4000);
        g.leaf("volume", &v);
    }
    if g.chance(0.3) {
        let i = g.number(1_000_000, 9_999_999);
        g.leaf("isbn", &i);
    }
    g.close();
}

fn thesis(g: &mut Gen, tag: &str) {
    g.open(tag);
    let key = format!("t{}", g.int(0, 999_999));
    g.attr("key", &key);
    let a = g.phrase(2);
    g.leaf("author", &a);
    let t = g.phrase(5);
    g.leaf("title", &t);
    let y = g.number(1970, 2004);
    g.leaf("year", &y);
    if g.chance(0.9) {
        let s = g.phrase(2);
        g.leaf("school", &s);
    }
    if g.chance(0.3) {
        let u = format!("http://example.org/thesis/{}", g.int(0, 9999));
        g.leaf("url", &u);
    }
    if g.chance(0.2) {
        let m = g.phrase(1);
        g.leaf("month", &m);
    }
    g.close();
}

fn www(g: &mut Gen) {
    g.open("www");
    let key = format!("w{}", g.int(0, 999_999));
    g.attr("key", &key);
    if g.chance(0.7) {
        let a = g.phrase(2);
        g.leaf("author", &a);
    }
    let t = g.phrase(3);
    g.leaf("title", &t);
    if g.chance(0.8) {
        let u = format!("http://example.org/www/{}", g.int(0, 99999));
        g.leaf("url", &u);
    }
    if g.chance(0.3) {
        let e = g.phrase(2);
        g.leaf("editor", &e);
    }
    if g.chance(0.3) {
        let y = g.number(1990, 2004);
        g.leaf("year", &y);
    }
    if g.chance(0.2) {
        let n = g.phrase(2);
        g.leaf("note", &n);
    }
    g.close();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ds: Dataset) -> blossom_xml::DocStats {
        generate(ds, 20_000, 42).stats()
    }

    #[test]
    fn sizes_hit_target() {
        for ds in Dataset::all() {
            let s = stats(ds);
            assert!(
                s.node_count >= 20_000 && s.node_count < 30_000,
                "{}: {} nodes",
                ds.name(),
                s.node_count
            );
        }
    }

    #[test]
    fn recursion_flags_match_table1() {
        for ds in Dataset::all() {
            let s = stats(ds);
            assert_eq!(
                s.recursive,
                ds.recursive(),
                "{} recursive flag",
                ds.name()
            );
        }
    }

    #[test]
    fn d1_shape() {
        let s = stats(Dataset::D1Recursive);
        assert_eq!(s.tag_count, 8, "d1 has 8 tags");
        assert!(s.max_depth >= 6 && s.max_depth <= 12, "max depth {}", s.max_depth);
    }

    #[test]
    fn d2_shape() {
        let s = stats(Dataset::D2Address);
        assert_eq!(s.tag_count, 7, "d2 has 7 tags: {}", s.tag_count);
        assert!(s.max_depth <= 4);
        assert!(s.avg_depth < 4.0);
    }

    #[test]
    fn d3_shape() {
        let s = stats(Dataset::D3Catalog);
        assert!(
            (40..=60).contains(&s.tag_count),
            "d3 tag count {} should be ≈51",
            s.tag_count
        );
        assert!(s.max_depth >= 7 && s.max_depth <= 9, "max depth {}", s.max_depth);
    }

    #[test]
    fn d4_shape() {
        let s = stats(Dataset::D4Treebank);
        assert!(s.max_depth >= 20, "treebank-like must be deep: {}", s.max_depth);
        assert!(s.max_recursion >= 5, "deep same-tag nesting: {}", s.max_recursion);
        // The 240 rare tags are injected with low probability, so the
        // observed vocabulary grows with document size; at the 20k-node
        // test scale a large fraction is enough (it converges to ~250 at
        // Table 1 scale).
        assert!(s.tag_count >= 60, "long tag tail: {}", s.tag_count);
    }

    #[test]
    fn d5_shape() {
        let s = stats(Dataset::D5Dblp);
        assert!(
            (25..=40).contains(&s.tag_count),
            "d5 tag count {} should be ≈35",
            s.tag_count
        );
        assert!(s.max_depth <= 6);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = blossom_xml::writer::to_string(&generate(Dataset::D5Dblp, 5_000, 1));
        let b = blossom_xml::writer::to_string(&generate(Dataset::D5Dblp, 5_000, 1));
        let c = blossom_xml::writer::to_string(&generate(Dataset::D5Dblp, 5_000, 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn appendix_queries_have_matches() {
        use blossom_core::{Engine, Strategy};
        // Spot-check that the appendix queries find something on each
        // generated dataset (selectivity > 0).
        let cases: &[(Dataset, &[&str])] = &[
            (Dataset::D1Recursive, &["//a//b4", "//a//c2/b1/c2/b1//c3", "//b1//c2//b1"]),
            (
                Dataset::D2Address,
                &[
                    "//addresses//street_address//name_of_state",
                    "//address[//name_of_state][//zip_code]//street_address",
                ],
            ),
            (
                Dataset::D3Catalog,
                &[
                    "//item/attributes//length",
                    "//publisher[//mailing_address]//street_address",
                    "//author[date_of_birth][//last_name]//street_address",
                ],
            ),
            (
                Dataset::D4Treebank,
                &["//VP//VP/NP//PP/PP", "//VP[VP]//VP/NP//NN", "//VP[//NP][//VB]//JJ"],
            ),
            (
                Dataset::D5Dblp,
                &[
                    "//phdthesis//author",
                    "//www[//url]",
                    "//proceedings[//editor][//year][//url]",
                ],
            ),
        ];
        for (ds, queries) in cases {
            let engine = Engine::new(generate(*ds, 30_000, 7));
            for q in *queries {
                let n = engine.eval_path_str(q, Strategy::Navigational).unwrap();
                assert!(!n.is_empty(), "{} query {q} matched nothing", ds.name());
            }
        }
    }
}
