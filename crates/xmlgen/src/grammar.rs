//! Grammar-driven document generation.
//!
//! The paper's synthetic dataset d1 is "generated from a recursive DTD".
//! This module provides that capability generically: a tiny probabilistic
//! DTD-like language describes per-tag productions, and [`Grammar::generate`]
//! samples documents from it. The built-in d1–d5 generators cover the
//! paper's corpora; `Grammar` lets downstream users define their own.
//!
//! # Rule language
//!
//! One rule per line: `tag -> item item ...` where each item is
//!
//! * `child` — always emit one `child` element,
//! * `child?0.4` — emit with probability 0.4,
//! * `child*3` — emit 0..=3 repetitions (uniform),
//! * `#text` — emit a short random text run,
//! * `#text?0.5` — text with probability 0.5.
//!
//! The first rule's tag is the document root. Recursion is depth-capped
//! by [`Grammar::max_depth`]; a tag without a rule is a leaf.
//!
//! ```
//! use blossom_xmlgen::grammar::Grammar;
//!
//! let g = Grammar::parse(
//!     "bib -> book*4\n\
//!      book -> title author?0.8 author?0.3\n\
//!      title -> #text\n\
//!      author -> #text",
//! ).unwrap();
//! let doc = g.generate(500, 42);
//! assert_eq!(doc.root_element().map(|r| doc.tag_name(r)).flatten(), Some("bib"));
//! ```

use crate::gen::Gen;
use blossom_xml::fxhash::FxHashMap;
use blossom_xml::Document;
use std::fmt;

/// One item on a production's right-hand side.
#[derive(Debug, Clone, PartialEq)]
enum Item {
    /// Child element with emission probability (1.0 = always).
    Child { tag: String, probability: f64 },
    /// Child element repeated 0..=max times.
    Repeat { tag: String, max: u32 },
    /// A text run with emission probability.
    Text { probability: f64 },
}

/// A parsed grammar: per-tag productions.
#[derive(Debug, Clone)]
pub struct Grammar {
    root: String,
    rules: FxHashMap<String, Vec<Item>>,
    max_depth: u16,
}

/// Grammar parse error with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grammar error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GrammarError {}

impl Grammar {
    /// Parse the rule language (see module docs). Default depth cap: 32.
    pub fn parse(spec: &str) -> Result<Grammar, GrammarError> {
        let mut rules = FxHashMap::default();
        let mut root = None;
        for (idx, raw) in spec.lines().enumerate() {
            let line = raw.trim();
            // Blank lines and `//` comments are skipped (`#` is taken by
            // the `#text` item).
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            let (lhs, rhs) = line.split_once("->").ok_or(GrammarError {
                line: idx + 1,
                message: "expected 'tag -> items'".into(),
            })?;
            let tag = lhs.trim().to_string();
            if tag.is_empty() {
                return Err(GrammarError { line: idx + 1, message: "empty tag".into() });
            }
            let mut items = Vec::new();
            for token in rhs.split_whitespace() {
                items.push(parse_item(token).map_err(|message| GrammarError {
                    line: idx + 1,
                    message,
                })?);
            }
            if root.is_none() {
                root = Some(tag.clone());
            }
            if rules.insert(tag.clone(), items).is_some() {
                return Err(GrammarError {
                    line: idx + 1,
                    message: format!("duplicate rule for {tag:?}"),
                });
            }
        }
        match root {
            Some(root) => Ok(Grammar { root, rules, max_depth: 32 }),
            None => Err(GrammarError { line: 0, message: "no rules".into() }),
        }
    }

    /// Cap element nesting (recursion guard). Root is depth 1.
    pub fn max_depth(mut self, depth: u16) -> Grammar {
        self.max_depth = depth.max(1);
        self
    }

    /// The root tag.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Sample a document with at least `target_nodes` nodes (the root
    /// production is repeated until the target is reached).
    pub fn generate(&self, target_nodes: usize, seed: u64) -> Document {
        let mut g = Gen::new(seed);
        g.open(&self.root);
        loop {
            if let Some(items) = self.rules.get(&self.root) {
                for item in items {
                    self.emit(&mut g, item, 2);
                }
            }
            if g.nodes() >= target_nodes {
                break;
            }
        }
        g.close();
        g.finish()
    }

    fn emit(&self, g: &mut Gen, item: &Item, depth: u16) {
        match item {
            Item::Text { probability } => {
                if g.chance(*probability) {
                    let t = g.phrase(2);
                    g.text(&t);
                }
            }
            Item::Child { tag, probability } => {
                if g.chance(*probability) {
                    self.emit_element(g, tag, depth);
                }
            }
            Item::Repeat { tag, max } => {
                let reps = g.int(0, *max);
                for _ in 0..reps {
                    self.emit_element(g, tag, depth);
                }
            }
        }
    }

    fn emit_element(&self, g: &mut Gen, tag: &str, depth: u16) {
        if depth > self.max_depth {
            return;
        }
        g.open(tag);
        if let Some(items) = self.rules.get(tag) {
            for item in items {
                self.emit(g, item, depth + 1);
            }
        } else {
            // Leaf: short text content.
            let t = g.phrase(1);
            g.text(&t);
        }
        g.close();
    }
}

fn parse_item(token: &str) -> Result<Item, String> {
    let (name, suffix) = match token.find(['?', '*']) {
        Some(i) => (&token[..i], Some((token.as_bytes()[i], &token[i + 1..]))),
        None => (token, None),
    };
    if name.is_empty() {
        return Err(format!("bad item {token:?}"));
    }
    let is_text = name == "#text";
    match suffix {
        None => Ok(if is_text {
            Item::Text { probability: 1.0 }
        } else {
            Item::Child { tag: name.to_string(), probability: 1.0 }
        }),
        Some((b'?', p)) => {
            let probability: f64 =
                p.parse().map_err(|_| format!("bad probability in {token:?}"))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!("probability out of range in {token:?}"));
            }
            Ok(if is_text {
                Item::Text { probability }
            } else {
                Item::Child { tag: name.to_string(), probability }
            })
        }
        Some((b'*', m)) => {
            if is_text {
                return Err("#text cannot repeat".into());
            }
            let max: u32 = m.parse().map_err(|_| format!("bad repeat in {token:?}"))?;
            Ok(Item::Repeat { tag: name.to_string(), max })
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_generate() {
        let g = Grammar::parse(
            "bib -> book*3\n\
             book -> title author?0.5\n\
             title -> #text",
        )
        .unwrap();
        let doc = g.generate(300, 1);
        let stats = doc.stats();
        assert!(stats.node_count >= 300);
        assert!(stats.tag_count <= 4);
        assert_eq!(g.root(), "bib");
    }

    #[test]
    fn recursive_grammar_respects_depth_cap() {
        let g = Grammar::parse("a -> a?0.95 b?0.5").unwrap().max_depth(6);
        let doc = g.generate(2_000, 3);
        let stats = doc.stats();
        assert!(stats.recursive);
        assert!(stats.max_depth <= 6, "depth {}", stats.max_depth);
    }

    #[test]
    fn leaves_get_text() {
        let g = Grammar::parse("r -> leaf*2").unwrap();
        let doc = g.generate(50, 9);
        let has_text = doc.stats().text_count > 0;
        assert!(has_text);
    }

    #[test]
    fn deterministic() {
        let g = Grammar::parse("r -> x*5 y?0.5").unwrap();
        let a = blossom_xml::writer::to_string(&g.generate(500, 7));
        let b = blossom_xml::writer::to_string(&g.generate(500, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn errors() {
        assert!(Grammar::parse("").is_err());
        assert!(Grammar::parse("a b c").is_err());
        assert!(Grammar::parse("a -> b?2.0").is_err());
        assert!(Grammar::parse("a -> #text*3").is_err());
        assert!(Grammar::parse("a -> b\na -> c").is_err());
        assert!(Grammar::parse(" -> b").is_err());
    }

    #[test]
    fn queries_work_on_grammar_output() {
        use blossom_core::{Engine, Strategy};
        let g = Grammar::parse(
            "bib -> book*4\n\
             book -> title author?0.7 price?0.5\n\
             title -> #text\n\
             author -> #text\n\
             price -> #text",
        )
        .unwrap();
        let engine = Engine::new(g.generate(2_000, 11));
        let with_author = engine
            .eval_path_str("//book[author]/title", Strategy::Auto)
            .unwrap();
        let all = engine.eval_path_str("//book/title", Strategy::Auto).unwrap();
        assert!(with_author.len() <= all.len());
        assert!(!all.is_empty());
    }
}
