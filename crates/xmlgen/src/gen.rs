//! Shared generator infrastructure: a seeded random tree builder that
//! tracks node counts so generators can hit a target size.

use crate::rng::SplitMix;
use blossom_xml::{Document, TreeBuilder};

/// Wraps a [`TreeBuilder`] with an RNG and node accounting.
pub struct Gen {
    builder: TreeBuilder,
    rng: SplitMix,
    nodes: usize,
    depth: u16,
    max_depth_seen: u16,
}

const WORDS: &[&str] = &[
    "maximum", "security", "computer", "programming", "terrorist", "hunter", "knuth", "donald",
    "data", "web", "xml", "query", "pattern", "tree", "blossom", "join", "stack", "stream",
    "index", "node", "anchor", "region", "label", "structural", "holistic", "twig", "match",
];

impl Gen {
    /// New generator with a fixed seed (generation is deterministic).
    pub fn new(seed: u64) -> Gen {
        Gen {
            builder: Document::builder(),
            rng: SplitMix::new(seed),
            nodes: 0,
            depth: 0,
            max_depth_seen: 0,
        }
    }

    /// Nodes (elements + text) emitted so far.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Current element depth.
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Deepest element emitted.
    pub fn max_depth_seen(&self) -> u16 {
        self.max_depth_seen
    }

    /// Open an element.
    pub fn open(&mut self, tag: &str) {
        self.builder.start_element(tag);
        self.nodes += 1;
        self.depth += 1;
        self.max_depth_seen = self.max_depth_seen.max(self.depth);
    }

    /// Close the current element.
    pub fn close(&mut self) {
        self.builder.end_element();
        self.depth -= 1;
    }

    /// Emit a leaf element containing `text`.
    pub fn leaf(&mut self, tag: &str, text: &str) {
        self.open(tag);
        self.text(text);
        self.close();
    }

    /// Emit a text node.
    pub fn text(&mut self, text: &str) {
        self.builder.text(text);
        self.nodes += 1;
    }

    /// Add an attribute to the open element.
    pub fn attr(&mut self, name: &str, value: &str) {
        self.builder.attribute(name, value);
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn int(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_u32(lo, hi)
    }

    /// Pick an element uniformly.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.gen_index(items.len())]
    }

    /// A short pseudo-random phrase.
    pub fn phrase(&mut self, words: usize) -> String {
        let mut out = String::new();
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(WORDS[self.rng.gen_index(WORDS.len())]);
        }
        out
    }

    /// A pseudo-random number rendered as text.
    pub fn number(&mut self, lo: u32, hi: u32) -> String {
        self.int(lo, hi).to_string()
    }

    /// Finish and return the document.
    pub fn finish(self) -> Document {
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let build = |seed| {
            let mut g = Gen::new(seed);
            g.open("r");
            for _ in 0..10 {
                let n = g.int(0, 9).to_string();
                g.leaf("x", &n);
            }
            g.close();
            blossom_xml::writer::to_string(&g.finish())
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn node_accounting() {
        let mut g = Gen::new(0);
        g.open("r");
        g.leaf("a", "x");
        g.close();
        // r, a, text.
        assert_eq!(g.nodes(), 3);
        assert_eq!(g.max_depth_seen(), 2);
        let doc = g.finish();
        assert_eq!(doc.stats().node_count, 3);
    }
}
