//! Seeded mutation-sequence generator for the mutation differential
//! fuzzer.
//!
//! Sequences are generated *apply-aware*: each step is drawn against the
//! document produced by the previous steps (Dewey keys address the
//! current snapshot, not the original), so every generated script is
//! valid by construction — the differential harness then checks that the
//! engine's incremental splice and the oracle's rebuild-from-scratch
//! agree on what it means. Occasionally (~4% of steps) a deliberately
//! *invalid* mutation is emitted instead, so the fuzzer also covers the
//! "both sides must reject" path.

use crate::rng::SplitMix;
use blossom_xml::mutate::{self, Mutation};
use blossom_xml::{Document, NodeId};

/// Tag pool for generated fragments: a mix of tags likely present in the
/// datasets (exercising posting-list splices of hot lists) and fresh
/// ones (exercising symbol interning and new lists).
const FRAG_TAGS: [&str; 8] = ["item", "name", "title", "entry", "muta", "mutb", "mutc", "mutd"];
const FRAG_TEXTS: [&str; 6] = ["x", "42", "alpha", "b b", "zz top", "7"];

/// Generate `count` mutations valid against `doc` applied in order.
/// Deterministic in `(doc, count, seed)`.
pub fn random_mutations(doc: &Document, count: usize, seed: u64) -> Vec<Mutation> {
    let mut rng = SplitMix::new(seed ^ 0x3141_5926_5358_9793);
    let mut out = Vec::with_capacity(count);
    let mut cur: Option<Document> = None;
    for _ in 0..count {
        let base = cur.as_ref().unwrap_or(doc);
        let m = random_step(base, &mut rng);
        if let Ok((next, _)) = mutate::apply(base, &m) {
            cur = Some(next);
            out.push(m);
        } else {
            // An intentionally invalid step: emit it (the harness checks
            // both sides reject) but keep generating from the same doc.
            out.push(m);
            break;
        }
    }
    out
}

/// One mutation against the current snapshot.
fn random_step(doc: &Document, rng: &mut SplitMix) -> Mutation {
    // A small slice of deliberately invalid scripts.
    if rng.gen_bool(0.04) {
        return invalid_step(doc, rng);
    }
    let elements: Vec<NodeId> = doc.elements().collect();
    let non_root: Vec<NodeId> =
        elements.iter().copied().filter(|&n| doc.parent(n) != Some(NodeId::DOCUMENT)).collect();
    let roll = rng.next_f64();
    if roll < 0.45 || non_root.is_empty() {
        // Insert under a random element at a random position.
        let p = elements[rng.gen_index(elements.len())];
        let arity = doc.children(p).count();
        let pos = rng.gen_usize(0, arity) as u32;
        Mutation::Insert {
            parent: mutate::dewey_of(doc, p),
            pos,
            fragment: random_fragment(rng),
        }
    } else if roll < 0.75 {
        let t = non_root[rng.gen_index(non_root.len())];
        Mutation::Delete { target: mutate::dewey_of(doc, t) }
    } else {
        // Replace; occasionally the root element itself.
        let t = if rng.gen_bool(0.05) {
            doc.root_element().expect("generated docs have a root")
        } else {
            non_root[rng.gen_index(non_root.len())]
        };
        Mutation::Replace { target: mutate::dewey_of(doc, t), fragment: random_fragment(rng) }
    }
}

/// A mutation that must be rejected: out-of-range Dewey, root delete,
/// or a malformed fragment.
fn invalid_step(doc: &Document, rng: &mut SplitMix) -> Mutation {
    match rng.gen_index(3) {
        0 => Mutation::Delete {
            target: blossom_xml::Dewey::root().child(rng.gen_u32(50, 200)),
        },
        1 => Mutation::Delete { target: blossom_xml::Dewey::root() },
        _ => {
            let elements: Vec<NodeId> = doc.elements().collect();
            let p = elements[rng.gen_index(elements.len())];
            Mutation::Insert {
                parent: mutate::dewey_of(doc, p),
                pos: 0,
                fragment: "<broken".to_string(),
            }
        }
    }
}

/// A small single-line element fragment: 1–6 nodes, depth ≤ 3, with a
/// sprinkle of attributes and text.
fn random_fragment(rng: &mut SplitMix) -> String {
    let mut out = String::new();
    write_random_elem(rng, 0, &mut out);
    out
}

fn write_random_elem(rng: &mut SplitMix, depth: usize, out: &mut String) {
    let tag = FRAG_TAGS[rng.gen_index(FRAG_TAGS.len())];
    out.push('<');
    out.push_str(tag);
    if rng.gen_bool(0.3) {
        out.push_str(" k=\"");
        out.push_str(FRAG_TEXTS[rng.gen_index(FRAG_TEXTS.len())]);
        out.push('"');
    }
    let kids = if depth >= 2 { 0 } else { rng.gen_index(3) };
    if kids == 0 && !rng.gen_bool(0.5) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if kids == 0 || rng.gen_bool(0.4) {
        out.push_str(FRAG_TEXTS[rng.gen_index(FRAG_TEXTS.len())]);
    }
    for _ in 0..kids {
        write_random_elem(rng, depth + 1, out);
    }
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Dataset};

    #[test]
    fn deterministic_and_mostly_applicable() {
        let doc = generate(Dataset::D3Catalog, 120, 7);
        let a = random_mutations(&doc, 8, 99);
        let b = random_mutations(&doc, 8, 99);
        assert_eq!(a, b, "same seed, same script");
        assert!(!a.is_empty());
        let c = random_mutations(&doc, 8, 100);
        assert_ne!(a, c, "different seed, different script");
    }

    #[test]
    fn valid_prefix_applies_cleanly() {
        for seed in 0..20 {
            let doc = generate(Dataset::D1Recursive, 80, seed);
            let muts = random_mutations(&doc, 6, seed * 31 + 1);
            // Every mutation but possibly the last (an intentional
            // invalid) must apply in sequence.
            let mut cur = None;
            for (i, m) in muts.iter().enumerate() {
                let base: &Document = cur.as_ref().unwrap_or(&doc);
                match blossom_xml::mutate::apply(base, m) {
                    Ok((next, _)) => cur = Some(next),
                    Err(_) => {
                        assert_eq!(i, muts.len() - 1, "only the final step may be invalid");
                    }
                }
            }
        }
    }
}
