#![warn(missing_docs)]

//! Seeded synthetic XML dataset generators.
//!
//! Reproduces the *shape* of the paper's five evaluation corpora
//! (Table 1): recursiveness, depth profile, tag-vocabulary size, and the
//! tag chains probed by the Appendix A queries — at configurable scale.
//!
//! ```
//! use blossom_xmlgen::{generate, Dataset};
//!
//! let doc = generate(Dataset::D2Address, 5_000, 42);
//! let stats = doc.stats();
//! assert!(!stats.recursive);
//! assert_eq!(stats.tag_count, 7);
//! ```

pub mod datasets;
pub mod gen;
pub mod grammar;
pub mod mutgen;
pub mod querygen;
pub mod rng;

pub use datasets::{generate, generate_scaled, Dataset};
pub use gen::Gen;
pub use grammar::Grammar;
pub use mutgen::random_mutations;
pub use querygen::{
    random_flwor_query, random_path_query_full, random_query, random_query_full, QueryGenConfig,
};
pub use rng::SplitMix;
