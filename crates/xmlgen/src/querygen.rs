//! Random twig-query generation over a document's actual vocabulary.
//!
//! For fuzzing and benchmarking, queries must have a chance to match:
//! this generator samples tag names from the document's own symbol table
//! and builds random chain/branching path expressions in the Table 2
//! style (`//a[//b]/c[//d]//e`). Selectivity is whatever it is — the
//! point is coverage of the operators, not a calibrated workload.

use crate::rng::SplitMix;
use blossom_xml::Document;

/// Configuration for [`random_query`].
#[derive(Debug, Clone, Copy)]
pub struct QueryGenConfig {
    /// Maximum spine length (number of steps on the main path).
    pub max_spine: usize,
    /// Maximum predicates per step.
    pub max_predicates: usize,
    /// Probability that a step uses `//` rather than `/`.
    pub descendant_probability: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig { max_spine: 4, max_predicates: 2, descendant_probability: 0.6 }
    }
}

/// Generate a random path query whose tag names all occur in `doc`.
/// Deterministic in `seed`.
pub fn random_query(doc: &Document, config: QueryGenConfig, seed: u64) -> String {
    let mut rng = SplitMix::new(seed);
    let tags: Vec<&str> = doc.symbols().iter().map(|(_, name)| name).collect();
    debug_assert!(!tags.is_empty(), "document has at least a root tag");
    let pick = |rng: &mut SplitMix| tags[rng.gen_index(tags.len())].to_string();

    let spine = rng.gen_usize(1, config.max_spine.max(1));
    let mut out = String::new();
    for _ in 0..spine {
        if rng.gen_bool(config.descendant_probability) {
            out.push_str("//");
        } else if out.is_empty() {
            // A relative first step would be context-dependent; root it.
            out.push_str("//");
        } else {
            out.push('/');
        }
        let tag = pick(&mut rng);
        out.push_str(&tag);
        let n_preds = rng.gen_usize(0, config.max_predicates);
        for _ in 0..n_preds {
            out.push('[');
            if rng.gen_bool(0.5) {
                out.push_str("//");
            }
            let ptag = pick(&mut rng);
            out.push_str(&ptag);
            out.push(']');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Dataset};

    #[test]
    fn generated_queries_parse_and_use_document_tags() {
        let doc = generate(Dataset::D3Catalog, 3_000, 5);
        for seed in 0..50 {
            let q = random_query(&doc, QueryGenConfig::default(), seed);
            let parsed = blossom_xpath::parse_path(&q)
                .unwrap_or_else(|e| panic!("{q}: {e}"));
            // Every name test resolves in the document's symbol table.
            for step in &parsed.steps {
                if let blossom_xpath::NodeTest::Name(n) = &step.test {
                    assert!(doc.sym(n).is_some(), "unknown tag {n} in {q}");
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let doc = generate(Dataset::D5Dblp, 2_000, 1);
        let a = random_query(&doc, QueryGenConfig::default(), 7);
        let b = random_query(&doc, QueryGenConfig::default(), 7);
        assert_eq!(a, b);
    }
}
