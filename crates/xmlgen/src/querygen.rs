//! Random twig-query generation over a document's actual vocabulary.
//!
//! For fuzzing and benchmarking, queries must have a chance to match:
//! this generator samples tag names from the document's own symbol table
//! and builds random chain/branching path expressions in the Table 2
//! style (`//a[//b]/c[//d]//e`). Selectivity is whatever it is — the
//! point is coverage of the operators, not a calibrated workload.

use crate::rng::SplitMix;
use blossom_xml::Document;

/// Configuration for [`random_query`].
#[derive(Debug, Clone, Copy)]
pub struct QueryGenConfig {
    /// Maximum spine length (number of steps on the main path).
    pub max_spine: usize,
    /// Maximum predicates per step.
    pub max_predicates: usize,
    /// Probability that a step uses `//` rather than `/`.
    pub descendant_probability: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig { max_spine: 4, max_predicates: 2, descendant_probability: 0.6 }
    }
}

/// Generate a random path query whose tag names all occur in `doc`.
/// Deterministic in `seed`.
pub fn random_query(doc: &Document, config: QueryGenConfig, seed: u64) -> String {
    let mut rng = SplitMix::new(seed);
    let tags: Vec<&str> = doc.symbols().iter().map(|(_, name)| name).collect();
    debug_assert!(!tags.is_empty(), "document has at least a root tag");
    let pick = |rng: &mut SplitMix| tags[rng.gen_index(tags.len())].to_string();

    let spine = rng.gen_usize(1, config.max_spine.max(1));
    let mut out = String::new();
    for _ in 0..spine {
        if rng.gen_bool(config.descendant_probability) {
            out.push_str("//");
        } else if out.is_empty() {
            // A relative first step would be context-dependent; root it.
            out.push_str("//");
        } else {
            out.push('/');
        }
        let tag = pick(&mut rng);
        out.push_str(&tag);
        let n_preds = rng.gen_usize(0, config.max_predicates);
        for _ in 0..n_preds {
            out.push('[');
            if rng.gen_bool(0.5) {
                out.push_str("//");
            }
            let ptag = pick(&mut rng);
            out.push_str(&ptag);
            out.push(']');
        }
    }
    out
}

/// The sampled vocabulary full-coverage generation draws from.
struct Vocab {
    tags: Vec<String>,
    attrs: Vec<String>,
    attr_values: Vec<String>,
    texts: Vec<String>,
    numbers: Vec<String>,
}

/// A literal is only quotable if it survives a `"..."` token unchanged.
fn quotable(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 16
        && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, ' ' | '.' | ',' | '-' | '_'))
}

fn sample_vocab(doc: &Document) -> Vocab {
    use blossom_xml::{NodeId, NodeKind};
    let mut v = Vocab {
        tags: Vec::new(),
        attrs: Vec::new(),
        attr_values: Vec::new(),
        texts: Vec::new(),
        numbers: Vec::new(),
    };
    let mut seen_tags = std::collections::BTreeSet::new();
    let mut seen_attrs = std::collections::BTreeSet::new();
    for i in 0..doc.len() as u32 {
        let n = NodeId(i);
        match doc.kind(n) {
            NodeKind::Element(sym) => {
                let tag = doc.symbols().name(sym).to_string();
                if seen_tags.insert(tag.clone()) {
                    v.tags.push(tag);
                }
                for (a, val) in doc.attributes(n) {
                    let name = doc.symbols().name(*a).to_string();
                    if seen_attrs.insert(name.clone()) {
                        v.attrs.push(name);
                    }
                    if v.attr_values.len() < 64 && quotable(val) {
                        v.attr_values.push(val.to_string());
                    }
                }
            }
            NodeKind::Text => {
                if let Some(t) = doc.text(n) {
                    let t = t.trim();
                    if t.parse::<f64>().is_ok() {
                        if v.numbers.len() < 64 {
                            v.numbers.push(t.to_string());
                        }
                    } else if v.texts.len() < 64 && quotable(t) {
                        v.texts.push(t.to_string());
                    }
                }
            }
            NodeKind::Document => {}
        }
    }
    v
}

impl Vocab {
    fn tag(&self, rng: &mut SplitMix) -> &str {
        &self.tags[rng.gen_index(self.tags.len())]
    }

    /// A random string literal, preferring values that occur in the
    /// document so comparisons have a chance to hit.
    fn str_lit(&self, rng: &mut SplitMix) -> String {
        if !self.texts.is_empty() && rng.gen_bool(0.7) {
            self.texts[rng.gen_index(self.texts.len())].clone()
        } else if !self.attr_values.is_empty() && rng.gen_bool(0.5) {
            self.attr_values[rng.gen_index(self.attr_values.len())].clone()
        } else {
            format!("w{}", rng.gen_u32(0, 9))
        }
    }

    fn num_lit(&self, rng: &mut SplitMix) -> String {
        if !self.numbers.is_empty() && rng.gen_bool(0.6) {
            self.numbers[rng.gen_index(self.numbers.len())].clone()
        } else {
            rng.gen_u32(0, 2000).to_string()
        }
    }
}

/// One predicate, recursion-bounded by `depth`.
fn gen_predicate(v: &Vocab, rng: &mut SplitMix, depth: usize) -> String {
    let has_attrs = !v.attrs.is_empty();
    loop {
        match rng.gen_index(if depth == 0 { 10 } else { 7 }) {
            // Existence of a relative path.
            0 => return v.tag(rng).to_string(),
            1 => return format!("//{}", v.tag(rng)),
            2 => return format!("{}/{}", v.tag(rng), v.tag(rng)),
            // Value comparisons.
            3 => {
                let op = *["=", "!=", "<", "<=", ">", ">="].get(rng.gen_index(6)).unwrap();
                return if rng.gen_bool(0.5) {
                    format!("{} {} \"{}\"", v.tag(rng), op, v.str_lit(rng))
                } else {
                    format!("{} {} {}", v.tag(rng), op, v.num_lit(rng))
                };
            }
            4 => {
                // Self-value test: `. = lit`.
                let op = *["=", "!=", "<", ">"].get(rng.gen_index(4)).unwrap();
                return if rng.gen_bool(0.5) {
                    format!(". {} \"{}\"", op, v.str_lit(rng))
                } else {
                    format!(". {} {}", op, v.num_lit(rng))
                };
            }
            // Attribute existence / comparison.
            5 if has_attrs => {
                let a = &v.attrs[rng.gen_index(v.attrs.len())];
                return if rng.gen_bool(0.5) {
                    format!("@{a}")
                } else {
                    format!("@{} = \"{}\"", a, v.str_lit(rng))
                };
            }
            // Position.
            6 => return rng.gen_u32(1, 3).to_string(),
            // Boolean structure (only at depth 0 to bound size).
            7 => return format!("not({})", gen_predicate(v, rng, depth + 1)),
            8 => {
                return format!(
                    "{} and {}",
                    gen_predicate(v, rng, depth + 1),
                    gen_predicate(v, rng, depth + 1)
                )
            }
            9 => {
                return format!(
                    "{} or {}",
                    gen_predicate(v, rng, depth + 1),
                    gen_predicate(v, rng, depth + 1)
                )
            }
            _ => continue, // attr branch rolled without attrs: reroll
        }
    }
}

/// Generate a path query exercising the full accepted subset: all seven
/// axes, wildcard and `text()` node tests, positional / value /
/// attribute / boolean predicates. Deterministic in `seed`.
pub fn random_path_query_full(doc: &Document, seed: u64) -> String {
    let mut rng = SplitMix::new(seed);
    let v = sample_vocab(doc);
    let mut out = String::new();
    let spine = rng.gen_usize(1, 4);
    for i in 0..spine {
        let last = i + 1 == spine;
        // Separator / axis.
        let explicit_axis = if i == 0 {
            out.push_str(if rng.gen_bool(0.85) { "//" } else { "/" });
            None
        } else if rng.gen_bool(0.6) {
            out.push_str("//");
            None
        } else {
            out.push('/');
            if rng.gen_bool(0.25) {
                let axis = *[
                    "following-sibling",
                    "preceding-sibling",
                    "following",
                    "preceding",
                    "self",
                ]
                .get(rng.gen_index(5))
                .unwrap();
                out.push_str(axis);
                out.push_str("::");
                Some(axis)
            } else {
                None
            }
        };
        // Node test. `text()` only as the final step, and never after an
        // explicit sibling/global axis (legal, but overwhelmingly empty).
        if last && explicit_axis.is_none() && rng.gen_bool(0.1) {
            out.push_str("text()");
            continue;
        }
        if rng.gen_bool(0.08) {
            out.push('*');
        } else {
            out.push_str(v.tag(&mut rng));
        }
        for _ in 0..rng.gen_usize(0, 2) {
            if rng.gen_bool(0.55) {
                break;
            }
            out.push('[');
            out.push_str(&gen_predicate(&v, &mut rng, 0));
            out.push(']');
        }
    }
    out
}

/// A `$var/...` path for FLWOR clauses.
fn var_path(v: &Vocab, rng: &mut SplitMix, vars: &[String]) -> String {
    let var = &vars[rng.gen_index(vars.len())];
    match rng.gen_index(4) {
        0 => format!("${var}"),
        1 => format!("${var}//{}", v.tag(rng)),
        _ => format!("${var}/{}", v.tag(rng)),
    }
}

fn gen_where_atom(v: &Vocab, rng: &mut SplitMix, vars: &[String]) -> String {
    match rng.gen_index(8) {
        0 => {
            let op = *["=", "!=", "<", "<=", ">", ">="].get(rng.gen_index(6)).unwrap();
            if rng.gen_bool(0.5) {
                format!("{} {} \"{}\"", var_path(v, rng, vars), op, v.str_lit(rng))
            } else {
                format!("{} {} {}", var_path(v, rng, vars), op, v.num_lit(rng))
            }
        }
        1 => format!("{} = {}", var_path(v, rng, vars), var_path(v, rng, vars)),
        2 if vars.len() >= 2 => {
            let a = &vars[rng.gen_index(vars.len())];
            let b = &vars[rng.gen_index(vars.len())];
            let op = if rng.gen_bool(0.5) { "<<" } else { ">>" };
            format!("${a} {op} ${b}")
        }
        3 if vars.len() >= 2 => {
            let a = &vars[rng.gen_index(vars.len())];
            let b = &vars[rng.gen_index(vars.len())];
            let op = if rng.gen_bool(0.5) { "is" } else { "isnot" };
            format!("${a} {op} ${b}")
        }
        4 => format!(
            "deep-equal({}, {})",
            var_path(v, rng, vars),
            var_path(v, rng, vars)
        ),
        5 => {
            let op = *["=", "<", ">="].get(rng.gen_index(3)).unwrap();
            format!("count({}) {} {}", var_path(v, rng, vars), op, rng.gen_u32(0, 3))
        }
        6 => format!("exists({})", var_path(v, rng, vars)),
        7 => format!("empty({})", var_path(v, rng, vars)),
        _ => format!("exists({})", var_path(v, rng, vars)),
    }
}

/// Generate a FLWOR query over the document's vocabulary: 1–3 `for`/`let`
/// bindings (later ones chained off earlier variables), an optional
/// `where` drawing on every comparison form the grammar accepts, an
/// optional multi-key `order by`, and a constructor or path `return`.
/// Deterministic in `seed`.
pub fn random_flwor_query(doc: &Document, seed: u64) -> String {
    let mut rng = SplitMix::new(seed);
    let v = sample_vocab(doc);
    let mut vars: Vec<String> = Vec::new();
    let mut out = String::new();

    let n_bind = rng.gen_usize(1, 3);
    for i in 0..n_bind {
        let var = format!("v{i}");
        if i == 0 {
            let mut path = format!("//{}", v.tag(&mut rng));
            if rng.gen_bool(0.3) {
                path.push('[');
                path.push_str(&gen_predicate(&v, &mut rng, 1));
                path.push(']');
            }
            out.push_str(&format!("for ${var} in {path} "));
        } else {
            let kind = if rng.gen_bool(0.7) { "for" } else { "let" };
            let eq = if kind == "let" { ":= " } else { "in " };
            let path = match rng.gen_index(4) {
                0 => format!("//{}", v.tag(&mut rng)),
                1 => format!("${}//{}", vars[rng.gen_index(vars.len())], v.tag(&mut rng)),
                _ => format!("${}/{}", vars[rng.gen_index(vars.len())], v.tag(&mut rng)),
            };
            out.push_str(&format!("{kind} ${var} {eq}{path} "));
        }
        vars.push(var);
    }

    if rng.gen_bool(0.55) {
        out.push_str("where ");
        let mut cond = gen_where_atom(&v, &mut rng, &vars);
        if rng.gen_bool(0.35) {
            let joiner = if rng.gen_bool(0.6) { "and" } else { "or" };
            cond = format!("{cond} {joiner} {}", gen_where_atom(&v, &mut rng, &vars));
        }
        if rng.gen_bool(0.15) {
            cond = format!("not({cond})");
        }
        out.push_str(&cond);
        out.push(' ');
    }

    if rng.gen_bool(0.4) {
        out.push_str("order by ");
        out.push_str(&var_path(&v, &mut rng, &vars));
        if rng.gen_bool(0.4) {
            out.push_str(" descending");
        }
        if rng.gen_bool(0.3) {
            out.push_str(", ");
            out.push_str(&var_path(&v, &mut rng, &vars));
        }
        out.push(' ');
    }

    out.push_str("return ");
    match rng.gen_index(4) {
        0 => out.push_str(&var_path(&v, &mut rng, &vars)),
        1 => out.push_str(&format!(
            "<out>{{{}}}</out>",
            var_path(&v, &mut rng, &vars)
        )),
        2 => out.push_str(&format!(
            "<out k=\"{}\">{{{}}}<sep/>{{{}}}</out>",
            rng.gen_u32(0, 9),
            var_path(&v, &mut rng, &vars),
            var_path(&v, &mut rng, &vars)
        )),
        _ => {
            // Correlated nested FLWOR in the return clause.
            let inner_tag = v.tag(&mut rng).to_string();
            out.push_str(&format!(
                "<out>{{for $w in ${}//{} return <i>{{$w}}</i>}}</out>",
                vars[rng.gen_index(vars.len())],
                inner_tag
            ));
        }
    }
    out
}

/// Generate either flavour — the differential driver's entry point.
/// Roughly 55% paths, 45% FLWOR. Deterministic in `seed`.
pub fn random_query_full(doc: &Document, seed: u64) -> String {
    let mut rng = SplitMix::new(seed);
    // Independent streams: derive sub-seeds so path/flwor shapes do not
    // correlate with the flavour coin.
    let sub = rng.next_u64();
    if rng.gen_bool(0.55) {
        random_path_query_full(doc, sub)
    } else {
        random_flwor_query(doc, sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Dataset};

    #[test]
    fn generated_queries_parse_and_use_document_tags() {
        let doc = generate(Dataset::D3Catalog, 3_000, 5);
        for seed in 0..50 {
            let q = random_query(&doc, QueryGenConfig::default(), seed);
            let parsed = blossom_xpath::parse_path(&q)
                .unwrap_or_else(|e| panic!("{q}: {e}"));
            // Every name test resolves in the document's symbol table.
            for step in &parsed.steps {
                if let blossom_xpath::NodeTest::Name(n) = &step.test {
                    assert!(doc.sym(n).is_some(), "unknown tag {n} in {q}");
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let doc = generate(Dataset::D5Dblp, 2_000, 1);
        let a = random_query(&doc, QueryGenConfig::default(), 7);
        let b = random_query(&doc, QueryGenConfig::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn full_path_queries_parse() {
        for ds in [Dataset::D1Recursive, Dataset::D2Address, Dataset::D4Treebank] {
            let doc = generate(ds, 2_000, 11);
            for seed in 0..200 {
                let q = random_path_query_full(&doc, seed);
                blossom_xpath::parse_path(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            }
        }
    }

    #[test]
    fn full_flwor_queries_parse() {
        for ds in [Dataset::D2Address, Dataset::D3Catalog, Dataset::D5Dblp] {
            let doc = generate(ds, 2_000, 13);
            for seed in 0..200 {
                let q = random_flwor_query(&doc, seed);
                blossom_flwor::parse_query(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            }
        }
    }

    #[test]
    fn full_generator_deterministic() {
        let doc = generate(Dataset::D3Catalog, 2_000, 3);
        for seed in 0..32 {
            assert_eq!(random_query_full(&doc, seed), random_query_full(&doc, seed));
        }
    }
}
