//! A small deterministic PRNG (no external crates).
//!
//! The generators only need reproducible, well-mixed draws — not
//! cryptographic quality — so a SplitMix64 stream is plenty. The seed is
//! pre-mixed with the same Fx multiply-xor hash the rest of the codebase
//! uses ([`blossom_xml::fxhash`]), so nearby seeds (0, 1, 2, …) land in
//! unrelated parts of the stream.

use std::hash::Hasher;

/// SplitMix64: one `u64` of state, advanced by a Weyl increment and
/// finalized with two xor-shift-multiply rounds (Steele et al.,
/// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Create a generator; the seed is Fx-hashed first so small seeds
    /// diverge immediately. Deterministic: same seed, same stream.
    pub fn new(seed: u64) -> SplitMix {
        let mut h = blossom_xml::fxhash::FxHasher::default();
        h.write_u64(seed);
        h.write_u64(0x9e37_79b9_7f4a_7c15);
        SplitMix { state: h.finish() }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index over an empty range");
        // Multiply-shift rejection-free mapping; the bias is < 2^-64 * n,
        // irrelevant for synthetic data generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn gen_u32(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        lo + self.gen_index((hi - lo) as usize + 1) as u32
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.gen_index(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = SplitMix::new(7);
        let mut b = SplitMix::new(7);
        let mut c = SplitMix::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SplitMix::new(42);
        for _ in 0..1000 {
            let v = rng.gen_u32(3, 9);
            assert!((3..=9).contains(&v));
            let i = rng.gen_index(5);
            assert!(i < 5);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix::new(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn draws_cover_the_range() {
        let mut rng = SplitMix::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
