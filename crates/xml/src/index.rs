//! Tag-name indexes with skip-enabled posting lists.
//!
//! Holistic twig joins (TwigStack) consume, for each pattern-tree node, a
//! stream of document elements with that tag, sorted by document order.
//! [`TagIndex`] materializes those streams as [`PostingList`]s: per-symbol
//! parallel arrays of node ids plus their inline region labels
//! `(start, end, level)`. Because arena ids are preorder positions, each
//! list is sorted by `start` by construction.
//!
//! Carrying the region labels inline matters twice over: operators read
//! `end`/`level` from the contiguous posting arrays instead of chasing
//! into the node arena per element, and the lists support *galloping*
//! (exponential + binary search) [`PostingList::skip_to`] so a join can
//! leap over whole irrelevant stream segments — the XB-tree skip trick —
//! rather than advancing one element at a time. `end` values are not
//! monotone under nesting, so end-bound skips ([`PostingList::skip_to_end`])
//! ride a per-block max-end summary instead of a plain binary search.

use crate::colsrc::Col;
use crate::document::{Document, NodeId};
use crate::label::Region;
use crate::symbol::Sym;

/// Elements in a posting block share one max-`end` summary entry; a block
/// whose summary is below the skip target is skipped without touching it.
const BLOCK_SHIFT: usize = 6;
const BLOCK_SIZE: usize = 1 << BLOCK_SHIFT;

/// The empty posting list returned for symbols with no elements.
static EMPTY: PostingList = PostingList {
    starts: Col::Owned(Vec::new()),
    ends: Col::Owned(Vec::new()),
    levels: Col::Owned(Vec::new()),
    block_max_end: Col::Owned(Vec::new()),
};

/// A document-ordered stream of elements with inline region labels and
/// sub-linear skip primitives. Like [`Document`] columns, the parallel
/// arrays are [`Col`]s: heap-owned when built from a document, zero-copy
/// windows into the posting sections of a mapped snapshot otherwise.
#[derive(Debug, Clone)]
pub struct PostingList {
    /// Element ids (= region `start` coordinates), strictly increasing.
    starts: Col<NodeId>,
    /// Region `end` (last descendant id) per element.
    ends: Col<u32>,
    /// Region `level` per element.
    levels: Col<u16>,
    /// Max of `ends` per [`BLOCK_SIZE`] chunk, for end-bound skips.
    block_max_end: Col<u32>,
}

/// Growable triple of posting columns; wrapped into a [`PostingList`]
/// (computing the block summaries) once fully populated.
#[derive(Default, Clone)]
struct ListBuilder {
    starts: Vec<NodeId>,
    ends: Vec<u32>,
    levels: Vec<u16>,
}

impl ListBuilder {
    fn push(&mut self, n: NodeId, end: u32, level: u16) {
        debug_assert!(
            self.starts.last().is_none_or(|&p| p < n),
            "posting ids must be strictly increasing"
        );
        self.starts.push(n);
        self.ends.push(end);
        self.levels.push(level);
    }

    fn finish(self) -> PostingList {
        PostingList::from_vecs(self.starts, self.ends, self.levels)
    }
}

impl PostingList {
    /// Build a list from an id stream, reading labels from the document's
    /// region columns. The ids must be strictly increasing.
    pub fn from_nodes(doc: &Document, nodes: impl IntoIterator<Item = NodeId>) -> PostingList {
        let end_col = doc.last_desc_column();
        let level_col = doc.level_column();
        let mut b = ListBuilder::default();
        for n in nodes {
            b.push(n, end_col[n.index()], level_col[n.index()]);
        }
        b.finish()
    }

    /// Wrap owned parallel columns, computing the block summaries.
    fn from_vecs(starts: Vec<NodeId>, ends: Vec<u32>, levels: Vec<u16>) -> PostingList {
        let block_max_end: Vec<u32> = ends
            .chunks(BLOCK_SIZE)
            .map(|chunk| chunk.iter().copied().max().unwrap_or(0))
            .collect();
        PostingList {
            starts: Col::Owned(starts),
            ends: Col::Owned(ends),
            levels: Col::Owned(levels),
            block_max_end: Col::Owned(block_max_end),
        }
    }

    /// Reassemble a posting list from raw columns cut out of a snapshot,
    /// validating what navigation safety requires: parallel columns of
    /// equal length, ids strictly increasing and below `n_nodes` (so a
    /// posting can always index the document's columns), and a block
    /// summary entry per [`BLOCK_SIZE`] chunk (so end-skips stay in
    /// bounds). Summary *values* only steer skips and cannot cause
    /// out-of-bounds access; section checksums vouch for them.
    pub fn from_raw_parts(
        starts: Col<NodeId>,
        ends: Col<u32>,
        levels: Col<u16>,
        block_max_end: Col<u32>,
        n_nodes: u32,
    ) -> Result<PostingList, String> {
        let len = starts.len();
        if ends.len() != len || levels.len() != len {
            return Err("posting columns have mismatched lengths".into());
        }
        if block_max_end.len() != len.div_ceil(BLOCK_SIZE) {
            return Err("posting block summary has the wrong length".into());
        }
        for w in starts.windows(2) {
            if w[0] >= w[1] {
                return Err("posting ids must be strictly increasing".into());
            }
        }
        if let Some(&last) = starts.last() {
            if last.0 >= n_nodes {
                return Err("posting id out of document range".into());
            }
        }
        Ok(PostingList { starts, ends, levels, block_max_end })
    }

    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when no element carries this tag.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The id stream, in document order.
    #[inline]
    pub fn starts(&self) -> &[NodeId] {
        &self.starts
    }

    /// The region `end` column, for snapshot serialization.
    #[inline]
    pub fn ends_column(&self) -> &[u32] {
        &self.ends
    }

    /// The region `level` column, for snapshot serialization.
    #[inline]
    pub fn levels_column(&self) -> &[u16] {
        &self.levels
    }

    /// The per-block max-`end` summary, for snapshot serialization.
    #[inline]
    pub fn block_max_end_column(&self) -> &[u32] {
        &self.block_max_end
    }

    /// Element id at position `i`.
    #[inline]
    pub fn start(&self, i: usize) -> NodeId {
        self.starts[i]
    }

    /// Region `end` at position `i`, read from the inline label column.
    #[inline]
    pub fn end(&self, i: usize) -> u32 {
        self.ends[i]
    }

    /// Region `level` at position `i`.
    #[inline]
    pub fn level(&self, i: usize) -> u16 {
        self.levels[i]
    }

    /// Full region label at position `i`.
    #[inline]
    pub fn region(&self, i: usize) -> Region {
        Region { start: self.starts[i].0, end: self.ends[i], level: self.levels[i] }
    }

    /// Gallop from position `from` to the first posting whose id (region
    /// `start`) is `>= target`. Exponential probe then binary search, so
    /// the cost is logarithmic in the distance advanced; when the cursor
    /// is already in place it is a single compare.
    #[inline]
    pub fn skip_to(&self, from: usize, target: u32) -> usize {
        let s = &self.starts;
        let n = s.len();
        if from >= n || s[from].0 >= target {
            return from;
        }
        // s[from] < target: double the probe distance until it lands at
        // or beyond the boundary, then binary-search the last window.
        let mut step = 1usize;
        while from + step < n && s[from + step].0 < target {
            step <<= 1;
        }
        let lo = from + (step >> 1);
        let hi = (from + step + 1).min(n);
        lo + s[lo..hi].partition_point(|&x| x.0 < target)
    }

    /// Gallop to the first posting whose id is **strictly greater** than
    /// `bound`. Equivalent to `skip_to(from, bound + 1)` without the
    /// overflow hazard at `u32::MAX`.
    #[inline]
    pub fn skip_past(&self, from: usize, bound: u32) -> usize {
        if bound == u32::MAX {
            return self.len();
        }
        self.skip_to(from, bound + 1)
    }

    /// Advance from position `from` to the first posting whose region
    /// `end` is `>= target` — the TwigStack skip "past every element whose
    /// subtree closes before `target`". `end` values are non-monotone
    /// (ancestors close after the descendants nested inside them), so this
    /// walks block max-end summaries and only scans inside the one block
    /// that provably contains a hit.
    #[inline]
    pub fn skip_to_end(&self, from: usize, target: u32) -> usize {
        let n = self.ends.len();
        let mut i = from;
        if i >= n || self.ends[i] >= target {
            return i;
        }
        i += 1;
        // Finish the block the cursor is in.
        let mut block = i >> BLOCK_SHIFT;
        let block_end = ((block + 1) << BLOCK_SHIFT).min(n);
        while i < block_end {
            if self.ends[i] >= target {
                return i;
            }
            i += 1;
        }
        block += 1;
        // Leap whole blocks whose max end is still below the target.
        while block << BLOCK_SHIFT < n && self.block_max_end[block] < target {
            block += 1;
        }
        i = block << BLOCK_SHIFT;
        while i < n {
            if self.ends[i] >= target {
                return i;
            }
            i += 1;
        }
        n
    }

    /// The index range of postings with id in `(after, upto]` — two
    /// gallops from the front.
    #[inline]
    pub fn range(&self, after: u32, upto: u32) -> std::ops::Range<usize> {
        let lo = self.skip_past(0, after);
        let hi = self.skip_past(lo, upto);
        lo..hi
    }
}

/// Per-tag posting lists in document order.
#[derive(Debug, Clone)]
pub struct TagIndex {
    /// Indexed by `Sym::index()`; empty list for non-element symbols.
    postings: Vec<PostingList>,
}

impl TagIndex {
    /// Build the index with one pass over the document's packed kind/tag
    /// and region columns.
    pub fn build(doc: &Document) -> TagIndex {
        let mut builders: Vec<ListBuilder> = vec![ListBuilder::default(); doc.symbols().len()];
        let end_col = doc.last_desc_column();
        let level_col = doc.level_column();
        for node in doc.elements() {
            let sym = doc.tag(node).expect("elements() yields elements");
            builders[sym.index()].push(node, end_col[node.index()], level_col[node.index()]);
        }
        TagIndex { postings: builders.into_iter().map(ListBuilder::finish).collect() }
    }

    /// Reassemble an index from per-symbol posting lists decoded or
    /// mapped out of a snapshot (symbol `i`'s list at position `i`).
    pub fn from_lists(postings: Vec<PostingList>) -> TagIndex {
        TagIndex { postings }
    }

    /// Incrementally maintain the index across a column splice (see
    /// `crate::mutate`): elements with ids in `[start, start + removed)`
    /// left the document, `inserted` nodes took their place at `start`,
    /// and every suffix id shifted by `inserted − removed`.
    ///
    /// Per posting list this drops the removed run, splices in the new
    /// elements (their ids are contiguous between the stable prefix and
    /// the shifted suffix, so list order is preserved by construction),
    /// and re-reads `end`/`level` labels from the new document's region
    /// columns — which also refreshes the splice-point ancestors whose
    /// subtree end moved. Lists that end before the splice point are
    /// reused wholesale. The result is identical to `TagIndex::build`
    /// on the new document, without the O(n) element scan or the
    /// serialize → reparse a full rebuild would sit behind.
    pub fn splice(&self, start: u32, removed: u32, inserted: u32, new_doc: &Document) -> TagIndex {
        let (s, r, m) = (start, removed, inserted);
        let end_col = new_doc.last_desc_column();
        let level_col = new_doc.level_column();
        let nsyms = new_doc.symbols().len();
        // Bucket the inserted elements by tag, ascending by id.
        let mut fresh: Vec<Vec<NodeId>> = vec![Vec::new(); nsyms];
        for id in s..s + m {
            if let Some(sym) = new_doc.tag(NodeId(id)) {
                fresh[sym.index()].push(NodeId(id));
            }
        }
        let mut postings = Vec::with_capacity(nsyms);
        for i in 0..nsyms {
            let old = self.postings.get(i).unwrap_or(&EMPTY);
            let extra = &fresh[i];
            let lo = old.starts.partition_point(|&n| n.0 < s);
            // Only ancestors of the splice point change their region end,
            // and their old end is ≥ s − 1; a list confined to ids < s
            // with every end < s − 1 is untouched.
            if extra.is_empty()
                && lo == old.len()
                && old.block_max_end.iter().all(|&e| e + 1 < s)
            {
                postings.push(old.clone());
                continue;
            }
            let hi = old.starts.partition_point(|&n| n.0 < s + r);
            let mut list = ListBuilder {
                starts: Vec::with_capacity(old.len() - (hi - lo) + extra.len()),
                ..ListBuilder::default()
            };
            let ids = old.starts[..lo]
                .iter()
                .copied()
                .chain(extra.iter().copied())
                .chain(old.starts[hi..].iter().map(|n| NodeId(n.0 - r + m)));
            for n in ids {
                list.push(n, end_col[n.index()], level_col[n.index()]);
            }
            postings.push(list.finish());
        }
        TagIndex { postings }
    }

    /// The posting list for `sym` (empty list if the tag never occurs).
    pub fn postings(&self, sym: Sym) -> &PostingList {
        self.postings.get(sym.index()).unwrap_or(&EMPTY)
    }

    /// Approximate heap footprint in bytes of every posting list, for the
    /// server catalog's memory cap (same caveats as
    /// [`Document::approx_heap_bytes`]).
    pub fn approx_heap_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|p| {
                p.starts.heap_bytes()
                    + p.ends.heap_bytes()
                    + p.levels.heap_bytes()
                    + p.block_max_end.heap_bytes()
            })
            .sum()
    }

    /// Number of symbol slots (including the document symbol's).
    pub fn num_symbols(&self) -> usize {
        self.postings.len()
    }

    /// Posting list by tag name.
    pub fn postings_by_name<'a>(&'a self, doc: &Document, name: &str) -> &'a PostingList {
        match doc.sym(name) {
            Some(sym) => self.postings(sym),
            None => &EMPTY,
        }
    }

    /// All elements with tag `sym`, in document order.
    pub fn stream(&self, sym: Sym) -> &[NodeId] {
        self.postings(sym).starts()
    }

    /// Convenience: stream by tag name.
    pub fn stream_by_name<'a>(&'a self, doc: &Document, name: &str) -> &'a [NodeId] {
        self.postings_by_name(doc, name).starts()
    }

    /// Number of elements with tag `sym`.
    pub fn count(&self, sym: Sym) -> usize {
        self.postings(sym).len()
    }

    /// Elements with tag `sym` whose id lies in `(after, upto]` — the
    /// range-limited lookup used by the bounded nested-loop join's
    /// `(p1, p2)` probes. Two gallops over the posting list.
    pub fn stream_in_range(&self, sym: Sym, after: NodeId, upto: NodeId) -> &[NodeId] {
        let list = self.postings(sym);
        &list.starts()[list.range(after.0, upto.0)]
    }

    /// Reference implementation of [`Self::stream_in_range`] that advances
    /// one element at a time. Kept as the skip-off baseline for the
    /// equivalence tests and the `joins` benchmark.
    pub fn stream_in_range_linear(&self, sym: Sym, after: NodeId, upto: NodeId) -> &[NodeId] {
        let s = self.stream(sym);
        let mut lo = 0;
        while lo < s.len() && s[lo].0 <= after.0 {
            lo += 1;
        }
        let mut hi = lo;
        while hi < s.len() && s[hi].0 <= upto.0 {
            hi += 1;
        }
        &s[lo..hi]
    }

    /// Split the tag stream for `sym` into at most `parts` contiguous,
    /// non-empty slices that cover it exactly, in document order. Because
    /// node ids are preorder positions, each slice spans a disjoint
    /// anchor-id interval — the partitioning that makes parallel NoK
    /// scans merge back with plain concatenation.
    pub fn partition(&self, sym: Sym, parts: usize) -> Vec<&[NodeId]> {
        let s = self.stream(sym);
        if s.is_empty() {
            return Vec::new();
        }
        let parts = parts.clamp(1, s.len());
        let base = s.len() / parts;
        let extra = s.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut lo = 0;
        for i in 0..parts {
            let hi = lo + base + usize::from(i < extra);
            out.push(&s[lo..hi]);
            lo = hi;
        }
        debug_assert_eq!(lo, s.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_doc_ordered() {
        let doc =
            Document::parse_str("<a><b/><c><b/><b/></c><b/></a>").unwrap();
        let idx = TagIndex::build(&doc);
        let bs = idx.stream_by_name(&doc, "b");
        assert_eq!(bs.len(), 4);
        assert!(bs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(idx.stream_by_name(&doc, "a").len(), 1);
        assert_eq!(idx.stream_by_name(&doc, "nope").len(), 0);
    }

    #[test]
    fn counts() {
        let doc = Document::parse_str("<a><b/><b/></a>").unwrap();
        let idx = TagIndex::build(&doc);
        let b = doc.sym("b").unwrap();
        assert_eq!(idx.count(b), 2);
        assert_eq!(idx.count(doc.sym("a").unwrap()), 1);
    }

    #[test]
    fn inline_labels_match_document_regions() {
        let doc = Document::parse_str(
            "<a><b><c/><b/></b><b>t</b><c><b/></c></a>",
        )
        .unwrap();
        let idx = TagIndex::build(&doc);
        for name in ["a", "b", "c"] {
            let list = idx.postings_by_name(&doc, name);
            for i in 0..list.len() {
                let n = list.start(i);
                assert_eq!(list.end(i), doc.last_descendant(n).0, "{name}[{i}]");
                assert_eq!(list.level(i), doc.level(n), "{name}[{i}]");
                assert_eq!(list.region(i), doc.region(n), "{name}[{i}]");
            }
        }
    }

    #[test]
    fn partitions_cover_the_stream_in_order() {
        let doc = Document::parse_str(
            "<a><b/><c><b/><b/></c><b/><b/><c><b/></c><b/></a>",
        )
        .unwrap();
        let idx = TagIndex::build(&doc);
        let b = doc.sym("b").unwrap();
        let full = idx.stream(b).to_vec();
        for parts in [1, 2, 3, full.len(), full.len() + 5] {
            let slices = idx.partition(b, parts);
            assert!(slices.len() <= parts.max(1));
            assert!(slices.iter().all(|s| !s.is_empty()), "parts={parts}");
            let flat: Vec<NodeId> = slices.iter().flat_map(|s| s.iter().copied()).collect();
            assert_eq!(flat, full, "parts={parts}");
        }
        // Missing tags partition to nothing.
        assert!(idx.partition(Sym(999), 4).is_empty());
    }

    #[test]
    fn range_limited_stream() {
        let doc = Document::parse_str("<a><b/><c><b/><b/></c><b/></a>").unwrap();
        let idx = TagIndex::build(&doc);
        let a = doc.root_element().unwrap();
        let c = doc
            .children(a)
            .find(|&n| doc.tag_name(n) == Some("c"))
            .unwrap();
        let b = doc.sym("b").unwrap();
        // bs strictly inside c's subtree.
        let inside = idx.stream_in_range(b, c, doc.last_descendant(c));
        assert_eq!(inside.len(), 2);
        assert!(inside.iter().all(|&n| doc.is_ancestor(c, n)));
        // Empty range.
        assert!(idx.stream_in_range(b, doc.last_descendant(c), c).is_empty());
        // Galloped and linear range probes agree.
        for after in 0..doc.len() as u32 {
            for upto in 0..doc.len() as u32 {
                assert_eq!(
                    idx.stream_in_range(b, NodeId(after), NodeId(upto)),
                    idx.stream_in_range_linear(b, NodeId(after), NodeId(upto)),
                    "after={after} upto={upto}"
                );
            }
        }
    }

    #[test]
    fn skip_to_agrees_with_linear_scan() {
        // A stream long enough to cross block boundaries: 200 <b/> leaves
        // under alternating <b> wrappers gives non-trivial nesting.
        let mut src = String::from("<r>");
        for i in 0..100 {
            if i % 3 == 0 {
                src.push_str("<b><b/><c/></b>");
            } else {
                src.push_str("<b/><c/>");
            }
        }
        src.push_str("</r>");
        let doc = Document::parse_str(&src).unwrap();
        let idx = TagIndex::build(&doc);
        let list = idx.postings_by_name(&doc, "b");
        assert!(list.len() > 2 * BLOCK_SIZE, "need multiple blocks");
        let max_id = doc.len() as u32 + 2;
        for from in [0, 1, list.len() / 2, list.len() - 1, list.len()] {
            for target in (0..max_id).step_by(7) {
                let linear_start = (from..list.len())
                    .find(|&i| list.start(i).0 >= target)
                    .unwrap_or(list.len());
                assert_eq!(list.skip_to(from, target), linear_start, "start from={from} t={target}");
                let linear_end = (from..list.len())
                    .find(|&i| list.end(i) >= target)
                    .unwrap_or(list.len());
                assert_eq!(list.skip_to_end(from, target), linear_end, "end from={from} t={target}");
            }
        }
        // skip_past at the id-space ceiling must not overflow.
        assert_eq!(list.skip_past(0, u32::MAX), list.len());
    }
}
