//! Tag-name indexes.
//!
//! Holistic twig joins (TwigStack) consume, for each pattern-tree node, a
//! stream of document elements with that tag, sorted by document order.
//! [`TagIndex`] materializes those streams: a dense per-symbol array of
//! node-id vectors. Because arena ids are preorder positions, each vector
//! is sorted by construction.

use crate::document::{Document, NodeId};
use crate::symbol::Sym;

/// Per-tag lists of element ids in document order.
#[derive(Debug, Clone)]
pub struct TagIndex {
    /// Indexed by `Sym::index()`; empty vec for non-element symbols.
    postings: Vec<Vec<NodeId>>,
}

impl TagIndex {
    /// Build the index with one pass over the document.
    pub fn build(doc: &Document) -> TagIndex {
        let mut postings: Vec<Vec<NodeId>> = vec![Vec::new(); doc.symbols().len()];
        for node in doc.elements() {
            let sym = doc.tag(node).expect("elements() yields elements");
            postings[sym.index()].push(node);
        }
        TagIndex { postings }
    }

    /// All elements with tag `sym`, in document order.
    pub fn stream(&self, sym: Sym) -> &[NodeId] {
        self.postings.get(sym.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Convenience: stream by tag name.
    pub fn stream_by_name<'a>(&'a self, doc: &Document, name: &str) -> &'a [NodeId] {
        match doc.sym(name) {
            Some(sym) => self.stream(sym),
            None => &[],
        }
    }

    /// Number of elements with tag `sym`.
    pub fn count(&self, sym: Sym) -> usize {
        self.stream(sym).len()
    }

    /// Elements with tag `sym` whose id lies in `(after, upto]` — the
    /// range-limited lookup used by the bounded nested-loop join.
    pub fn stream_in_range(&self, sym: Sym, after: NodeId, upto: NodeId) -> &[NodeId] {
        let s = self.stream(sym);
        let lo = s.partition_point(|&n| n.0 <= after.0);
        let hi = s.partition_point(|&n| n.0 <= upto.0);
        if hi <= lo {
            return &[];
        }
        &s[lo..hi]
    }

    /// Split the tag stream for `sym` into at most `parts` contiguous,
    /// non-empty slices that cover it exactly, in document order. Because
    /// node ids are preorder positions, each slice spans a disjoint
    /// anchor-id interval — the partitioning that makes parallel NoK
    /// scans merge back with plain concatenation.
    pub fn partition(&self, sym: Sym, parts: usize) -> Vec<&[NodeId]> {
        let s = self.stream(sym);
        if s.is_empty() {
            return Vec::new();
        }
        let parts = parts.clamp(1, s.len());
        let base = s.len() / parts;
        let extra = s.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut lo = 0;
        for i in 0..parts {
            let hi = lo + base + usize::from(i < extra);
            out.push(&s[lo..hi]);
            lo = hi;
        }
        debug_assert_eq!(lo, s.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_doc_ordered() {
        let doc =
            Document::parse_str("<a><b/><c><b/><b/></c><b/></a>").unwrap();
        let idx = TagIndex::build(&doc);
        let bs = idx.stream_by_name(&doc, "b");
        assert_eq!(bs.len(), 4);
        assert!(bs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(idx.stream_by_name(&doc, "a").len(), 1);
        assert_eq!(idx.stream_by_name(&doc, "nope").len(), 0);
    }

    #[test]
    fn counts() {
        let doc = Document::parse_str("<a><b/><b/></a>").unwrap();
        let idx = TagIndex::build(&doc);
        let b = doc.sym("b").unwrap();
        assert_eq!(idx.count(b), 2);
        assert_eq!(idx.count(doc.sym("a").unwrap()), 1);
    }

    #[test]
    fn partitions_cover_the_stream_in_order() {
        let doc = Document::parse_str(
            "<a><b/><c><b/><b/></c><b/><b/><c><b/></c><b/></a>",
        )
        .unwrap();
        let idx = TagIndex::build(&doc);
        let b = doc.sym("b").unwrap();
        let full = idx.stream(b).to_vec();
        for parts in [1, 2, 3, full.len(), full.len() + 5] {
            let slices = idx.partition(b, parts);
            assert!(slices.len() <= parts.max(1));
            assert!(slices.iter().all(|s| !s.is_empty()), "parts={parts}");
            let flat: Vec<NodeId> = slices.iter().flat_map(|s| s.iter().copied()).collect();
            assert_eq!(flat, full, "parts={parts}");
        }
        // Missing tags partition to nothing.
        assert!(idx.partition(Sym(999), 4).is_empty());
    }

    #[test]
    fn range_limited_stream() {
        let doc = Document::parse_str("<a><b/><c><b/><b/></c><b/></a>").unwrap();
        let idx = TagIndex::build(&doc);
        let a = doc.root_element().unwrap();
        let c = doc
            .children(a)
            .find(|&n| doc.tag_name(n) == Some("c"))
            .unwrap();
        let b = doc.sym("b").unwrap();
        // bs strictly inside c's subtree.
        let inside = idx.stream_in_range(b, c, doc.last_descendant(c));
        assert_eq!(inside.len(), 2);
        assert!(inside.iter().all(|&n| doc.is_ancestor(c, n)));
        // Empty range.
        assert!(idx.stream_in_range(b, doc.last_descendant(c), c).is_empty());
    }
}
