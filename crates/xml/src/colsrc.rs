//! Column sources: owned heap vectors vs. borrowed byte mappings.
//!
//! The struct-of-arrays arena of a [`crate::Document`] (and the posting
//! arrays of a [`crate::TagIndex`]) can be backed two ways:
//!
//! * **Owned** — a plain `Vec<T>`, produced by parsing, building, or
//!   splicing. This is the only mode mutation paths ever construct.
//! * **Mapped** — a typed window into a reference-counted [`Mapping`]
//!   (an `mmap`'d snapshot file, or an 8-byte-aligned heap buffer on
//!   platforms without `mmap`). Opening a BLM2 snapshot this way costs
//!   O(columns) pointer fixups instead of O(nodes) decoding, and the
//!   kernel pages column bytes in on demand — documents bigger than RAM
//!   stay queryable under a bounded resident set.
//!
//! [`Col`] hides the distinction behind `Deref<Target = [T]>`, so every
//! operator, the planner, and the oracle run unchanged over mapped
//! documents. Safety rests on two pillars: mapped windows are
//! bounds- and alignment-checked against the mapping at construction,
//! and the snapshot decoder validates structural invariants (id ranges,
//! payload bounds, UTF-8) once at open — after which indexing a column
//! is exactly as safe as indexing a `Vec`.
//!
//! Byte order: snapshot sections are little-endian on disk. On
//! little-endian targets (the only tier-1 platform) the mapped view is
//! zero-copy; big-endian targets transparently fall back to an owned,
//! byte-swapped copy of each column.

use std::fmt;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Raw read-only `mmap` shim in the style of `blossom-server`'s `sys`
/// module: the two symbols declared directly, no external crate (std
/// already links the platform C library).
#[cfg(unix)]
mod mm {
    use core::ffi::c_void;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
}

enum MappingKind {
    /// 8-byte-aligned heap buffer (`u64`-backed so every column element
    /// type is aligned); also the non-unix and empty-file fallback.
    Heap(#[allow(dead_code)] Box<[u64]>),
    /// A `PROT_READ`/`MAP_PRIVATE` file mapping, unmapped on drop.
    #[cfg(unix)]
    Mmap,
}

/// A contiguous read-only byte region that columns can borrow from,
/// shared via `Arc` by every column cut from it.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
    kind: MappingKind,
}

// Read-only bytes with shared ownership: safe to send and share.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Copy `bytes` into an 8-byte-aligned heap buffer. (`Vec<u8>` has
    /// alignment 1, so zero-copy typed views require a `u64` backing.)
    pub fn from_bytes(bytes: &[u8]) -> Mapping {
        let words = bytes.len().div_ceil(8);
        let mut buf = vec![0u64; words].into_boxed_slice();
        let ptr = buf.as_mut_ptr() as *mut u8;
        if !bytes.is_empty() {
            unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, bytes.len()) };
        }
        Mapping { ptr, len: bytes.len(), kind: MappingKind::Heap(buf) }
    }

    /// Map the file at `path` read-only. On unix this is a real
    /// `mmap(PROT_READ, MAP_PRIVATE)` — pages fault in on first touch
    /// and count against the page cache, not the process heap. Elsewhere
    /// (and for empty files) the file is read into an aligned heap
    /// buffer instead, preserving the API.
    ///
    /// The mapping assumes the file is not truncated while mapped (the
    /// store's temp-file + rename protocol guarantees snapshot files are
    /// immutable once published).
    pub fn map_path(path: &Path) -> std::io::Result<Mapping> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Mapping::from_bytes(&[]));
            }
            if len > usize::MAX as u64 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "file too large to map",
                ));
            }
            let len = len as usize;
            let ptr = unsafe {
                mm::mmap(std::ptr::null_mut(), len, mm::PROT_READ, mm::MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as usize == usize::MAX {
                return Err(std::io::Error::last_os_error());
            }
            // The fd can close now; the mapping keeps the pages alive.
            drop(file);
            Ok(Mapping { ptr: ptr as *const u8, len, kind: MappingKind::Mmap })
        }
        #[cfg(not(unix))]
        {
            Ok(Mapping::from_bytes(&std::fs::read(path)?))
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the region empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address, for alignment checks.
    #[inline]
    fn base(&self) -> usize {
        self.ptr as usize
    }

    /// Does this mapping occupy process heap (vs. file-backed pages the
    /// kernel can reclaim)? Drives resident-byte accounting: columns
    /// over a heap mapping are real memory and must be charged; columns
    /// over an `mmap` are page cache charged to the snapshot file.
    pub fn is_resident(&self) -> bool {
        match self.kind {
            MappingKind::Heap(_) => true,
            #[cfg(unix)]
            MappingKind::Mmap => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if matches!(self.kind, MappingKind::Mmap) {
            unsafe { mm::munmap(self.ptr as *mut core::ffi::c_void, self.len) };
        }
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            MappingKind::Heap(_) => "heap",
            #[cfg(unix)]
            MappingKind::Mmap => "mmap",
        };
        f.debug_struct("Mapping").field("len", &self.len).field("kind", &kind).finish()
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for crate::document::NodeId {}
}

/// Element types a [`Col`] may hold: plain little-endian-storable
/// primitives (and `NodeId`, which is `#[repr(transparent)]` over
/// `u32`). Sealed — the snapshot format enumerates exactly these.
pub trait ColElem: sealed::Sealed + Copy + Send + Sync + 'static {
    /// Reinterpret a value read from little-endian storage as native.
    /// Identity on little-endian targets.
    fn from_le_elem(self) -> Self;
}

impl ColElem for u8 {
    #[inline]
    fn from_le_elem(self) -> Self {
        self
    }
}
impl ColElem for u16 {
    #[inline]
    fn from_le_elem(self) -> Self {
        u16::from_le(self)
    }
}
impl ColElem for u32 {
    #[inline]
    fn from_le_elem(self) -> Self {
        u32::from_le(self)
    }
}
impl ColElem for crate::document::NodeId {
    #[inline]
    fn from_le_elem(self) -> Self {
        crate::document::NodeId(u32::from_le(self.0))
    }
}

/// A column of `T`: an owned `Vec<T>` or a typed window into a shared
/// [`Mapping`]. Dereferences to `&[T]` either way.
pub enum Col<T: ColElem> {
    /// Heap-owned storage (the only variant mutation paths construct).
    Owned(Vec<T>),
    /// Borrowed window into a mapping; the `Arc` keeps the bytes alive.
    Mapped {
        /// First element (bounds/alignment checked at construction).
        ptr: *const T,
        /// Element count.
        len: usize,
        /// Owning mapping.
        map: Arc<Mapping>,
    },
}

// A Mapped column is an immutable view of Send+Sync-shared bytes.
unsafe impl<T: ColElem> Send for Col<T> {}
unsafe impl<T: ColElem> Sync for Col<T> {}

impl<T: ColElem> Col<T> {
    /// A typed window of `count` elements starting `offset` bytes into
    /// `map`. Fails if the window leaves the mapping or is misaligned.
    /// On big-endian targets the window is decoded into an owned,
    /// byte-swapped copy instead (the on-disk layout is little-endian).
    pub fn from_mapping(map: &Arc<Mapping>, offset: usize, count: usize) -> Result<Col<T>, String> {
        let elem = std::mem::size_of::<T>();
        let bytes = count.checked_mul(elem).ok_or("column size overflow")?;
        let end = offset.checked_add(bytes).ok_or("column offset overflow")?;
        if end > map.len() {
            return Err(format!(
                "column [{offset}, {end}) exceeds mapping of {} bytes",
                map.len()
            ));
        }
        if (map.base() + offset) % std::mem::align_of::<T>() != 0 {
            return Err(format!("column at byte offset {offset} is misaligned"));
        }
        let ptr = unsafe { map.bytes().as_ptr().add(offset) } as *const T;
        if cfg!(target_endian = "little") {
            Ok(Col::Mapped { ptr, len: count, map: map.clone() })
        } else {
            let mut v = Vec::with_capacity(count);
            for i in 0..count {
                v.push(unsafe { ptr.add(i).read() }.from_le_elem());
            }
            Ok(Col::Owned(v))
        }
    }

    /// Heap bytes attributable to this column: the vector's payload when
    /// owned; for mapped windows, zero if the mapping is file-backed
    /// (those pages belong to the page cache and are charged to the
    /// snapshot file) but the full window size if it is a heap buffer.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Col::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Col::Mapped { len, map, .. } => {
                if map.is_resident() {
                    *len * std::mem::size_of::<T>()
                } else {
                    0
                }
            }
        }
    }

    /// Is this column a mapped window (vs. heap-owned)?
    pub fn is_mapped(&self) -> bool {
        matches!(self, Col::Mapped { .. })
    }
}

impl<T: ColElem> Deref for Col<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Col::Owned(v) => v,
            Col::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: ColElem> Clone for Col<T> {
    fn clone(&self) -> Col<T> {
        match self {
            Col::Owned(v) => Col::Owned(v.clone()),
            Col::Mapped { ptr, len, map } => {
                Col::Mapped { ptr: *ptr, len: *len, map: map.clone() }
            }
        }
    }
}

impl<T: ColElem + fmt::Debug> fmt::Debug for Col<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_mapped() { "mapped" } else { "owned" };
        write!(f, "Col<{tag}>{:?}", &self[..])
    }
}

impl<T: ColElem> From<Vec<T>> for Col<T> {
    fn from(v: Vec<T>) -> Col<T> {
        Col::Owned(v)
    }
}

/// Text-node content: owned boxed strings, or `(offsets, blob)` windows
/// into a mapping. Mapped stores validate lazily: construction checks
/// only the end-to-end offset frame (O(1), so a mapped open faults no
/// text pages), and every access bounds- and UTF-8-checks its own piece.
/// A piece an undetected corruption mangled reads as the empty string —
/// never a panic, never out-of-bounds (full-content integrity is the
/// checksummed heap open's job).
pub enum TextStore {
    /// One heap allocation per text node (parse/build/splice output).
    Owned(Vec<Box<str>>),
    /// `offsets[i]..offsets[i+1]` delimits text `i` inside `blob`.
    Mapped {
        /// `len + 1` monotone byte offsets; first 0, last `blob.len()`.
        offsets: Col<u32>,
        /// Concatenated UTF-8 text bytes.
        blob: Col<u8>,
    },
}

impl TextStore {
    /// Wrap pre-cut columns as a text store. Validation here is O(1) —
    /// just the offset frame — so opening a mapped snapshot touches the
    /// first and last offset page and nothing else; each piece is
    /// bounds- and UTF-8-checked on access instead.
    pub fn from_mapped(offsets: Col<u32>, blob: Col<u8>) -> Result<TextStore, String> {
        if offsets.is_empty() {
            return Err("text offsets must contain at least the terminator".into());
        }
        if offsets[0] != 0 {
            return Err("text offsets must start at 0".into());
        }
        if offsets[offsets.len() - 1] as usize != blob.len() {
            return Err("text offsets must end at the blob length".into());
        }
        Ok(TextStore::Mapped { offsets, blob })
    }

    /// Number of texts.
    pub fn len(&self) -> usize {
        match self {
            TextStore::Owned(v) => v.len(),
            TextStore::Mapped { offsets, .. } => offsets.len() - 1,
        }
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Text `i`. Panics if `i` is out of range, like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        match self {
            TextStore::Owned(v) => &v[i],
            TextStore::Mapped { offsets, blob } => {
                let lo = offsets[i] as usize;
                let hi = offsets[i + 1] as usize;
                // Checked per piece: offsets a corruption inverted or
                // pushed past the blob, and bytes that aren't UTF-8,
                // degrade to "" rather than panic or read out of
                // bounds. Heap opens catch such corruption up front via
                // section checksums; mapped opens defer to here.
                if lo > hi || hi > blob.len() {
                    return "";
                }
                std::str::from_utf8(&blob[lo..hi]).unwrap_or("")
            }
        }
    }

    /// Iterate all texts in index order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Heap bytes attributable to this store (zero when mapped).
    pub fn heap_bytes(&self) -> usize {
        match self {
            TextStore::Owned(v) => {
                v.iter().map(|t| t.len() + std::mem::size_of::<Box<str>>()).sum()
            }
            TextStore::Mapped { offsets, blob } => offsets.heap_bytes() + blob.heap_bytes(),
        }
    }
}

impl fmt::Debug for TextStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self {
            TextStore::Owned(_) => "owned",
            TextStore::Mapped { .. } => "mapped",
        };
        f.debug_struct("TextStore").field("len", &self.len()).field("kind", &tag).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_mapping_is_aligned_and_roundtrips() {
        let bytes: Vec<u8> = (0u8..23).collect();
        let map = Mapping::from_bytes(&bytes);
        assert_eq!(map.bytes(), &bytes[..]);
        assert_eq!(map.base() % 8, 0);
    }

    #[test]
    fn mapped_column_views_typed_elements() {
        let words: Vec<u32> = vec![7, 11, u32::MAX];
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let map = Arc::new(Mapping::from_bytes(&bytes));
        let col = Col::<u32>::from_mapping(&map, 0, 3).unwrap();
        assert_eq!(&col[..], &words[..]);
        // A heap-backed mapping is resident memory and is charged as such.
        assert_eq!(col.heap_bytes(), 12);
    }

    #[test]
    fn file_backed_columns_charge_no_heap() {
        let dir = std::env::temp_dir().join(format!("blossom-colres-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.bin");
        std::fs::write(&path, 42u32.to_le_bytes()).unwrap();
        let map = Arc::new(Mapping::map_path(&path).unwrap());
        let col = Col::<u32>::from_mapping(&map, 0, 1).unwrap();
        assert_eq!(col[0], 42);
        if cfg!(all(unix, target_endian = "little")) {
            assert!(!map.is_resident());
            assert_eq!(col.heap_bytes(), 0, "mmap pages are not process heap");
        }
        drop(col);
        drop(map);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_bounds_and_misaligned_windows_are_rejected() {
        let map = Arc::new(Mapping::from_bytes(&[0u8; 16]));
        assert!(Col::<u32>::from_mapping(&map, 0, 5).is_err(), "past the end");
        assert!(Col::<u32>::from_mapping(&map, 2, 1).is_err(), "misaligned");
        assert!(Col::<u32>::from_mapping(&map, usize::MAX, 1).is_err(), "overflow");
        assert!(Col::<u16>::from_mapping(&map, 14, 1).is_ok());
    }

    #[test]
    fn file_mapping_reads_back() {
        let dir = std::env::temp_dir().join(format!("blossom-colsrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.bin");
        std::fs::write(&path, b"hello mapping").unwrap();
        let map = Mapping::map_path(&path).unwrap();
        assert_eq!(map.bytes(), b"hello mapping");
        drop(map);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn text_store_mapped_validates() {
        let blob = b"abcdef".to_vec();
        let offs = vec![0u32, 3, 3, 6];
        let mk = |offs: &[u32], blob: &[u8]| {
            let mut bytes = Vec::new();
            for o in offs {
                bytes.extend_from_slice(&o.to_le_bytes());
            }
            let pad = bytes.len();
            bytes.extend_from_slice(blob);
            let map = Arc::new(Mapping::from_bytes(&bytes));
            let oc = Col::<u32>::from_mapping(&map, 0, offs.len()).unwrap();
            let bc = Col::<u8>::from_mapping(&map, pad, blob.len()).unwrap();
            TextStore::from_mapped(oc, bc)
        };
        let store = mk(&offs, &blob).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(0), "abc");
        assert_eq!(store.get(1), "");
        assert_eq!(store.get(2), "def");
        // The offset frame is checked eagerly (O(1))...
        assert!(mk(&[0, 7], &blob).is_err(), "offsets past blob");
        assert!(mk(&[1, 6], &blob).is_err(), "first offset nonzero");
        assert!(mk(&[], &blob).is_err(), "empty offsets");
        // ...while per-piece problems are caught lazily at access: an
        // inverted window or invalid UTF-8 reads as "", never a panic.
        let inverted = mk(&[0, 4, 2, 6], &blob).unwrap();
        assert_eq!(inverted.get(0), "abcd");
        assert_eq!(inverted.get(1), "", "inverted window degrades to empty");
        assert_eq!(inverted.get(2), "cdef");
        let bad_utf8 = mk(&[0, 2], &[0xffu8, 0xfe]).unwrap();
        assert_eq!(bad_utf8.get(0), "", "invalid UTF-8 degrades to empty");
    }
}
