//! XML serialization.
//!
//! Serializes a [`Document`] subtree back to markup, escaping text and
//! attribute values. Used for round-trip testing and for constructing the
//! textual result of FLWOR queries.

use crate::document::{Document, NodeId, NodeKind};
use std::fmt::Write;

/// Escape `text` for use as character data.
pub fn escape_text(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

/// Escape `value` for use inside a double-quoted attribute.
pub fn escape_attr(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serialize the subtree rooted at `node` (compact; no added whitespace).
pub fn write_node(doc: &Document, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Document => {
            for c in doc.children(node) {
                write_node(doc, c, out);
            }
        }
        NodeKind::Text => {
            escape_text(doc.text(node).unwrap_or(""), out);
        }
        NodeKind::Element(sym) => {
            let name = doc.symbols().name(sym);
            out.push('<');
            out.push_str(name);
            for (attr, value) in doc.attributes(node) {
                let _ = write!(out, " {}=\"", doc.symbols().name(*attr));
                escape_attr(value, out);
                out.push('"');
            }
            if doc.first_child(node).is_none() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in doc.children(node) {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

/// Serialize the whole document (compact).
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, NodeId::DOCUMENT, &mut out);
    out
}

/// Serialize with two-space indentation, one element per line. Text nodes
/// are emitted inline when they are an element's only child.
pub fn to_string_pretty(doc: &Document) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root_element() {
        write_pretty(doc, root, 0, &mut out);
    }
    out
}

fn write_pretty(doc: &Document, node: NodeId, indent: usize, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Document => unreachable!("pretty printer starts at the root element"),
        NodeKind::Text => {
            for _ in 0..indent {
                out.push_str("  ");
            }
            escape_text(doc.text(node).unwrap_or(""), out);
            out.push('\n');
        }
        NodeKind::Element(sym) => {
            let name = doc.symbols().name(sym);
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push('<');
            out.push_str(name);
            for (attr, value) in doc.attributes(node) {
                let _ = write!(out, " {}=\"", doc.symbols().name(*attr));
                escape_attr(value, out);
                out.push('"');
            }
            let mut kids = doc.children(node);
            match (kids.next(), kids.next()) {
                (None, _) => out.push_str("/>\n"),
                (Some(only), None) if doc.kind(only) == NodeKind::Text => {
                    out.push('>');
                    escape_text(doc.text(only).unwrap_or(""), out);
                    out.push_str("</");
                    out.push_str(name);
                    out.push_str(">\n");
                }
                _ => {
                    out.push_str(">\n");
                    for c in doc.children(node) {
                        write_pretty(doc, c, indent + 1, out);
                    }
                    for _ in 0..indent {
                        out.push_str("  ");
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push_str(">\n");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<bib><book year="1994"><title>a &amp; b</title></book><empty/></bib>"#;
        let doc = Document::parse_str(src).unwrap();
        assert_eq!(to_string(&doc), src);
    }

    #[test]
    fn escaping() {
        let mut s = String::new();
        escape_text("a<b>&c", &mut s);
        assert_eq!(s, "a&lt;b&gt;&amp;c");
        let mut s = String::new();
        escape_attr("say \"hi\" & <go>", &mut s);
        assert_eq!(s, "say &quot;hi&quot; &amp; &lt;go>");
    }

    #[test]
    fn reparse_equals_original() {
        let src = r#"<a x="1&quot;2"><b>t1</b>mid<c><d/></c></a>"#;
        let doc = Document::parse_str(src).unwrap();
        let serialized = to_string(&doc);
        let doc2 = Document::parse_str(&serialized).unwrap();
        assert_eq!(to_string(&doc2), serialized);
        let (r1, r2) = (doc.root_element().unwrap(), doc2.root_element().unwrap());
        assert_eq!(doc.stats(), doc2.stats());
        assert_eq!(doc.string_value(r1), doc2.string_value(r2));
    }

    #[test]
    fn pretty_printing() {
        let doc = Document::parse_str("<a><b>x</b><c><d/></c></a>").unwrap();
        let pretty = to_string_pretty(&doc);
        assert_eq!(pretty, "<a>\n  <b>x</b>\n  <c>\n    <d/>\n  </c>\n</a>\n");
    }
}
