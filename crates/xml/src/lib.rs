#![warn(missing_docs)]

//! XML substrate for the BlossomTree query engine.
//!
//! This crate provides everything the BlossomTree paper assumes of its
//! storage layer:
//!
//! * a from-scratch streaming XML parser ([`parser::Reader`]),
//! * an arena-allocated document tree ([`Document`]) whose node ids are
//!   assigned in document (pre-) order, so that every subtree occupies a
//!   contiguous id range and structural predicates reduce to integer
//!   comparisons,
//! * region labels and Dewey identifiers ([`label`], [`dewey`]),
//! * tag-name indexes in document order ([`index::TagIndex`]), as required
//!   by holistic twig joins,
//! * document statistics ([`stats::DocStats`]) — depth, tag counts and
//!   recursion degree — which the optimizer uses to choose join operators,
//! * a serializer ([`writer`]) for round-tripping and result construction.
//!
//! # Quick example
//!
//! ```
//! use blossom_xml::Document;
//!
//! let doc = Document::parse_str("<bib><book><title>TAoCP</title></book></bib>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.tag_name(root), Some("bib"));
//! assert_eq!(doc.stats().element_count, 3);
//! ```

pub mod colsrc;
pub mod dewey;
pub mod document;
pub mod fxhash;
pub mod index;
pub mod label;
pub mod load;
pub mod mutate;
pub mod navigate;
pub mod parser;
pub mod stats;
pub mod succinct;
pub mod symbol;
pub mod writer;

pub use colsrc::{Col, ColElem, Mapping, TextStore};
pub use dewey::Dewey;
pub use document::{ColumnParts, Document, NodeId, NodeKind, ParseOptions, TreeBuilder};
pub use index::{PostingList, TagIndex};
pub use label::Region;
pub use mutate::{Mutation, Splice};
pub use navigate::Axis;
pub use parser::{Event, ParseError, Reader};
pub use stats::DocStats;
pub use symbol::{Sym, SymbolTable};

// The parallel execution layer shares `&Document` / `&TagIndex` across
// scoped worker threads; fail the build immediately if either ever grows
// a non-thread-safe field (`Rc`, `Cell`, raw pointers, …).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Document>();
    assert_send_sync::<TagIndex>();
    assert_send_sync::<SymbolTable>();
};
