//! A from-scratch streaming (SAX-style) XML parser.
//!
//! [`Reader`] walks a UTF-8 input buffer and yields [`Event`]s. It supports
//! the XML constructs that occur in data-centric documents: elements,
//! attributes (single- or double-quoted), character data, CDATA sections,
//! comments, processing instructions, an XML declaration, a DOCTYPE (whose
//! internal subset is skipped), and the five predefined entities plus
//! decimal/hexadecimal character references.
//!
//! The reader validates well-formedness as it goes: end tags must match
//! the open element, exactly one root element is allowed, and content past
//! the root is rejected. Namespace processing is out of scope — prefixed
//! names are treated as opaque tag names, which matches how the paper's
//! datasets and queries use them.

use std::borrow::Cow;
use std::fmt;

/// A parse event. Borrowed slices point into the input buffer; text that
/// required entity decoding is owned.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// `<name attr="v" ...>` or `<name/>` (the latter sets `self_closing`
    /// and is *not* followed by a matching [`Event::EndElement`]).
    StartElement {
        /// Tag name as written (prefix included, if any).
        name: &'a str,
        /// Attributes in document order.
        attributes: Vec<(&'a str, Cow<'a, str>)>,
        /// True for `<name/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Tag name as written.
        name: &'a str,
    },
    /// Character data, with entities decoded. CDATA sections are delivered
    /// as text with no decoding.
    Text(Cow<'a, str>),
    /// `<!-- ... -->` (content between the markers).
    Comment(&'a str),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target.
        target: &'a str,
        /// Everything between the target and `?>`, trimmed of leading space.
        data: &'a str,
    },
    /// `<!DOCTYPE ...>` — raw content, internal subset skipped.
    Doctype(&'a str),
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A tag was syntactically malformed.
    MalformedTag,
    /// `</b>` closed an open `<a>`.
    MismatchedTag {
        /// The element that was open.
        expected: String,
        /// The end tag that was found.
        found: String,
    },
    /// An entity reference could not be decoded.
    InvalidEntity,
    /// Character data appeared outside the root element.
    ContentOutsideRoot,
    /// A second root element was found.
    MultipleRoots,
    /// The document contains no root element.
    NoRootElement,
    /// An attribute name was repeated within one tag.
    DuplicateAttribute(String),
    /// Raw `<` or other invalid character where markup was required.
    InvalidCharacter(char),
    /// End tags remained open at end of input.
    UnclosedElements(Vec<String>),
}

/// A parse error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ParseErrorKind::*;
        match &self.kind {
            UnexpectedEof => write!(f, "unexpected end of input at byte {}", self.offset),
            MalformedTag => write!(f, "malformed tag at byte {}", self.offset),
            MismatchedTag { expected, found } => write!(
                f,
                "mismatched end tag </{found}> (expected </{expected}>) at byte {}",
                self.offset
            ),
            InvalidEntity => write!(f, "invalid entity reference at byte {}", self.offset),
            ContentOutsideRoot => {
                write!(f, "character data outside root element at byte {}", self.offset)
            }
            MultipleRoots => write!(f, "second root element at byte {}", self.offset),
            NoRootElement => write!(f, "document has no root element"),
            DuplicateAttribute(name) => {
                write!(f, "duplicate attribute '{name}' at byte {}", self.offset)
            }
            InvalidCharacter(c) => write!(f, "invalid character {c:?} at byte {}", self.offset),
            UnclosedElements(tags) => {
                write!(f, "unclosed elements at end of input: {}", tags.join(", "))
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Streaming XML reader.
///
/// Call [`Reader::next_event`] until it returns `Ok(None)`.
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
    /// Open element names, for end-tag matching.
    stack: Vec<&'a str>,
    /// Whether the (single) root element has been seen and closed.
    root_done: bool,
    seen_root: bool,
}

impl<'a> Reader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        Reader {
            input,
            pos: 0,
            stack: Vec::with_capacity(16),
            root_done: false,
            seen_root: false,
        }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError { kind, offset: self.pos }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        let rest = self.rest();
        let n = rest.len() - rest.trim_start().len();
        self.bump(n);
    }

    /// Yield the next event, or `Ok(None)` at a well-formed end of input.
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>, ParseError> {
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    let open = self.stack.iter().map(|s| s.to_string()).collect();
                    return Err(self.err(ParseErrorKind::UnclosedElements(open)));
                }
                if !self.seen_root {
                    return Err(self.err(ParseErrorKind::NoRootElement));
                }
                return Ok(None);
            }
            let rest = self.rest();
            if let Some(stripped) = rest.strip_prefix('<') {
                if stripped.starts_with("!--") {
                    return self.parse_comment().map(Some);
                } else if stripped.starts_with("![CDATA[") {
                    return self.parse_cdata().map(Some);
                } else if stripped.starts_with("!DOCTYPE") {
                    return self.parse_doctype().map(Some);
                } else if stripped.starts_with('?') {
                    return self.parse_pi().map(Some);
                } else if stripped.starts_with('/') {
                    return self.parse_end_tag().map(Some);
                } else {
                    return self.parse_start_tag().map(Some);
                }
            } else if self.stack.is_empty() {
                // Outside the root element only whitespace is allowed.
                let before = self.pos;
                self.skip_whitespace();
                if self.pos == before {
                    return Err(self.err(ParseErrorKind::ContentOutsideRoot));
                }
            } else {
                return self.parse_text().map(Some);
            }
        }
    }

    fn parse_comment(&mut self) -> Result<Event<'a>, ParseError> {
        // at "<!--"
        let start = self.pos + 4;
        match self.input[start..].find("-->") {
            Some(end) => {
                let content = &self.input[start..start + end];
                self.pos = start + end + 3;
                Ok(Event::Comment(content))
            }
            None => {
                self.pos = self.input.len();
                Err(self.err(ParseErrorKind::UnexpectedEof))
            }
        }
    }

    fn parse_cdata(&mut self) -> Result<Event<'a>, ParseError> {
        // at "<![CDATA["
        let start = self.pos + 9;
        match self.input[start..].find("]]>") {
            Some(end) => {
                if self.stack.is_empty() {
                    return Err(self.err(ParseErrorKind::ContentOutsideRoot));
                }
                let content = &self.input[start..start + end];
                self.pos = start + end + 3;
                Ok(Event::Text(Cow::Borrowed(content)))
            }
            None => {
                self.pos = self.input.len();
                Err(self.err(ParseErrorKind::UnexpectedEof))
            }
        }
    }

    fn parse_doctype(&mut self) -> Result<Event<'a>, ParseError> {
        // at "<!DOCTYPE"; skip to the matching '>' accounting for an
        // internal subset in [...].
        let start = self.pos + 9;
        let bytes = self.input.as_bytes();
        let mut i = start;
        let mut bracket_depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => bracket_depth += 1,
                b']' => bracket_depth = bracket_depth.saturating_sub(1),
                b'>' if bracket_depth == 0 => {
                    let content = self.input[start..i].trim();
                    self.pos = i + 1;
                    return Ok(Event::Doctype(content));
                }
                _ => {}
            }
            i += 1;
        }
        self.pos = self.input.len();
        Err(self.err(ParseErrorKind::UnexpectedEof))
    }

    fn parse_pi(&mut self) -> Result<Event<'a>, ParseError> {
        // at "<?"
        let start = self.pos + 2;
        match self.input[start..].find("?>") {
            Some(end) => {
                let content = &self.input[start..start + end];
                self.pos = start + end + 2;
                let (target, data) = match content.find(|c: char| c.is_ascii_whitespace()) {
                    Some(i) => (&content[..i], content[i..].trim_start()),
                    None => (content, ""),
                };
                Ok(Event::ProcessingInstruction { target, data })
            }
            None => {
                self.pos = self.input.len();
                Err(self.err(ParseErrorKind::UnexpectedEof))
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<Event<'a>, ParseError> {
        // at "</"
        let start = self.pos + 2;
        let rel_end = self.input[start..]
            .find('>')
            .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof))?;
        let name = self.input[start..start + rel_end].trim_end();
        if name.is_empty() || !is_name(name) {
            return Err(self.err(ParseErrorKind::MalformedTag));
        }
        match self.stack.pop() {
            Some(open) if open == name => {
                self.pos = start + rel_end + 1;
                if self.stack.is_empty() {
                    self.root_done = true;
                }
                Ok(Event::EndElement { name })
            }
            Some(open) => Err(self.err(ParseErrorKind::MismatchedTag {
                expected: open.to_string(),
                found: name.to_string(),
            })),
            None => Err(self.err(ParseErrorKind::MalformedTag)),
        }
    }

    fn parse_start_tag(&mut self) -> Result<Event<'a>, ParseError> {
        // at "<"
        if self.root_done {
            return Err(self.err(ParseErrorKind::MultipleRoots));
        }
        let mut i = self.pos + 1;
        let bytes = self.input.as_bytes();

        // Tag name.
        let name_start = i;
        while i < bytes.len() && is_name_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            return Err(self.err(ParseErrorKind::MalformedTag));
        }
        let name = &self.input[name_start..i];

        // Attributes.
        let mut attributes: Vec<(&'a str, Cow<'a, str>)> = Vec::new();
        loop {
            // Skip whitespace.
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                self.pos = i;
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            }
            match bytes[i] {
                b'>' => {
                    self.pos = i + 1;
                    self.stack.push(name);
                    self.seen_root = true;
                    return Ok(Event::StartElement { name, attributes, self_closing: false });
                }
                b'/' => {
                    if i + 1 >= bytes.len() || bytes[i + 1] != b'>' {
                        self.pos = i;
                        return Err(self.err(ParseErrorKind::MalformedTag));
                    }
                    self.pos = i + 2;
                    self.seen_root = true;
                    if self.stack.is_empty() {
                        self.root_done = true;
                    }
                    return Ok(Event::StartElement { name, attributes, self_closing: true });
                }
                _ => {
                    // Attribute name.
                    let attr_start = i;
                    while i < bytes.len() && is_name_byte(bytes[i]) {
                        i += 1;
                    }
                    if i == attr_start {
                        self.pos = i;
                        return Err(self.err(ParseErrorKind::MalformedTag));
                    }
                    let attr_name = &self.input[attr_start..i];
                    // Skip whitespace around '='.
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i >= bytes.len() || bytes[i] != b'=' {
                        self.pos = i;
                        return Err(self.err(ParseErrorKind::MalformedTag));
                    }
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i >= bytes.len() || (bytes[i] != b'"' && bytes[i] != b'\'') {
                        self.pos = i;
                        return Err(self.err(ParseErrorKind::MalformedTag));
                    }
                    let quote = bytes[i];
                    i += 1;
                    let val_start = i;
                    while i < bytes.len() && bytes[i] != quote {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        self.pos = i;
                        return Err(self.err(ParseErrorKind::UnexpectedEof));
                    }
                    let raw_value = &self.input[val_start..i];
                    i += 1; // closing quote
                    if attributes.iter().any(|(n, _)| *n == attr_name) {
                        self.pos = attr_start;
                        return Err(
                            self.err(ParseErrorKind::DuplicateAttribute(attr_name.to_string()))
                        );
                    }
                    let value = decode_entities(raw_value).map_err(|off| ParseError {
                        kind: ParseErrorKind::InvalidEntity,
                        offset: val_start + off,
                    })?;
                    attributes.push((attr_name, value));
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<Event<'a>, ParseError> {
        let start = self.pos;
        let rel_end = self.rest().find('<').unwrap_or(self.rest().len());
        let raw = &self.input[start..start + rel_end];
        self.pos = start + rel_end;
        let text = decode_entities(raw).map_err(|off| ParseError {
            kind: ParseErrorKind::InvalidEntity,
            offset: start + off,
        })?;
        Ok(Event::Text(text))
    }
}

/// Is `s` a plausible XML name (ASCII approximation + any non-ASCII)?
fn is_name(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(is_name_byte)
}

#[inline]
fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

/// Decode the predefined entities and numeric character references in `raw`.
///
/// Returns `Cow::Borrowed` when no `&` occurs. On failure, returns the byte
/// offset of the bad reference within `raw`.
pub fn decode_entities(raw: &str) -> Result<Cow<'_, str>, usize> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    let mut consumed = 0usize;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(consumed + amp)?;
        let entity = &after[..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) = entity.strip_prefix("#x").or(entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).map_err(|_| consumed + amp)?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().map_err(|_| consumed + amp)?
                } else {
                    return Err(consumed + amp);
                };
                out.push(char::from_u32(code).ok_or(consumed + amp)?);
            }
        }
        consumed += amp + 1 + semi + 1;
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<Event<'_>> {
        let mut reader = Reader::new(input);
        let mut out = Vec::new();
        while let Some(ev) = reader.next_event().expect("parse ok") {
            out.push(ev);
        }
        out
    }

    fn parse_err(input: &str) -> ParseErrorKind {
        let mut reader = Reader::new(input);
        loop {
            match reader.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected error for {input:?}"),
                Err(e) => return e.kind,
            }
        }
    }

    #[test]
    fn simple_element() {
        let evs = events("<a>hi</a>");
        assert_eq!(evs.len(), 3);
        assert!(matches!(&evs[0], Event::StartElement { name: "a", .. }));
        assert_eq!(evs[1], Event::Text(Cow::Borrowed("hi")));
        assert_eq!(evs[2], Event::EndElement { name: "a" });
    }

    #[test]
    fn nested_elements_and_depth() {
        let mut r = Reader::new("<a><b><c/></b></a>");
        assert!(matches!(r.next_event().unwrap(), Some(Event::StartElement { name: "a", .. })));
        assert_eq!(r.depth(), 1);
        assert!(matches!(r.next_event().unwrap(), Some(Event::StartElement { name: "b", .. })));
        assert_eq!(r.depth(), 2);
        assert!(matches!(
            r.next_event().unwrap(),
            Some(Event::StartElement { name: "c", self_closing: true, .. })
        ));
        assert_eq!(r.depth(), 2);
    }

    #[test]
    fn self_closing_root() {
        let evs = events("<a/>");
        assert_eq!(evs.len(), 1);
        assert!(matches!(&evs[0], Event::StartElement { self_closing: true, .. }));
    }

    #[test]
    fn attributes_double_and_single_quotes() {
        let evs = events(r#"<a x="1" y='two'/>"#);
        match &evs[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0], ("x", Cow::Borrowed("1")));
                assert_eq!(attributes[1], ("y", Cow::Borrowed("two")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_value_entities() {
        let evs = events(r#"<a x="a&amp;b&#65;"/>"#);
        match &evs[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].1, "a&bA");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_entities() {
        let evs = events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2; &#x41;&apos;&quot;</a>");
        assert_eq!(evs[1], Event::Text(Cow::Owned::<str>("1 < 2 && 3 > 2; A'\"".into())));
    }

    #[test]
    fn cdata_is_raw_text() {
        let evs = events("<a><![CDATA[<not> &parsed;]]></a>");
        assert_eq!(evs[1], Event::Text(Cow::Borrowed("<not> &parsed;")));
    }

    #[test]
    fn comments_pis_doctype() {
        let evs =
            events("<?xml version=\"1.0\"?><!DOCTYPE bib [<!ELEMENT bib (book*)>]><!--c--><a/>");
        assert!(matches!(
            &evs[0],
            Event::ProcessingInstruction { target: "xml", .. }
        ));
        assert!(matches!(&evs[1], Event::Doctype(_)));
        assert_eq!(evs[2], Event::Comment("c"));
        assert!(matches!(&evs[3], Event::StartElement { name: "a", .. }));
    }

    #[test]
    fn mismatched_tag_is_error() {
        assert!(matches!(
            parse_err("<a><b></a></b>"),
            ParseErrorKind::MismatchedTag { .. }
        ));
    }

    #[test]
    fn unclosed_is_error() {
        assert!(matches!(parse_err("<a><b>"), ParseErrorKind::UnclosedElements(_)));
    }

    #[test]
    fn multiple_roots_is_error() {
        assert_eq!(parse_err("<a/><b/>"), ParseErrorKind::MultipleRoots);
    }

    #[test]
    fn text_outside_root_is_error() {
        assert_eq!(parse_err("hello<a/>"), ParseErrorKind::ContentOutsideRoot);
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(parse_err(""), ParseErrorKind::NoRootElement);
        assert_eq!(parse_err("   \n "), ParseErrorKind::NoRootElement);
    }

    #[test]
    fn bad_entity_is_error() {
        assert_eq!(parse_err("<a>&nosuch;</a>"), ParseErrorKind::InvalidEntity);
        assert_eq!(parse_err("<a>&#xZZ;</a>"), ParseErrorKind::InvalidEntity);
        assert_eq!(parse_err("<a>& loose</a>"), ParseErrorKind::InvalidEntity);
    }

    #[test]
    fn duplicate_attribute_is_error() {
        assert!(matches!(
            parse_err(r#"<a x="1" x="2"/>"#),
            ParseErrorKind::DuplicateAttribute(_)
        ));
    }

    #[test]
    fn malformed_tags_are_errors() {
        assert_eq!(parse_err("<a><></a>"), ParseErrorKind::MalformedTag);
        assert_eq!(parse_err("<a x></a>"), ParseErrorKind::MalformedTag);
        assert_eq!(parse_err("<a x=1></a>"), ParseErrorKind::MalformedTag);
    }

    #[test]
    fn eof_inside_tag() {
        assert_eq!(parse_err("<a"), ParseErrorKind::UnexpectedEof);
        assert_eq!(parse_err("<a x=\"1"), ParseErrorKind::UnexpectedEof);
        assert_eq!(parse_err("<!--never closed"), ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn whitespace_text_is_preserved_by_reader() {
        // The reader reports all text; dropping whitespace-only runs is the
        // tree builder's policy decision.
        let evs = events("<a> <b/> </a>");
        assert_eq!(evs[1], Event::Text(Cow::Borrowed(" ")));
    }

    #[test]
    fn decode_entities_borrows_when_clean() {
        assert!(matches!(decode_entities("plain").unwrap(), Cow::Borrowed(_)));
        assert!(matches!(decode_entities("a&lt;b").unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..500 {
            s.push_str("<d>");
        }
        for _ in 0..500 {
            s.push_str("</d>");
        }
        let evs = events(&s);
        assert_eq!(evs.len(), 1000);
    }
}
