//! Format-sniffing document loading: one entry point that accepts both
//! XML text and the `.blsm` succinct snapshot format (see
//! [`crate::succinct`]), dispatching on the `BLM1` magic.
//!
//! The CLI (`blossom query FILE …`) and the query server's document
//! catalog (`POST /load`) share this path, so a file that works in one
//! works in the other. Snapshots matter for the catalog: decoding a
//! `.blsm` skips tokenization entirely, so a server can (re)populate its
//! catalog from snapshots far faster than from the source XML.

use crate::document::Document;
use crate::stats::DocStats;
use crate::succinct;

/// Build a document from raw file bytes: `.blsm` snapshots are decoded,
/// anything else is parsed as UTF-8 XML text. Errors are rendered as a
/// single human-readable line prefixed with `origin` (a file name or a
/// catalog entry name) for CLI/server diagnostics.
pub fn document_from_bytes(bytes: &[u8], origin: &str) -> Result<Document, String> {
    if bytes.starts_with(b"BLM1") {
        return succinct::decode(bytes).map_err(|e| format!("{origin}: {e}"));
    }
    let text = std::str::from_utf8(bytes).map_err(|_| format!("{origin}: not UTF-8"))?;
    Document::parse_str(text).map_err(|e| format!("{origin}: {e}"))
}

/// [`document_from_bytes`] plus statistics: snapshots carrying an
/// embedded stats section (see [`succinct::decode_with_stats`]) skip the
/// analysis passes entirely; XML text and pre-stats snapshots fall back
/// to computing them. The server catalog and the cost-based planner both
/// load through this path.
pub fn document_and_stats_from_bytes(
    bytes: &[u8],
    origin: &str,
) -> Result<(Document, DocStats), String> {
    if bytes.starts_with(b"BLM1") {
        let (doc, stats) =
            succinct::decode_with_stats(bytes).map_err(|e| format!("{origin}: {e}"))?;
        let stats = stats.unwrap_or_else(|| doc.stats());
        return Ok((doc, stats));
    }
    let doc = document_from_bytes(bytes, origin)?;
    let stats = doc.stats();
    Ok((doc, stats))
}

/// [`document_from_bytes`] over a file path.
pub fn document_from_path(path: &str) -> Result<Document, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    document_from_bytes(&bytes, path)
}

/// [`document_and_stats_from_bytes`] over a file path.
pub fn document_and_stats_from_path(path: &str) -> Result<(Document, DocStats), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    document_and_stats_from_bytes(&bytes, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_bytes_parse() {
        let doc = document_from_bytes(b"<r><a/></r>", "inline").unwrap();
        assert_eq!(doc.len(), 3);
    }

    #[test]
    fn snapshot_bytes_decode() {
        let doc = Document::parse_str("<r><a>x</a></r>").unwrap();
        let snap = succinct::encode(&doc);
        let back = document_from_bytes(&snap, "snap").unwrap();
        assert_eq!(crate::writer::to_string(&back), crate::writer::to_string(&doc));
    }

    #[test]
    fn stats_come_embedded_or_computed() {
        let doc = Document::parse_str("<r><a>x</a><a/></r>").unwrap();
        let snap = succinct::encode(&doc);
        let (_, from_snap) = document_and_stats_from_bytes(&snap, "snap").unwrap();
        let (_, from_xml) = document_and_stats_from_bytes(b"<r><a>x</a><a/></r>", "xml").unwrap();
        assert_eq!(from_snap, doc.stats());
        assert_eq!(from_xml, doc.stats());
    }

    #[test]
    fn errors_are_one_line_and_name_the_origin() {
        let err = document_from_bytes(b"<r><unclosed>", "bad.xml").unwrap_err();
        assert!(err.starts_with("bad.xml: "), "{err}");
        assert!(!err.contains('\n'), "{err}");
        let err = document_from_path("/nonexistent/never.xml").unwrap_err();
        assert!(err.contains("/nonexistent/never.xml"), "{err}");
        // A corrupt snapshot fails with a decode error, not a parse error.
        let err = document_from_bytes(b"BLM1garbage", "x.blsm").unwrap_err();
        assert!(err.starts_with("x.blsm: "), "{err}");
    }
}
