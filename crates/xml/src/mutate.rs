//! Document mutations: subtree insert / delete / replace.
//!
//! Documents stay immutable — a mutation produces a **new** [`Document`]
//! (with a fresh [`Document::uid`]) by splicing the struct-of-arrays
//! columns. Because node ids are preorder positions, removing or
//! inserting a subtree is a contiguous column splice: ids before the
//! splice point are unchanged, ids after it shift by one constant
//! `delta = inserted − removed`, and only the ancestors of the splice
//! point need their region `end` recomputed. That locality is what makes
//! incremental [`crate::TagIndex`] maintenance (see [`TagIndex::splice`])
//! cheap relative to a serialize → reparse → reindex rebuild.
//!
//! Nodes are addressed with [`Dewey`] order-keys resolved against the
//! *current* snapshot: component `k` selects the `k`-th child (1-based,
//! counting elements and text nodes alike), and `1` is the root element.
//! Dewey keys are stable across the splice for every node outside the
//! mutated sibling run, so a mutation sequence addresses each step
//! against the document produced by the previous one.
//!
//! The splice preserves the two builder invariants the rest of the
//! system relies on: no whitespace-only text nodes (fragments are parsed
//! with the same default [`crate::ParseOptions`] as documents) and no
//! adjacent text siblings (a delete that would leave two text nodes
//! touching merges them). Consequently serializing a mutated document
//! and reparsing it reproduces the same arena node for node — the
//! property the mutation differential oracle checks.
//!
//! [`TagIndex::splice`]: crate::TagIndex::splice

use crate::colsrc::{Col, TextStore};
use crate::dewey::Dewey;
use crate::document::{
    fresh_uid, pack, Document, NodeId, KIND_ELEMENT, KIND_MASK, KIND_TEXT, NIL,
};
use crate::fxhash::FxHashMap;
use crate::symbol::Sym;
use std::fmt;

/// One subtree-granularity edit, addressed by Dewey order-keys.
///
/// The line format (used by the CLI, `POST /update` bodies and diff
/// fixtures) is one mutation per line:
///
/// ```text
/// insert <parent-dewey> <pos> <xml-fragment>
/// delete <dewey>
/// replace <dewey> <xml-fragment>
/// ```
///
/// where `<pos>` is the 0-based child position to insert at and
/// `<xml-fragment>` is a single element serialized on one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Insert `fragment` as the `pos`-th child (0-based) of `parent`.
    Insert {
        /// Dewey key of the parent element.
        parent: Dewey,
        /// 0-based insertion position among the parent's children.
        pos: u32,
        /// Single-element XML fragment to insert.
        fragment: String,
    },
    /// Delete the subtree rooted at `target`.
    Delete {
        /// Dewey key of the node to remove (must not be the root element).
        target: Dewey,
    },
    /// Replace the subtree rooted at `target` with `fragment`.
    Replace {
        /// Dewey key of the node to replace.
        target: Dewey,
        /// Single-element XML fragment taking its place.
        fragment: String,
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::Insert { parent, pos, fragment } => {
                write!(f, "insert {parent} {pos} {fragment}")
            }
            Mutation::Delete { target } => write!(f, "delete {target}"),
            Mutation::Replace { target, fragment } => write!(f, "replace {target} {fragment}"),
        }
    }
}

/// Parse one mutation line (see [`Mutation`] for the grammar).
pub fn parse_mutation(line: &str) -> Result<Mutation, String> {
    let line = line.trim();
    let (op, rest) = line
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("mutation {line:?}: expected `insert`, `delete` or `replace` followed by arguments"))?;
    let rest = rest.trim_start();
    match op {
        "insert" => {
            let (dewey, rest) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "insert needs `<parent-dewey> <pos> <fragment>`".to_string())?;
            let (pos, fragment) = rest
                .trim_start()
                .split_once(char::is_whitespace)
                .ok_or_else(|| "insert needs `<parent-dewey> <pos> <fragment>`".to_string())?;
            let parent: Dewey = dewey.parse().map_err(|e| format!("{e}"))?;
            let pos: u32 =
                pos.parse().map_err(|_| format!("insert position {pos:?} is not a number"))?;
            let fragment = fragment.trim_start().to_string();
            if fragment.is_empty() {
                return Err("insert needs a non-empty fragment".to_string());
            }
            Ok(Mutation::Insert { parent, pos, fragment })
        }
        "delete" => {
            let target: Dewey = rest.trim().parse().map_err(|e| format!("{e}"))?;
            Ok(Mutation::Delete { target })
        }
        "replace" => {
            let (dewey, fragment) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "replace needs `<dewey> <fragment>`".to_string())?;
            let target: Dewey = dewey.parse().map_err(|e| format!("{e}"))?;
            let fragment = fragment.trim_start().to_string();
            if fragment.is_empty() {
                return Err("replace needs a non-empty fragment".to_string());
            }
            Ok(Mutation::Replace { target, fragment })
        }
        other => Err(format!("unknown mutation op {other:?} (want insert/delete/replace)")),
    }
}

/// Parse a newline-separated mutation script. Blank lines and lines
/// starting with `#` are skipped; errors carry the 1-based line number.
pub fn parse_mutations(text: &str) -> Result<Vec<Mutation>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_mutation(trimmed).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Resolve a Dewey key against `doc`: `1` is the root element, each
/// further component `k` the `k`-th child (1-based, elements and text).
pub fn resolve(doc: &Document, d: &Dewey) -> Result<NodeId, String> {
    let comps = d.components();
    if comps[0] != 1 {
        return Err(format!("Dewey key {d} must start at 1 (the root element)"));
    }
    let mut cur = doc.root_element().ok_or_else(|| "document has no root element".to_string())?;
    for (depth, &k) in comps[1..].iter().enumerate() {
        if k == 0 {
            return Err(format!("Dewey key {d}: components are 1-based, got 0"));
        }
        if !doc.is_element(cur) {
            return Err(format!("Dewey key {d}: component {} descends into a text node", depth + 2));
        }
        cur = doc.children(cur).nth(k as usize - 1).ok_or_else(|| {
            format!(
                "Dewey key {d}: {} has only {} children, component {} wants child {k}",
                Dewey::new(comps[..depth + 1].to_vec()),
                doc.children(cur).count(),
                depth + 2,
            )
        })?;
    }
    Ok(cur)
}

/// The Dewey key of `n` under the numbering [`resolve`] uses. `n` must
/// not be the virtual document node.
pub fn dewey_of(doc: &Document, n: NodeId) -> Dewey {
    assert_ne!(n, NodeId::DOCUMENT, "the document node has no Dewey key");
    let mut comps = Vec::new();
    let mut cur = n;
    while let Some(p) = doc.parent(cur) {
        let pos = doc
            .children(p)
            .position(|c| c == cur)
            .expect("child lists are consistent") as u32
            + 1;
        comps.push(pos);
        cur = p;
    }
    comps.reverse();
    Dewey::new(comps)
}

/// The column-splice coordinates of one applied mutation: nodes
/// `[start, start + removed)` left the arena, `inserted` new nodes took
/// their place at `start`, every later id shifted by
/// `inserted − removed`. This is exactly what [`crate::TagIndex::splice`]
/// needs to patch posting lists without a rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splice {
    /// First arena id of the spliced range.
    pub start: u32,
    /// Number of removed nodes (0 for a pure insert).
    pub removed: u32,
    /// Number of inserted nodes (0 for a pure delete).
    pub inserted: u32,
}

/// Apply one mutation, returning the new document and its [`Splice`].
pub fn apply(doc: &Document, m: &Mutation) -> Result<(Document, Splice), String> {
    match m {
        Mutation::Insert { parent, pos, fragment } => {
            let p = resolve(doc, parent)?;
            if !doc.is_element(p) {
                return Err(format!("insert parent {parent} is a text node"));
            }
            let frag = parse_fragment(fragment)?;
            let children: Vec<NodeId> = doc.children(p).collect();
            if *pos as usize > children.len() {
                return Err(format!(
                    "insert position {pos} out of range: {parent} has {} children",
                    children.len()
                ));
            }
            let pos = *pos as usize;
            let s = children.get(pos).map_or(doc.last_descendant(p).0 + 1, |c| c.0);
            let prev_child = pos.checked_sub(1).map(|i| children[i].0);
            let following = children.get(pos).map(|c| c.0);
            let new = splice(doc, p.0, s, 0, Some(&frag), prev_child, following, None)?;
            Ok((new, Splice { start: s, removed: 0, inserted: frag.len() as u32 - 1 }))
        }
        Mutation::Delete { target } => {
            let t = resolve(doc, target)?;
            let p = doc.parent(t).expect("resolve never returns the document node");
            if p == NodeId::DOCUMENT {
                return Err("cannot delete the root element".to_string());
            }
            let s = t.0;
            let mut r = doc.last_descendant(t).0 + 1 - s;
            let prev_child = prev_sibling(doc, p, t);
            let mut following = doc.next_sibling(t);
            let mut merge = None;
            // Removing an element between two text siblings would leave
            // them adjacent; swallow the following text node into the
            // preceding one to preserve the no-adjacent-text invariant.
            if let (Some(pc), Some(f)) = (prev_child, following) {
                if doc.text(NodeId(pc)).is_some() {
                    if let Some(ftext) = doc.text(f) {
                        merge = Some((pc, ftext));
                        r += 1;
                        following = doc.next_sibling(f);
                    }
                }
            }
            let new = splice(doc, p.0, s, r, None, prev_child, following.map(|n| n.0), merge)?;
            Ok((new, Splice { start: s, removed: r, inserted: 0 }))
        }
        Mutation::Replace { target, fragment } => {
            let t = resolve(doc, target)?;
            let p = doc.parent(t).expect("resolve never returns the document node");
            let frag = parse_fragment(fragment)?;
            let s = t.0;
            let r = doc.last_descendant(t).0 + 1 - s;
            let prev_child = prev_sibling(doc, p, t);
            let following = doc.next_sibling(t).map(|n| n.0);
            let new = splice(doc, p.0, s, r, Some(&frag), prev_child, following, None)?;
            Ok((new, Splice { start: s, removed: r, inserted: frag.len() as u32 - 1 }))
        }
    }
}

/// Apply a whole mutation script in order.
pub fn apply_all(doc: &Document, muts: &[Mutation]) -> Result<Document, String> {
    let mut cur: Option<Document> = None;
    for (i, m) in muts.iter().enumerate() {
        let base = cur.as_ref().unwrap_or(doc);
        let (next, _) = apply(base, m).map_err(|e| format!("mutation {}: {e}", i + 1))?;
        cur = Some(next);
    }
    Ok(cur.unwrap_or_else(|| {
        // An empty script still yields a fresh, independent snapshot.
        splice(doc, 0, doc.len() as u32, 0, None, None, None, None)
            .expect("identity splice cannot fail")
    }))
}

/// Parse a mutation fragment: exactly one element, default parse options.
fn parse_fragment(fragment: &str) -> Result<Document, String> {
    let frag =
        Document::parse_str(fragment).map_err(|e| format!("fragment {fragment:?}: {e}"))?;
    let root = frag.first_child(NodeId::DOCUMENT);
    if frag.len() < 2
        || root != Some(NodeId(1))
        || frag.next_sibling(NodeId(1)).is_some()
        || !frag.is_element(NodeId(1))
    {
        return Err(format!("fragment {fragment:?} must be a single element"));
    }
    Ok(frag)
}

/// The sibling of `t` immediately before it under `p`, if any.
fn prev_sibling(doc: &Document, p: NodeId, t: NodeId) -> Option<u32> {
    let mut prev = None;
    for c in doc.children(p) {
        if c == t {
            return prev;
        }
        prev = Some(c.0);
    }
    None
}

/// Splice the arena columns: remove nodes `[s, s+r)` (a whole-subtree
/// run under parent `p`, possibly extended by a merged text sibling),
/// insert the fragment's nodes at `s`, shift the suffix by
/// `delta = m − r`, and recompute the region `end` of the splice-point
/// ancestors. `prev_child` / `following` are the old ids of the siblings
/// bracketing the spliced run; `merge` appends text to a prefix text
/// node (the delete text-merge).
///
/// The identity splice (`p = 0, s = len, r = 0`, no fragment) copies the
/// document under a fresh uid.
#[allow(clippy::too_many_arguments)]
fn splice(
    doc: &Document,
    p: u32,
    s: u32,
    r: u32,
    frag: Option<&Document>,
    prev_child: Option<u32>,
    following: Option<u32>,
    merge: Option<(u32, &str)>,
) -> Result<Document, String> {
    let n = doc.len() as u32;
    // `s == n` with nothing removed or inserted is the identity splice:
    // a plain copy under a fresh uid (used for empty mutation scripts).
    let identity = s >= n && r == 0 && frag.is_none();
    let m = frag.map_or(0, |f| f.len() as u32 - 1);
    debug_assert!(identity || s >= 1);
    debug_assert!(s + r <= n);

    if let Some(f) = frag {
        let deepest = f.level.iter().copied().max().unwrap_or(0) as u32;
        if doc.level[p as usize] as u32 + deepest > u16::MAX as u32 {
            return Err("mutation would nest elements deeper than 65535 levels".to_string());
        }
    }

    // Ancestor chain of the splice parent: the only prefix nodes whose
    // region `end` can change. Identified by walking parents — never by
    // matching `last_desc` values, which non-ancestors can share.
    let mut on_chain = vec![false; s as usize];
    if !identity {
        let mut a = p;
        loop {
            on_chain[a as usize] = true;
            let up = doc.parent[a as usize];
            if up == NIL {
                break;
            }
            a = up;
        }
    }

    let n_new = (n - r + m) as usize;
    let mut parent = Vec::with_capacity(n_new);
    let mut first_child = Vec::with_capacity(n_new);
    let mut next_sibling = Vec::with_capacity(n_new);
    let mut last_desc = Vec::with_capacity(n_new);
    let mut level = Vec::with_capacity(n_new);
    let mut kind_sym = Vec::with_capacity(n_new);
    let mut texts: Vec<Box<str>> = Vec::new();
    let mut symbols = doc.symbols.clone();

    // Pointer remap: prefix ids are stable, suffix ids shift by m − r.
    // A remaining pointer *into* the removed range can only be the value
    // `s` (from `prev_child` / `first_child[p]`) and is overwritten by
    // the fix-ups below.
    let map = |v: u32| -> u32 {
        if v == NIL || v < s {
            v
        } else if v >= s + r {
            v - r + m
        } else {
            NIL
        }
    };

    // Prefix [0, s): ids unchanged; ancestors of the splice point get a
    // recomputed region end, everything else keeps its label.
    for v in 0..s as usize {
        parent.push(map(doc.parent[v]));
        first_child.push(map(doc.first_child[v]));
        next_sibling.push(map(doc.next_sibling[v]));
        let old_ld = doc.last_desc[v];
        last_desc.push(if old_ld >= s + r {
            old_ld - r + m
        } else if on_chain[v] {
            // The subtree ended inside the spliced run: it now ends at
            // the last fragment node (or just before the splice point
            // when the run was purely deleted).
            s + m - 1
        } else {
            old_ld
        });
        level.push(doc.level[v]);
        let packed = doc.kind_sym[v];
        kind_sym.push(if packed & KIND_MASK == KIND_TEXT {
            let old_idx = (packed >> crate::document::KIND_BITS) as usize;
            let idx = texts.len() as u32;
            match merge {
                Some((mid, extra)) if mid == v as u32 => {
                    let mut merged = String::from(doc.texts.get(old_idx));
                    merged.push_str(extra);
                    texts.push(merged.into_boxed_str());
                }
                _ => texts.push(doc.texts.get(old_idx).into()),
            }
            pack(KIND_TEXT, idx)
        } else {
            packed
        });
    }

    // Fragment nodes take ids [s, s+m).
    if let Some(f) = frag {
        let fmap = |v: u32| if v == NIL { NIL } else { s + v - 1 };
        for fid in 1..f.len() {
            parent.push(if fid == 1 { p } else { fmap(f.parent[fid]) });
            first_child.push(fmap(f.first_child[fid]));
            next_sibling.push(fmap(f.next_sibling[fid]));
            last_desc.push(s + f.last_desc[fid] - 1);
            level.push(doc.level[p as usize] + f.level[fid]);
            let packed = f.kind_sym[fid];
            kind_sym.push(if packed & KIND_MASK == KIND_ELEMENT {
                let name = f.symbols.name(Sym(packed >> crate::document::KIND_BITS));
                pack(KIND_ELEMENT, symbols.intern(name).0)
            } else {
                let old_idx = (packed >> crate::document::KIND_BITS) as usize;
                let idx = texts.len() as u32;
                texts.push(f.texts.get(old_idx).into());
                pack(KIND_TEXT, idx)
            });
        }
    }

    // Suffix [s+r, n): ids shift by m − r; levels are depth-stable.
    for v in (s + r) as usize..n as usize {
        parent.push(map(doc.parent[v]));
        first_child.push(map(doc.first_child[v]));
        next_sibling.push(map(doc.next_sibling[v]));
        last_desc.push(doc.last_desc[v] - r + m);
        level.push(doc.level[v]);
        let packed = doc.kind_sym[v];
        kind_sym.push(if packed & KIND_MASK == KIND_TEXT {
            let old_idx = (packed >> crate::document::KIND_BITS) as usize;
            let idx = texts.len() as u32;
            texts.push(doc.texts.get(old_idx).into());
            pack(KIND_TEXT, idx)
        } else {
            packed
        });
    }

    // Stitch the sibling run around the splice point.
    if !identity {
        let following_new = following.map(|v| {
            debug_assert!(v >= s + r, "the following sibling is outside the spliced run");
            v - r + m
        });
        let link = if m > 0 {
            next_sibling[s as usize] = following_new.unwrap_or(NIL);
            s
        } else {
            following_new.unwrap_or(NIL)
        };
        match prev_child {
            Some(pc) => next_sibling[pc as usize] = link,
            None => first_child[p as usize] = link,
        }
    }

    // Attributes: rekey the survivors, intern the fragment's.
    let mut attrs: FxHashMap<u32, Vec<(Sym, Box<str>)>> = FxHashMap::default();
    for (&k, v) in &doc.attrs {
        if k < s {
            attrs.insert(k, v.clone());
        } else if k >= s + r {
            attrs.insert(k - r + m, v.clone());
        }
    }
    if let Some(f) = frag {
        for (&k, v) in &f.attrs {
            let rekeyed: Vec<(Sym, Box<str>)> = v
                .iter()
                .map(|(sym, val)| (symbols.intern(f.symbols.name(*sym)), val.clone()))
                .collect();
            attrs.insert(s + k - 1, rekeyed);
        }
    }

    Ok(Document {
        parent: Col::Owned(parent),
        first_child: Col::Owned(first_child),
        next_sibling: Col::Owned(next_sibling),
        last_desc: Col::Owned(last_desc),
        level: Col::Owned(level),
        kind_sym: Col::Owned(kind_sym),
        texts: TextStore::Owned(texts),
        attrs,
        symbols,
        uid: fresh_uid(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer;
    use crate::TagIndex;

    fn parse(m: &str) -> Mutation {
        parse_mutation(m).unwrap()
    }

    /// Column-for-column structural equality, independent of uid.
    fn assert_same_arena(a: &Document, b: &Document, context: &str) {
        assert_eq!(a.len(), b.len(), "{context}: node count");
        for id in 0..a.len() as u32 {
            let n = NodeId(id);
            assert_eq!(a.kind(n), b.kind(n).clone_tag(a, b), "{context}: kind of n{id}");
            assert_eq!(a.parent(n), b.parent(n), "{context}: parent of n{id}");
            assert_eq!(a.first_child(n), b.first_child(n), "{context}: first_child of n{id}");
            assert_eq!(a.next_sibling(n), b.next_sibling(n), "{context}: next_sibling of n{id}");
            assert_eq!(
                a.last_descendant(n),
                b.last_descendant(n),
                "{context}: last_desc of n{id}"
            );
            assert_eq!(a.level(n), b.level(n), "{context}: level of n{id}");
            assert_eq!(a.tag_name(n), b.tag_name(n), "{context}: tag of n{id}");
            assert_eq!(a.text(n), b.text(n), "{context}: text of n{id}");
            let attrs_a: Vec<(&str, &str)> = a
                .attributes(n)
                .iter()
                .map(|(s, v)| (a.symbols().name(*s), v.as_ref()))
                .collect();
            let attrs_b: Vec<(&str, &str)> = b
                .attributes(n)
                .iter()
                .map(|(s, v)| (b.symbols().name(*s), v.as_ref()))
                .collect();
            assert_eq!(attrs_a, attrs_b, "{context}: attrs of n{id}");
        }
    }

    /// Tags live in per-document symbol tables; compare by name.
    trait CloneTag {
        fn clone_tag(self, a: &Document, b: &Document) -> crate::NodeKind;
    }
    impl CloneTag for crate::NodeKind {
        fn clone_tag(self, a: &Document, b: &Document) -> crate::NodeKind {
            match self {
                crate::NodeKind::Element(sym) => {
                    let name = b.symbols().name(sym);
                    crate::NodeKind::Element(a.sym(name).unwrap_or(Sym(u32::MAX >> 2)))
                }
                other => other,
            }
        }
    }

    /// Apply `m` and check the spliced arena against a serialize → edit
    /// is impossible, so: against a full reparse of its own serialization
    /// (the rebuild-from-scratch reference), plus the expected XML.
    fn check(src: &str, m: &str, expected: &str) -> Document {
        let doc = Document::parse_str(src).unwrap();
        let (new, sp) = apply(&doc, &parse(m)).unwrap();
        let serialized = writer::to_string(&new);
        assert_eq!(serialized, expected, "mutated serialization for {m:?} on {src:?}");
        let reparsed = Document::parse_str(&serialized).unwrap();
        assert_same_arena(&new, &reparsed, &format!("{m:?} on {src:?}"));
        assert_ne!(new.uid(), doc.uid(), "mutation must mint a fresh uid");
        // The incremental index patch must equal a from-scratch build.
        let patched = TagIndex::build(&doc).splice(sp.start, sp.removed, sp.inserted, &new);
        let rebuilt = TagIndex::build(&new);
        for (idx, _) in new.symbols().iter() {
            let (a, b) = (patched.postings(idx), rebuilt.postings(idx));
            assert_eq!(a.starts(), b.starts(), "{m:?}: starts of {:?}", new.symbols().name(idx));
            for i in 0..a.len() {
                assert_eq!(a.end(i), b.end(i), "{m:?}: end[{i}]");
                assert_eq!(a.level(i), b.level(i), "{m:?}: level[{i}]");
            }
        }
        new
    }

    #[test]
    fn insert_positions() {
        check("<a><b/><c/></a>", "insert 1 0 <x/>", "<a><x/><b/><c/></a>");
        check("<a><b/><c/></a>", "insert 1 1 <x/>", "<a><b/><x/><c/></a>");
        check("<a><b/><c/></a>", "insert 1 2 <x/>", "<a><b/><c/><x/></a>");
        check("<a/>", "insert 1 0 <x>t</x>", "<a><x>t</x></a>");
        check("<a><b><c/></b></a>", "insert 1.1 1 <x><y/>deep</x>", "<a><b><c/><x><y/>deep</x></b></a>");
    }

    #[test]
    fn insert_subtree_with_attributes_and_new_tags() {
        let new = check(
            r#"<a><b k="1"/></a>"#,
            r#"insert 1 1 <z q="2"><w/>txt</z>"#,
            r#"<a><b k="1"/><z q="2"><w/>txt</z></a>"#,
        );
        assert!(new.sym("z").is_some() && new.sym("w").is_some() && new.sym("q").is_some());
    }

    #[test]
    fn delete_leaf_and_subtree() {
        check("<a><b/><c/></a>", "delete 1.1", "<a><c/></a>");
        check("<a><b/><c/></a>", "delete 1.2", "<a><b/></a>");
        check("<a><b><c/><d/></b><e/></a>", "delete 1.1", "<a><e/></a>");
        check("<a><b><c/><d/></b><e/></a>", "delete 1.1.2", "<a><b><c/></b><e/></a>");
    }

    #[test]
    fn delete_merges_adjacent_text() {
        let new = check("<a>x<b/>y</a>", "delete 1.2", "<a>xy</a>");
        let a = new.root_element().unwrap();
        assert_eq!(new.children(a).count(), 1, "merged into a single text node");
        check("<a>x<b/>y<c/>z</a>", "delete 1.4", "<a>x<b/>yz</a>");
        // No merge when only one neighbor is text.
        check("<a><b/>y<c/></a>", "delete 1.3", "<a><b/>y</a>");
        check("<a>x<b/><c/></a>", "delete 1.2", "<a>x<c/></a>");
    }

    #[test]
    fn delete_text_node() {
        check("<a>x<b/>y</a>", "delete 1.1", "<a><b/>y</a>");
        check("<a>x<b/>y</a>", "delete 1.3", "<a>x<b/></a>");
    }

    #[test]
    fn replace_subtrees() {
        check("<a><b><c/></b><d/></a>", "replace 1.1 <x>t</x>", "<a><x>t</x><d/></a>");
        check("<a><b/><d/></a>", "replace 1.2 <x><y/><z/></x>", "<a><b/><x><y/><z/></x></a>");
        check("<a><b/></a>", "replace 1 <r><s/></r>", "<r><s/></r>");
        check("<a>x<b/>y</a>", "replace 1.2 <c/>", "<a>x<c/>y</a>");
    }

    #[test]
    fn sequences_compose() {
        let doc = Document::parse_str("<a><b/><c/></a>").unwrap();
        let muts = parse_mutations(
            "insert 1 2 <d>t</d>\n# a comment\n\ndelete 1.1\nreplace 1.2 <e/>\n",
        )
        .unwrap();
        let out = apply_all(&doc, &muts).unwrap();
        assert_eq!(writer::to_string(&out), "<a><c/><e/></a>");
        let identity = apply_all(&doc, &[]).unwrap();
        assert_eq!(writer::to_string(&identity), "<a><b/><c/></a>");
        assert_ne!(identity.uid(), doc.uid());
        assert_same_arena(&identity, &doc, "identity splice");
    }

    #[test]
    fn validation_errors() {
        let doc = Document::parse_str("<a><b/>t</a>").unwrap();
        let err = |m: &str| apply(&doc, &parse(m)).unwrap_err();
        assert!(err("delete 1").contains("root element"));
        assert!(err("delete 1.9").contains("children"));
        assert!(err("insert 1.2 0 <x/>").contains("text node"));
        assert!(err("insert 1 7 <x/>").contains("out of range"));
        assert!(err("insert 1 0 <x/><y/>").contains("fragment"));
        assert!(err("insert 1 0 <x/>junk").contains("fragment"));
        assert!(err("insert 1 0 <x>").contains("fragment"));
        assert!(resolve(&doc, &"2".parse().unwrap()).is_err());
        assert!(resolve(&doc, &"1.0".parse().unwrap()).is_err());
        assert!(parse_mutation("frobnicate 1").is_err());
        assert!(parse_mutation("insert 1").is_err());
        assert!(parse_mutations("delete 1.1\nbogus\n").unwrap_err().contains("line 2"));
    }

    #[test]
    fn display_parse_roundtrip() {
        for m in ["insert 1.2 0 <x>t</x>", "delete 1.3.1", "replace 1 <r><s/></r>"] {
            assert_eq!(parse(m).to_string(), m);
        }
    }

    #[test]
    fn dewey_roundtrip() {
        let doc = Document::parse_str("<a><b>t<c/></b><d><e/><f/></d></a>").unwrap();
        for id in 1..doc.len() as u32 {
            let n = NodeId(id);
            let d = dewey_of(&doc, n);
            assert_eq!(resolve(&doc, &d).unwrap(), n, "roundtrip of {d}");
        }
        assert_eq!(dewey_of(&doc, doc.root_element().unwrap()).to_string(), "1");
    }

    #[test]
    fn splice_coordinates_expose_the_shift() {
        let doc = Document::parse_str("<a><b><c/></b><d/></a>").unwrap();
        let (_, sp) = apply(&doc, &parse("delete 1.1")).unwrap();
        assert_eq!(sp, Splice { start: 2, removed: 2, inserted: 0 });
        let (_, sp) = apply(&doc, &parse("insert 1 0 <x><y/></x>")).unwrap();
        assert_eq!(sp, Splice { start: 2, removed: 0, inserted: 2 });
        let (_, sp) = apply(&doc, &parse("replace 1.1 <x/>")).unwrap();
        assert_eq!(sp, Splice { start: 2, removed: 2, inserted: 1 });
    }
}
