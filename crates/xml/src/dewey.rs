//! Dewey identifiers.
//!
//! The paper addresses returning nodes of a pattern tree with Dewey IDs
//! (e.g. `1.1.2`): the root is `1`, its i-th child appends `.i`. The same
//! type doubles as a node label when callers need hierarchical ids for
//! document nodes (see [`crate::Document`]-based helpers in `blossom-core`).
//!
//! Ordering is lexicographic on components, which coincides with document
//! order when Dewey IDs label tree nodes.

use std::fmt;
use std::str::FromStr;

/// A hierarchical dot-separated identifier: `1`, `1.2`, `1.2.1`, ...
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Dewey(Vec<u32>);

impl Dewey {
    /// The root id `1`.
    pub fn root() -> Dewey {
        Dewey(vec![1])
    }

    /// Build from components. Panics on an empty component list.
    pub fn new(components: Vec<u32>) -> Dewey {
        assert!(!components.is_empty(), "Dewey id needs at least one component");
        Dewey(components)
    }

    /// Components of the id.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Number of components (depth; root = 1).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The `child_index`-th child (1-based), e.g. `1.2`.child(3) = `1.2.3`.
    pub fn child(&self, child_index: u32) -> Dewey {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(child_index);
        Dewey(v)
    }

    /// Parent id, or `None` for a root.
    pub fn parent(&self) -> Option<Dewey> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(Dewey(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Is `self` a proper ancestor of `other`?
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        other.0.len() > self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Is `self` the parent of `other`?
    pub fn is_parent_of(&self, other: &Dewey) -> bool {
        other.0.len() == self.0.len() + 1 && other.0[..self.0.len()] == self.0[..]
    }

    /// Last component (1-based sibling position).
    pub fn position(&self) -> u32 {
        *self.0.last().unwrap()
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a Dewey id from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeweyParseError(pub String);

impl fmt::Display for DeweyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Dewey id: {:?}", self.0)
    }
}

impl std::error::Error for DeweyParseError {}

impl FromStr for Dewey {
    type Err = DeweyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let components: Result<Vec<u32>, _> = s.split('.').map(|p| p.parse::<u32>()).collect();
        match components {
            Ok(v) if !v.is_empty() => Ok(Dewey(v)),
            _ => Err(DeweyParseError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let d: Dewey = "1.2.13".parse().unwrap();
        assert_eq!(d.to_string(), "1.2.13");
        assert_eq!(d.components(), &[1, 2, 13]);
        assert!("".parse::<Dewey>().is_err());
        assert!("1..2".parse::<Dewey>().is_err());
        assert!("1.a".parse::<Dewey>().is_err());
    }

    #[test]
    fn hierarchy() {
        let root = Dewey::root();
        let c2 = root.child(2);
        let c21 = c2.child(1);
        assert_eq!(c21.to_string(), "1.2.1");
        assert_eq!(c21.parent(), Some(c2.clone()));
        assert_eq!(root.parent(), None);
        assert!(root.is_ancestor_of(&c21));
        assert!(c2.is_parent_of(&c21));
        assert!(!c2.is_parent_of(&root));
        assert!(!c21.is_ancestor_of(&c21), "proper ancestry");
        assert_eq!(c21.position(), 1);
        assert_eq!(c2.depth(), 2);
    }

    #[test]
    fn ordering_is_document_order() {
        let ids: Vec<Dewey> =
            ["1", "1.1", "1.1.1", "1.1.2", "1.2", "1.10"].iter().map(|s| s.parse().unwrap()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(sorted, ids, "lexicographic component order, not string order");
    }
}
