//! Interned tag and attribute names.
//!
//! Every element and attribute name in a [`crate::Document`] is interned
//! into a [`SymbolTable`] so that name comparisons during pattern matching
//! are single `u32` compares and the tag-name index can be a dense array.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned name. `Sym(0)` is reserved for the wildcard/document symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The reserved symbol used for the virtual document node.
    pub const DOCUMENT: Sym = Sym(0);

    /// Index into dense per-symbol arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between names and [`Sym`]s.
///
/// Interning is append-only; symbols are never removed, so a `Sym` handed
/// out once stays valid for the lifetime of the table.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    by_name: FxHashMap<Box<str>, Sym>,
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolTable {
    /// Create a table with the document symbol pre-interned.
    pub fn new() -> Self {
        let mut table = SymbolTable {
            names: Vec::new(),
            by_name: FxHashMap::default(),
        };
        let doc = table.intern("#document");
        debug_assert_eq!(doc, Sym::DOCUMENT);
        table
    }

    /// Rebuild a table from a decoded snapshot's name list, preserving
    /// symbol numbering. Entry 0 must be the reserved document symbol's
    /// name and names must be distinct (otherwise lookups would alias).
    pub fn from_names(names: Vec<Box<str>>) -> Result<SymbolTable, String> {
        if names.first().map(|n| n.as_ref()) != Some("#document") {
            return Err("symbol 0 must be the document symbol".into());
        }
        let mut by_name = FxHashMap::default();
        for (i, n) in names.iter().enumerate() {
            if by_name.insert(n.clone(), Sym(i as u32)).is_some() {
                return Err(format!("duplicate symbol name {n:?}"));
            }
        }
        Ok(SymbolTable { names, by_name })
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, sym);
        sym
    }

    /// Look up an already-interned name without interning it.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// The name for `sym`. Panics if `sym` did not come from this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols (including the document symbol).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the document symbol is present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterate over `(Sym, name)` pairs, excluding the document symbol.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("book");
        let b = t.intern("book");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "book");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("book");
        let b = t.intern("author");
        assert_ne!(a, b);
        assert_eq!(t.lookup("author"), Some(b));
        assert_eq!(t.lookup("nope"), None);
    }

    #[test]
    fn document_symbol_is_reserved() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup("#document"), Some(Sym::DOCUMENT));
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn iter_skips_document_symbol() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
