//! Document statistics.
//!
//! These are the columns of the paper's Table 1 (size, number of nodes,
//! average and maximum depth, number of distinct tags, structure-tree
//! size) plus the *recursion* measurements the optimizer needs to choose
//! between pipelined and nested-loop joins (Sections 4.2–4.3): whether any
//! element occurs as a descendant of a same-tagged element, and the
//! maximum such nesting degree.
//!
//! Since the cost-based planner (DESIGN.md §11) the stats also carry the
//! selectivity structures its estimator prices plans with:
//!
//! * `tag_counts` — occurrences per element tag (posting-list lengths),
//! * `recursive_tags` — per-tag recursion degree (already present),
//! * `containment` — exact ancestor/descendant co-occurrence for the
//!   [`FREQUENT_TAG_LIMIT`] most frequent tag pairs, with a log₂-bucketed
//!   per-ancestor fanout histogram (a region-label containment histogram:
//!   how many `d` regions nest inside each `a` region).
//!
//! All of it is computed at load time in two document-order passes and
//! rides inside the `.blsm` snapshot (see [`crate::succinct`]), so a
//! server repopulating its catalog from snapshots pays no re-analysis.

use crate::document::{Document, NodeId, NodeKind};
use crate::fxhash::FxHashMap;
use crate::symbol::Sym;

/// How many of the most frequent tags get exact containment statistics.
/// Pass 2 of [`DocStats::compute`] costs `O(n + frequent_opens × K)`, so
/// this bounds both analysis time and the histogram's snapshot/heap size.
pub const FREQUENT_TAG_LIMIT: usize = 32;

/// Number of log₂ fanout buckets per tracked tag pair.
pub const FANOUT_BUCKETS: usize = 8;

/// Ancestor/descendant co-occurrence for one ordered tag pair `(a, d)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Containment {
    /// Number of `(a, d)` node pairs with `a` a proper ancestor of `d` —
    /// exactly the output cardinality of the structural join `a//d`.
    pub pairs: u64,
    /// Number of `a` nodes with at least one `d` descendant (distinct
    /// anchors surviving the `a//d` filter).
    pub ancestors: u32,
    /// Histogram of per-ancestor descendant counts: bucket `i` counts the
    /// `a` nodes whose `d`-descendant fanout is in `[2^i, 2^(i+1))`, the
    /// last bucket absorbing the tail.
    pub fanout_log2: [u32; FANOUT_BUCKETS],
}

/// Summary statistics of one document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Maximum same-tag nesting per tag name, for tags that nest at all
    /// (value ≥ 2). The optimizer uses this to decide whether a *query's*
    /// tags are recursive, which is finer than the whole-document flag.
    pub recursive_tags: FxHashMap<String, u16>,
    /// Element occurrences per tag: the length of the posting list a
    /// structural operator would scan for that tag.
    pub tag_counts: FxHashMap<String, u32>,
    /// Exact containment statistics for ordered pairs of frequent tags.
    /// Pairs with zero co-occurrence are absent.
    pub containment: FxHashMap<(String, String), Containment>,
    /// All tree nodes (elements + text), excluding the virtual document node.
    pub node_count: usize,
    /// Element nodes only.
    pub element_count: usize,
    /// Text nodes only.
    pub text_count: usize,
    /// Average element depth (root element = 1).
    pub avg_depth: f64,
    /// Maximum element depth.
    pub max_depth: u16,
    /// Number of distinct element tags.
    pub tag_count: usize,
    /// Is any element a descendant of a same-tagged element?
    pub recursive: bool,
    /// Maximum same-tag nesting (1 = non-recursive).
    pub max_recursion: u16,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Approximate size in bytes of the structural part of the tree
    /// (the paper's `|tree|` column): 4 bytes per element, the size of the
    /// succinct structure encoding of \[22\].
    pub structure_bytes: usize,
}

impl DocStats {
    /// Compute statistics in two document-order passes: pass 1 gathers
    /// the Table-1 columns, recursion degrees and tag counts; pass 2
    /// gathers containment statistics restricted to the
    /// [`FREQUENT_TAG_LIMIT`] most frequent tags.
    pub fn compute(doc: &Document) -> DocStats {
        let mut element_count = 0usize;
        let mut text_count = 0usize;
        let mut depth_sum = 0u64;
        let mut max_depth = 0u16;
        let mut text_bytes = 0usize;
        let mut counts: FxHashMap<Sym, u32> = FxHashMap::default();
        // Same-tag nesting: walk with an explicit stack of (node_end, sym)
        // and per-sym active counts.
        let mut active: FxHashMap<Sym, u16> = FxHashMap::default();
        let mut stack: Vec<(u32, Sym)> = Vec::new();
        let mut max_recursion = 0u16;
        let mut per_tag: FxHashMap<Sym, u16> = FxHashMap::default();

        for n in doc.descendants(NodeId::DOCUMENT) {
            match doc.kind(n) {
                NodeKind::Element(sym) => {
                    element_count += 1;
                    let level = doc.level(n);
                    depth_sum += level as u64;
                    max_depth = max_depth.max(level);
                    *counts.entry(sym).or_insert(0) += 1;
                    // Pop finished ancestors.
                    while let Some(&(end, s)) = stack.last() {
                        if n.0 > end {
                            stack.pop();
                            *active.get_mut(&s).unwrap() -= 1;
                        } else {
                            break;
                        }
                    }
                    let count = active.entry(sym).or_insert(0);
                    *count += 1;
                    max_recursion = max_recursion.max(*count);
                    let tag_max = per_tag.entry(sym).or_insert(0);
                    *tag_max = (*tag_max).max(*count);
                    stack.push((doc.last_descendant(n).0, sym));
                }
                NodeKind::Text => {
                    text_count += 1;
                    text_bytes += doc.text(n).map(str::len).unwrap_or(0);
                }
                NodeKind::Document => {}
            }
        }

        let containment = compute_containment(doc, &counts);

        let recursive_tags: FxHashMap<String, u16> = per_tag
            .into_iter()
            .filter(|&(_, depth)| depth > 1)
            .map(|(sym, depth)| (doc.symbols().name(sym).to_string(), depth))
            .collect();
        let tag_count = counts.len();
        let tag_counts: FxHashMap<String, u32> = counts
            .into_iter()
            .map(|(sym, c)| (doc.symbols().name(sym).to_string(), c))
            .collect();
        DocStats {
            recursive_tags,
            tag_counts,
            containment,
            node_count: element_count + text_count,
            element_count,
            text_count,
            avg_depth: if element_count == 0 {
                0.0
            } else {
                depth_sum as f64 / element_count as f64
            },
            max_depth,
            tag_count,
            recursive: max_recursion > 1,
            max_recursion,
            text_bytes,
            structure_bytes: element_count * 4,
        }
    }

    /// Occurrences of `tag` (length of its posting list); 0 if absent.
    pub fn occurrences(&self, tag: &str) -> u32 {
        self.tag_counts.get(tag).copied().unwrap_or(0)
    }

    /// Containment statistics for ancestor tag `anc` over descendant tag
    /// `desc`, if both tags are frequent enough to be tracked and at
    /// least one pair exists.
    pub fn containment_of(&self, anc: &str, desc: &str) -> Option<&Containment> {
        self.containment.get(&(anc.to_string(), desc.to_string()))
    }

    /// Approximate heap footprint in bytes, for the server catalog's
    /// memory accounting (string keys + map entries; hash-map overhead
    /// and allocator slack not counted — an estimate, like
    /// [`Document::approx_heap_bytes`]).
    pub fn approx_heap_bytes(&self) -> usize {
        let entry = |s: &str| s.len() + std::mem::size_of::<String>();
        let recursive: usize =
            self.recursive_tags.keys().map(|k| entry(k) + 2).sum();
        let counts: usize = self.tag_counts.keys().map(|k| entry(k) + 4).sum();
        let pairs: usize = self
            .containment
            .keys()
            .map(|(a, d)| entry(a) + entry(d) + std::mem::size_of::<Containment>())
            .sum();
        std::mem::size_of::<DocStats>() + recursive + counts + pairs
    }
}

/// Pass 2: exact containment counts restricted to the most frequent tags.
///
/// Keeps a cumulative open-count per frequent tag; each frequent element
/// snapshots the vector at open and diffs it when its region closes, so
/// every pop charges `O(K)` and the whole pass is
/// `O(n + frequent_opens × K)`. Stack memory is bounded by
/// `max_depth × K` counters.
fn compute_containment(
    doc: &Document,
    counts: &FxHashMap<Sym, u32>,
) -> FxHashMap<(String, String), Containment> {
    if counts.is_empty() {
        return FxHashMap::default();
    }
    // Top-K tags by count; ties broken by name for determinism.
    let mut ranked: Vec<(Sym, u32)> = counts.iter().map(|(&s, &c)| (s, c)).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| {
        doc.symbols().name(a.0).cmp(doc.symbols().name(b.0))
    }));
    ranked.truncate(FREQUENT_TAG_LIMIT);
    let slot_of: FxHashMap<Sym, usize> =
        ranked.iter().enumerate().map(|(i, &(s, _))| (s, i)).collect();
    let k = ranked.len();

    let mut cum = vec![0u64; k];
    // Open frequent-tag regions: (region end, own slot, cum snapshot
    // taken after counting self).
    let mut stack: Vec<(u32, usize, Vec<u64>)> = Vec::new();
    let mut acc: FxHashMap<(usize, usize), Containment> = FxHashMap::default();

    let pop = |entry: (u32, usize, Vec<u64>), cum: &[u64], acc: &mut FxHashMap<(usize, usize), Containment>| {
        let (_, anc_slot, snapshot) = entry;
        for t in 0..cum.len() {
            let desc = cum[t] - snapshot[t];
            if desc == 0 {
                continue;
            }
            let stat = acc.entry((anc_slot, t)).or_default();
            stat.pairs += desc;
            stat.ancestors += 1;
            let bucket = (63 - desc.leading_zeros() as usize).min(FANOUT_BUCKETS - 1);
            stat.fanout_log2[bucket] += 1;
        }
    };

    for n in doc.descendants(NodeId::DOCUMENT) {
        if let NodeKind::Element(sym) = doc.kind(n) {
            while let Some(top) = stack.last() {
                if n.0 > top.0 {
                    let entry = stack.pop().unwrap();
                    pop(entry, &cum, &mut acc);
                } else {
                    break;
                }
            }
            if let Some(&slot) = slot_of.get(&sym) {
                cum[slot] += 1;
                stack.push((doc.last_descendant(n).0, slot, cum.clone()));
            }
        }
    }
    while let Some(entry) = stack.pop() {
        pop(entry, &cum, &mut acc);
    }

    acc.into_iter()
        .map(|((a, d), stat)| {
            let name = |slot: usize| doc.symbols().name(ranked[slot].0).to_string();
            ((name(a), name(d)), stat)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_document() {
        let doc = Document::parse_str("<a><b>x</b><b>y</b><c/></a>").unwrap();
        let s = doc.stats();
        assert_eq!(s.element_count, 4);
        assert_eq!(s.text_count, 2);
        assert_eq!(s.node_count, 6);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.tag_count, 3);
        assert!(!s.recursive);
        assert_eq!(s.max_recursion, 1);
        assert_eq!(s.text_bytes, 2);
    }

    #[test]
    fn recursive_document() {
        let doc = Document::parse_str("<a><a><b/><a/></a><b/></a>").unwrap();
        let s = doc.stats();
        assert!(s.recursive);
        assert_eq!(s.max_recursion, 3); // a > a > a
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.recursive_tags.get("a"), Some(&3));
        assert_eq!(s.recursive_tags.get("b"), None);
    }

    #[test]
    fn per_tag_recursion_is_tag_scoped() {
        // a nests, x does not — even though x appears inside nested a's.
        let doc = Document::parse_str("<r><a><x/><a><x/></a></a></r>").unwrap();
        let s = doc.stats();
        assert!(s.recursive);
        assert!(s.recursive_tags.contains_key("a"));
        assert!(!s.recursive_tags.contains_key("x"));
        assert!(!s.recursive_tags.contains_key("r"));
    }

    #[test]
    fn sibling_same_tags_are_not_recursion() {
        let doc = Document::parse_str("<r><a/><a/><a/></r>").unwrap();
        let s = doc.stats();
        assert!(!s.recursive);
        assert_eq!(s.max_recursion, 1);
    }

    #[test]
    fn recursion_across_gap() {
        // a // (b) // a is still recursion of a.
        let doc = Document::parse_str("<a><b><a/></b></a>").unwrap();
        assert!(doc.stats().recursive);
        assert_eq!(doc.stats().max_recursion, 2);
    }

    #[test]
    fn avg_depth() {
        let doc = Document::parse_str("<a><b/><b/></a>").unwrap();
        let s = doc.stats();
        // depths: 1, 2, 2.
        assert!((s.avg_depth - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn tag_counts_are_posting_lengths() {
        let doc = Document::parse_str("<a><b>x</b><b>y</b><c/></a>").unwrap();
        let s = doc.stats();
        assert_eq!(s.occurrences("a"), 1);
        assert_eq!(s.occurrences("b"), 2);
        assert_eq!(s.occurrences("c"), 1);
        assert_eq!(s.occurrences("zzz"), 0);
    }

    #[test]
    fn containment_counts_join_pairs() {
        let doc = Document::parse_str("<r><a><d/><d/></a><a/><d/></r>").unwrap();
        let s = doc.stats();
        let c = s.containment_of("a", "d").unwrap();
        assert_eq!(c.pairs, 2); // only the two d's under the first a
        assert_eq!(c.ancestors, 1);
        assert_eq!(c.fanout_log2[1], 1); // one a with fanout 2
        // d never contains a.
        assert!(s.containment_of("d", "a").is_none());
        // r contains everything.
        assert_eq!(s.containment_of("r", "d").unwrap().pairs, 3);
        assert_eq!(s.containment_of("r", "a").unwrap().pairs, 2);
    }

    #[test]
    fn containment_under_recursion_counts_pair_multiplicity() {
        // a > a > d: both a's contain the d, and the outer a contains the
        // inner a — exactly the structural-join pair semantics.
        let doc = Document::parse_str("<a><a><d/></a></a>").unwrap();
        let s = doc.stats();
        assert_eq!(s.containment_of("a", "d").unwrap().pairs, 2);
        assert_eq!(s.containment_of("a", "a").unwrap().pairs, 1);
        assert_eq!(s.containment_of("a", "d").unwrap().ancestors, 2);
    }

    // --- edge-case fixtures for the estimator (always-on) ---

    #[test]
    fn empty_document_has_empty_stats() {
        let doc = Document::builder().finish();
        let s = doc.stats();
        assert_eq!(s.element_count, 0);
        assert_eq!(s.tag_count, 0);
        assert!(s.tag_counts.is_empty());
        assert!(s.containment.is_empty());
        assert!(s.recursive_tags.is_empty());
        assert_eq!(s.avg_depth, 0.0);
        assert!(s.approx_heap_bytes() >= std::mem::size_of::<DocStats>());
    }

    #[test]
    fn single_tag_chain_recursion_degree_and_containment() {
        // <a><a><a>…</a></a></a>, depth 10: recursion degree 10, and
        // a//a has C(10,2) = 45 ancestor/descendant pairs.
        let depth = 10usize;
        let xml = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
        let doc = Document::parse_str(&xml).unwrap();
        let s = doc.stats();
        assert_eq!(s.recursive_tags.get("a"), Some(&(depth as u16)));
        assert_eq!(s.max_recursion, depth as u16);
        let c = s.containment_of("a", "a").unwrap();
        assert_eq!(c.pairs, (depth * (depth - 1) / 2) as u64);
        assert_eq!(c.ancestors, (depth - 1) as u32);
        // The deepest chain ancestor sees 9 descendants → bucket log2(9)=3.
        assert_eq!(c.fanout_log2[3], 2); // fanouts 9 and 8
    }

    #[test]
    fn star_fanout_histogram() {
        // One hub with 100 leaves: a single ancestor in bucket
        // floor(log2(100)) = 6, and no leaf-to-leaf containment.
        let xml = format!("<hub>{}</hub>", "<leaf/>".repeat(100));
        let doc = Document::parse_str(&xml).unwrap();
        let s = doc.stats();
        let c = s.containment_of("hub", "leaf").unwrap();
        assert_eq!(c.pairs, 100);
        assert_eq!(c.ancestors, 1);
        assert_eq!(c.fanout_log2[6], 1);
        assert!(s.containment_of("leaf", "leaf").is_none());
        assert!(s.containment_of("leaf", "hub").is_none());
    }

    #[test]
    fn infrequent_tags_fall_off_the_containment_map() {
        // More distinct tags than FREQUENT_TAG_LIMIT: the rare singleton
        // tags beyond the cap carry no containment entries, but their
        // tag_counts remain exact.
        let mut xml = String::from("<r>");
        for i in 0..(FREQUENT_TAG_LIMIT + 8) {
            // t0 appears many times so it stays frequent; the others once.
            if i == 0 {
                xml.push_str(&"<t0/>".repeat(50));
            } else {
                xml.push_str(&format!("<t{i}/>"));
            }
        }
        xml.push_str("</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let s = doc.stats();
        assert_eq!(s.occurrences("t0"), 50);
        assert!(s.containment_of("r", "t0").is_some());
        // Only FREQUENT_TAG_LIMIT tags are tracked; at least one of the
        // singleton tags must be absent from every pair.
        let tracked: std::collections::HashSet<&str> = s
            .containment
            .keys()
            .flat_map(|(a, d)| [a.as_str(), d.as_str()])
            .collect();
        assert!(tracked.len() <= FREQUENT_TAG_LIMIT);
    }

    #[test]
    fn fanout_tail_bucket_absorbs_large_fanouts() {
        let xml = format!("<hub>{}</hub>", "<leaf/>".repeat(1000));
        let doc = Document::parse_str(&xml).unwrap();
        let c = doc.stats().containment_of("hub", "leaf").unwrap().clone();
        assert_eq!(c.fanout_log2[FANOUT_BUCKETS - 1], 1);
        assert_eq!(c.pairs, 1000);
    }
}
