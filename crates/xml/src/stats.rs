//! Document statistics.
//!
//! These are the columns of the paper's Table 1 (size, number of nodes,
//! average and maximum depth, number of distinct tags, structure-tree
//! size) plus the *recursion* measurements the optimizer needs to choose
//! between pipelined and nested-loop joins (Sections 4.2–4.3): whether any
//! element occurs as a descendant of a same-tagged element, and the
//! maximum such nesting degree.

use crate::document::{Document, NodeKind};
use crate::fxhash::FxHashMap;
use crate::symbol::Sym;

/// Summary statistics of one document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Maximum same-tag nesting per tag name, for tags that nest at all
    /// (value ≥ 2). The optimizer uses this to decide whether a *query's*
    /// tags are recursive, which is finer than the whole-document flag.
    pub recursive_tags: FxHashMap<String, u16>,
    /// All tree nodes (elements + text), excluding the virtual document node.
    pub node_count: usize,
    /// Element nodes only.
    pub element_count: usize,
    /// Text nodes only.
    pub text_count: usize,
    /// Average element depth (root element = 1).
    pub avg_depth: f64,
    /// Maximum element depth.
    pub max_depth: u16,
    /// Number of distinct element tags.
    pub tag_count: usize,
    /// Is any element a descendant of a same-tagged element?
    pub recursive: bool,
    /// Maximum same-tag nesting (1 = non-recursive).
    pub max_recursion: u16,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Approximate size in bytes of the structural part of the tree
    /// (the paper's `|tree|` column): 4 bytes per element, the size of the
    /// succinct structure encoding of \[22\].
    pub structure_bytes: usize,
}

impl DocStats {
    /// Compute statistics in one document-order pass.
    pub fn compute(doc: &Document) -> DocStats {
        let mut element_count = 0usize;
        let mut text_count = 0usize;
        let mut depth_sum = 0u64;
        let mut max_depth = 0u16;
        let mut text_bytes = 0usize;
        let mut tags: FxHashMap<Sym, ()> = FxHashMap::default();
        // Same-tag nesting: walk with an explicit stack of (node_end, sym)
        // and per-sym active counts.
        let mut active: FxHashMap<Sym, u16> = FxHashMap::default();
        let mut stack: Vec<(u32, Sym)> = Vec::new();
        let mut max_recursion = 0u16;
        let mut per_tag: FxHashMap<Sym, u16> = FxHashMap::default();

        for n in doc.descendants(crate::document::NodeId::DOCUMENT) {
            match doc.kind(n) {
                NodeKind::Element(sym) => {
                    element_count += 1;
                    let level = doc.level(n);
                    depth_sum += level as u64;
                    max_depth = max_depth.max(level);
                    tags.insert(sym, ());
                    // Pop finished ancestors.
                    while let Some(&(end, s)) = stack.last() {
                        if n.0 > end {
                            stack.pop();
                            *active.get_mut(&s).unwrap() -= 1;
                        } else {
                            break;
                        }
                    }
                    let count = active.entry(sym).or_insert(0);
                    *count += 1;
                    max_recursion = max_recursion.max(*count);
                    let tag_max = per_tag.entry(sym).or_insert(0);
                    *tag_max = (*tag_max).max(*count);
                    stack.push((doc.last_descendant(n).0, sym));
                }
                NodeKind::Text => {
                    text_count += 1;
                    text_bytes += doc.text(n).map(str::len).unwrap_or(0);
                }
                NodeKind::Document => {}
            }
        }

        let recursive_tags: FxHashMap<String, u16> = per_tag
            .into_iter()
            .filter(|&(_, depth)| depth > 1)
            .map(|(sym, depth)| (doc.symbols().name(sym).to_string(), depth))
            .collect();
        DocStats {
            recursive_tags,
            node_count: element_count + text_count,
            element_count,
            text_count,
            avg_depth: if element_count == 0 {
                0.0
            } else {
                depth_sum as f64 / element_count as f64
            },
            max_depth,
            tag_count: tags.len(),
            recursive: max_recursion > 1,
            max_recursion,
            text_bytes,
            structure_bytes: element_count * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_document() {
        let doc = Document::parse_str("<a><b>x</b><b>y</b><c/></a>").unwrap();
        let s = doc.stats();
        assert_eq!(s.element_count, 4);
        assert_eq!(s.text_count, 2);
        assert_eq!(s.node_count, 6);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.tag_count, 3);
        assert!(!s.recursive);
        assert_eq!(s.max_recursion, 1);
        assert_eq!(s.text_bytes, 2);
    }

    #[test]
    fn recursive_document() {
        let doc = Document::parse_str("<a><a><b/><a/></a><b/></a>").unwrap();
        let s = doc.stats();
        assert!(s.recursive);
        assert_eq!(s.max_recursion, 3); // a > a > a
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.recursive_tags.get("a"), Some(&3));
        assert_eq!(s.recursive_tags.get("b"), None);
    }

    #[test]
    fn per_tag_recursion_is_tag_scoped() {
        // a nests, x does not — even though x appears inside nested a's.
        let doc = Document::parse_str("<r><a><x/><a><x/></a></a></r>").unwrap();
        let s = doc.stats();
        assert!(s.recursive);
        assert!(s.recursive_tags.contains_key("a"));
        assert!(!s.recursive_tags.contains_key("x"));
        assert!(!s.recursive_tags.contains_key("r"));
    }

    #[test]
    fn sibling_same_tags_are_not_recursion() {
        let doc = Document::parse_str("<r><a/><a/><a/></r>").unwrap();
        let s = doc.stats();
        assert!(!s.recursive);
        assert_eq!(s.max_recursion, 1);
    }

    #[test]
    fn recursion_across_gap() {
        // a // (b) // a is still recursion of a.
        let doc = Document::parse_str("<a><b><a/></b></a>").unwrap();
        assert!(doc.stats().recursive);
        assert_eq!(doc.stats().max_recursion, 2);
    }

    #[test]
    fn avg_depth() {
        let doc = Document::parse_str("<a><b/><b/></a>").unwrap();
        let s = doc.stats();
        // depths: 1, 2, 2.
        assert!((s.avg_depth - 5.0 / 3.0).abs() < 1e-9);
    }
}
