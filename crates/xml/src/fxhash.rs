//! A minimal Fx-style hasher (the multiply-xor hash used by rustc).
//!
//! The standard library's SipHash is DoS-resistant but slow for the short
//! string and integer keys this crate hashes constantly (tag names, node
//! ids). Query processing never hashes attacker-chosen keys into
//! long-lived tables, so the faster non-cryptographic hash is appropriate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hash function.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hash function.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-xor hasher. One `u64` of state; each word of input is
/// rotated in, xored and multiplied by a fixed odd constant.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_strings_hash_differently() {
        let mut map: FxHashMap<&str, u32> = FxHashMap::default();
        map.insert("book", 1);
        map.insert("author", 2);
        map.insert("title", 3);
        assert_eq!(map.get("book"), Some(&1));
        assert_eq!(map.get("author"), Some(&2));
        assert_eq!(map.get("title"), Some(&3));
        assert_eq!(map.get("missing"), None);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        assert_eq!(h("bib"), h("bib"));
        assert_ne!(h("bib"), h("bic"));
    }

    #[test]
    fn short_and_long_keys() {
        let mut set: FxHashSet<String> = FxHashSet::default();
        for i in 0..1000 {
            set.insert(format!("tag-{i}"));
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains("tag-999"));
    }
}
