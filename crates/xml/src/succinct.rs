//! A succinct physical storage scheme for XML documents.
//!
//! The paper's NoK operator builds on the storage layer of Zhang,
//! Kacholia & Özsu (ICDE 2004, reference \[22\]): the tree *skeleton* is
//! stored as a balanced-parentheses stream separated from the tag names
//! and the text content, so a sequential scan of the structure touches a
//! fraction of the raw document bytes.
//!
//! This module implements that scheme: [`encode`] serializes a
//! [`Document`] into four sections —
//!
//! 1. the symbol table (tag/attribute names),
//! 2. a 2-bit-per-event skeleton stream (`open`, `close`, `text`),
//! 3. the per-element tag ids (varint, in open order),
//! 4. the content blobs (text runs and sparse attribute lists),
//!
//! and [`decode`] reconstructs an equivalent `Document`. Round-tripping
//! is exact for the element/text/attribute data model.

use crate::document::{Document, NodeId, NodeKind, ParseOptions, TreeBuilder};
use std::fmt;

const MAGIC: &[u8; 4] = b"BLM1";

/// Skeleton event codes (2 bits each).
const EV_OPEN: u8 = 0b00;
const EV_CLOSE: u8 = 0b01;
const EV_TEXT: u8 = 0b10;
const EV_END: u8 = 0b11;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "succinct decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Section sizes of an encoded document, for storage accounting (the
/// `|tree|` column of Table 1 measures exactly the skeleton + tags part).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSizes {
    /// Symbol table bytes.
    pub symbols: usize,
    /// Skeleton stream bytes (2 bits per structural event).
    pub skeleton: usize,
    /// Tag-id array bytes.
    pub tags: usize,
    /// Text + attribute content bytes.
    pub content: usize,
}

impl SectionSizes {
    /// The structural part (skeleton + tags): what a structure-only scan
    /// reads.
    pub fn structure(&self) -> usize {
        self.skeleton + self.tags
    }

    /// Total payload bytes (excluding the four varint section-length
    /// prefixes, 1–5 bytes each).
    pub fn total(&self) -> usize {
        MAGIC.len() + self.symbols + self.skeleton + self.tags + self.content
    }
}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| DecodeError("truncated varint".into()))?;
        *pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError("varint overflow".into()));
        }
    }
}

fn push_bytes(out: &mut Vec<u8>, data: &[u8]) {
    push_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

fn read_block<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], DecodeError> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DecodeError("truncated block".into()))?;
    let block = &bytes[*pos..end];
    *pos = end;
    Ok(block)
}

fn read_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a str, DecodeError> {
    std::str::from_utf8(read_block(bytes, pos)?)
        .map_err(|_| DecodeError("invalid UTF-8".into()))
}

/// A 2-bit event writer.
#[derive(Default)]
struct BitWriter {
    bytes: Vec<u8>,
    used: u8,
}

impl BitWriter {
    fn push(&mut self, event: u8) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        let last = self.bytes.last_mut().unwrap();
        *last |= event << (self.used * 2);
        self.used = (self.used + 1) % 4;
    }

    fn finish(mut self) -> Vec<u8> {
        // Pad the final byte with END events so decoding terminates.
        while self.used != 0 {
            self.push(EV_END);
        }
        self.bytes
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl BitReader<'_> {
    fn next(&mut self) -> u8 {
        let byte_idx = self.pos / 4;
        let within = self.pos % 4;
        self.pos += 1;
        match self.bytes.get(byte_idx) {
            Some(b) => (b >> (within * 2)) & 0b11,
            None => EV_END,
        }
    }
}

/// Serialize a document into the succinct format.
pub fn encode(doc: &Document) -> Vec<u8> {
    let mut skeleton = BitWriter::default();
    let mut tags: Vec<u8> = Vec::new();
    let mut content: Vec<u8> = Vec::new();

    // Walk the tree in document order, emitting open/close/text events.
    fn walk(
        doc: &Document,
        node: NodeId,
        skeleton: &mut BitWriter,
        tags: &mut Vec<u8>,
        content: &mut Vec<u8>,
    ) {
        match doc.kind(node) {
            NodeKind::Document => {
                for c in doc.children(node) {
                    walk(doc, c, skeleton, tags, content);
                }
            }
            NodeKind::Text => {
                skeleton.push(EV_TEXT);
                push_bytes(content, doc.text(node).unwrap_or("").as_bytes());
            }
            NodeKind::Element(sym) => {
                skeleton.push(EV_OPEN);
                push_varint(tags, sym.0 as u64);
                // Attributes ride in the content section, prefixed by a
                // count (usually 0).
                let attrs = doc.attributes(node);
                push_varint(content, attrs.len() as u64);
                for (name, value) in attrs {
                    push_varint(content, name.0 as u64);
                    push_bytes(content, value.as_bytes());
                }
                for c in doc.children(node) {
                    walk(doc, c, skeleton, tags, content);
                }
                skeleton.push(EV_CLOSE);
            }
        }
    }
    walk(doc, NodeId::DOCUMENT, &mut skeleton, &mut tags, &mut content);
    skeleton.push(EV_END);
    let skeleton = skeleton.finish();

    // Symbol table.
    let mut symbols: Vec<u8> = Vec::new();
    push_varint(&mut symbols, doc.symbols().len() as u64);
    for i in 1..doc.symbols().len() {
        push_bytes(&mut symbols, doc.symbols().name(crate::Sym(i as u32)).as_bytes());
    }

    let mut out = Vec::with_capacity(
        MAGIC.len() + symbols.len() + skeleton.len() + tags.len() + content.len() + 32,
    );
    out.extend_from_slice(MAGIC);
    push_bytes(&mut out, &symbols);
    push_bytes(&mut out, &skeleton);
    push_bytes(&mut out, &tags);
    push_bytes(&mut out, &content);
    out
}

/// Section sizes of an encoded buffer (without decoding it fully).
pub fn section_sizes(bytes: &[u8]) -> Result<SectionSizes, DecodeError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(DecodeError("bad magic".into()));
    }
    let mut pos = 4usize;
    let symbols = read_block(bytes, &mut pos)?.len();
    let skeleton = read_block(bytes, &mut pos)?.len();
    let tags = read_block(bytes, &mut pos)?.len();
    let content = read_block(bytes, &mut pos)?.len();
    Ok(SectionSizes { symbols, skeleton, tags, content })
}

/// Reconstruct a document from the succinct format.
pub fn decode(bytes: &[u8]) -> Result<Document, DecodeError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(DecodeError("bad magic".into()));
    }
    let mut pos = 4usize;
    let symbols_sec = read_block(bytes, &mut pos)?;
    let skeleton_sec = read_block(bytes, &mut pos)?;
    let tags_sec = read_block(bytes, &mut pos)?;
    let content_sec = read_block(bytes, &mut pos)?;

    // Symbol table: index 0 is the document symbol, implicit.
    let mut spos = 0usize;
    let count = read_varint(symbols_sec, &mut spos)? as usize;
    let mut names: Vec<String> = Vec::with_capacity(count.saturating_sub(1));
    for _ in 1..count {
        names.push(read_str(symbols_sec, &mut spos)?.to_string());
    }
    let name_of = |sym: u64| -> Result<&str, DecodeError> {
        names
            .get((sym as usize).wrapping_sub(1))
            .map(String::as_str)
            .ok_or_else(|| DecodeError(format!("unknown symbol {sym}")))
    };

    let mut builder = TreeBuilder::new(ParseOptions { keep_whitespace_text: true });
    let mut reader = BitReader { bytes: skeleton_sec, pos: 0 };
    let mut tpos = 0usize;
    let mut cpos = 0usize;
    let mut depth = 0usize;
    loop {
        match reader.next() {
            EV_OPEN => {
                let sym = read_varint(tags_sec, &mut tpos)?;
                builder.start_element(name_of(sym)?);
                let n_attrs = read_varint(content_sec, &mut cpos)?;
                for _ in 0..n_attrs {
                    let attr_sym = read_varint(content_sec, &mut cpos)?;
                    let name = name_of(attr_sym)?.to_string();
                    let value = read_str(content_sec, &mut cpos)?.to_string();
                    builder.attribute(&name, &value);
                }
                depth += 1;
            }
            EV_CLOSE => {
                if depth == 0 {
                    return Err(DecodeError("unbalanced close event".into()));
                }
                builder.end_element();
                depth -= 1;
            }
            EV_TEXT => {
                let text = read_str(content_sec, &mut cpos)?.to_string();
                builder.text(&text);
            }
            EV_END => {
                if depth != 0 {
                    return Err(DecodeError("truncated skeleton".into()));
                }
                return Ok(builder.finish());
            }
            _ => unreachable!("2-bit codes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer;

    fn roundtrip(xml: &str) {
        let doc = Document::parse_str(xml).unwrap();
        let bytes = encode(&doc);
        let back = decode(&bytes).unwrap();
        assert_eq!(writer::to_string(&doc), writer::to_string(&back), "for {xml}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("<a/>");
        roundtrip("<a>text</a>");
        roundtrip(r#"<bib><book year="1994"><title>a &amp; b</title></book><x/></bib>"#);
        roundtrip("<a>x<b>y</b>z<c><d/></c></a>");
    }

    #[test]
    fn structure_is_separated_from_content() {
        let doc = Document::parse_str(
            "<r><a>some fairly long text content here</a><a>more of the same stuff</a></r>",
        )
        .unwrap();
        let bytes = encode(&doc);
        let sizes = section_sizes(&bytes).unwrap();
        // Three elements = 7 structural events (incl. END) = 2 bytes;
        // structure is tiny compared to the text blob.
        assert!(sizes.structure() < sizes.content, "{sizes:?}");
        assert!(sizes.skeleton <= 3, "{sizes:?}");
        // total() excludes the four section-length prefixes.
        assert!(sizes.total() <= bytes.len() && bytes.len() <= sizes.total() + 20);
    }

    #[test]
    fn skeleton_is_quarter_byte_per_event() {
        // 1000 empty elements: 2001 events (opens+closes+END) ≈ 501 bytes.
        let mut xml = String::from("<r>");
        for _ in 0..999 {
            xml.push_str("<e/>");
        }
        xml.push_str("</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let sizes = section_sizes(&encode(&doc)).unwrap();
        assert!((500..=502).contains(&sizes.skeleton), "{}", sizes.skeleton);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"").is_err());
        assert!(decode(b"WRNG123").is_err());
        let doc = Document::parse_str("<a><b/></a>").unwrap();
        let mut bytes = encode(&doc);
        bytes.truncate(bytes.len() - 1);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn preserves_node_statistics() {
        let doc = Document::parse_str(
            "<bib><book><title>T</title><author>A</author></book><book/></bib>",
        )
        .unwrap();
        let back = decode(&encode(&doc)).unwrap();
        assert_eq!(doc.stats(), back.stats());
    }

    #[test]
    fn whitespace_text_preserved_exactly() {
        // The succinct format must not re-apply whitespace policies.
        let doc = Document::parse_str_with(
            "<a> <b/> </a>",
            ParseOptions { keep_whitespace_text: true },
        )
        .unwrap();
        let back = decode(&encode(&doc)).unwrap();
        assert_eq!(writer::to_string(&doc), writer::to_string(&back));
    }
}
