//! A succinct physical storage scheme for XML documents.
//!
//! The paper's NoK operator builds on the storage layer of Zhang,
//! Kacholia & Özsu (ICDE 2004, reference \[22\]): the tree *skeleton* is
//! stored as a balanced-parentheses stream separated from the tag names
//! and the text content, so a sequential scan of the structure touches a
//! fraction of the raw document bytes.
//!
//! This module implements that scheme: [`encode`] serializes a
//! [`Document`] into four sections —
//!
//! 1. the symbol table (tag/attribute names),
//! 2. a 2-bit-per-event skeleton stream (`open`, `close`, `text`),
//! 3. the per-element tag ids (varint, in open order),
//! 4. the content blobs (text runs and sparse attribute lists),
//!
//! and [`decode`] reconstructs an equivalent `Document`. Round-tripping
//! is exact for the element/text/attribute data model.
//!
//! Since the cost-based planner, [`encode`] appends an optional fifth
//! section carrying the document's [`DocStats`] (tag counts, recursion
//! degrees, containment histograms), so a catalog repopulating from
//! snapshots skips re-analysis. Old decoders never read past the fourth
//! section, and [`decode_with_stats`] treats a missing fifth section as
//! "recompute" — the format stays compatible in both directions.

use crate::document::{Document, NodeId, NodeKind, ParseOptions, TreeBuilder};
use crate::stats::{Containment, DocStats, FANOUT_BUCKETS};
use std::fmt;

const MAGIC: &[u8; 4] = b"BLM1";

/// Skeleton event codes (2 bits each).
const EV_OPEN: u8 = 0b00;
const EV_CLOSE: u8 = 0b01;
const EV_TEXT: u8 = 0b10;
const EV_END: u8 = 0b11;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "succinct decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Section sizes of an encoded document, for storage accounting (the
/// `|tree|` column of Table 1 measures exactly the skeleton + tags part).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSizes {
    /// Symbol table bytes.
    pub symbols: usize,
    /// Skeleton stream bytes (2 bits per structural event).
    pub skeleton: usize,
    /// Tag-id array bytes.
    pub tags: usize,
    /// Text + attribute content bytes.
    pub content: usize,
    /// Embedded statistics bytes (0 for pre-stats snapshots).
    pub stats: usize,
}

impl SectionSizes {
    /// The structural part (skeleton + tags): what a structure-only scan
    /// reads.
    pub fn structure(&self) -> usize {
        self.skeleton + self.tags
    }

    /// Total payload bytes (excluding the varint section-length
    /// prefixes, 1–5 bytes each).
    pub fn total(&self) -> usize {
        MAGIC.len() + self.symbols + self.skeleton + self.tags + self.content + self.stats
    }
}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| DecodeError("truncated varint".into()))?;
        *pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError("varint overflow".into()));
        }
    }
}

fn push_bytes(out: &mut Vec<u8>, data: &[u8]) {
    push_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

fn read_block<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], DecodeError> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DecodeError("truncated block".into()))?;
    let block = &bytes[*pos..end];
    *pos = end;
    Ok(block)
}

fn read_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a str, DecodeError> {
    std::str::from_utf8(read_block(bytes, pos)?)
        .map_err(|_| DecodeError("invalid UTF-8".into()))
}

/// A 2-bit event writer.
#[derive(Default)]
struct BitWriter {
    bytes: Vec<u8>,
    used: u8,
}

impl BitWriter {
    fn push(&mut self, event: u8) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        let last = self.bytes.last_mut().unwrap();
        *last |= event << (self.used * 2);
        self.used = (self.used + 1) % 4;
    }

    fn finish(mut self) -> Vec<u8> {
        // Pad the final byte with END events so decoding terminates.
        while self.used != 0 {
            self.push(EV_END);
        }
        self.bytes
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl BitReader<'_> {
    fn next(&mut self) -> u8 {
        let byte_idx = self.pos / 4;
        let within = self.pos % 4;
        self.pos += 1;
        match self.bytes.get(byte_idx) {
            Some(b) => (b >> (within * 2)) & 0b11,
            None => EV_END,
        }
    }
}

/// Serialize a document into the succinct format, computing and
/// embedding its statistics. See [`encode_with_stats`] to reuse stats
/// the caller already has.
pub fn encode(doc: &Document) -> Vec<u8> {
    encode_with_stats(doc, &doc.stats())
}

/// Serialize a document into the succinct format with caller-provided
/// statistics embedded as the fifth section.
pub fn encode_with_stats(doc: &Document, stats: &DocStats) -> Vec<u8> {
    let mut skeleton = BitWriter::default();
    let mut tags: Vec<u8> = Vec::new();
    let mut content: Vec<u8> = Vec::new();

    // Walk the tree in document order, emitting open/close/text events.
    fn walk(
        doc: &Document,
        node: NodeId,
        skeleton: &mut BitWriter,
        tags: &mut Vec<u8>,
        content: &mut Vec<u8>,
    ) {
        match doc.kind(node) {
            NodeKind::Document => {
                for c in doc.children(node) {
                    walk(doc, c, skeleton, tags, content);
                }
            }
            NodeKind::Text => {
                skeleton.push(EV_TEXT);
                push_bytes(content, doc.text(node).unwrap_or("").as_bytes());
            }
            NodeKind::Element(sym) => {
                skeleton.push(EV_OPEN);
                push_varint(tags, sym.0 as u64);
                // Attributes ride in the content section, prefixed by a
                // count (usually 0).
                let attrs = doc.attributes(node);
                push_varint(content, attrs.len() as u64);
                for (name, value) in attrs {
                    push_varint(content, name.0 as u64);
                    push_bytes(content, value.as_bytes());
                }
                for c in doc.children(node) {
                    walk(doc, c, skeleton, tags, content);
                }
                skeleton.push(EV_CLOSE);
            }
        }
    }
    walk(doc, NodeId::DOCUMENT, &mut skeleton, &mut tags, &mut content);
    skeleton.push(EV_END);
    let skeleton = skeleton.finish();

    // Symbol table.
    let mut symbols: Vec<u8> = Vec::new();
    push_varint(&mut symbols, doc.symbols().len() as u64);
    for i in 1..doc.symbols().len() {
        push_bytes(&mut symbols, doc.symbols().name(crate::Sym(i as u32)).as_bytes());
    }

    let mut out = Vec::with_capacity(
        MAGIC.len() + symbols.len() + skeleton.len() + tags.len() + content.len() + 32,
    );
    out.extend_from_slice(MAGIC);
    push_bytes(&mut out, &symbols);
    push_bytes(&mut out, &skeleton);
    push_bytes(&mut out, &tags);
    push_bytes(&mut out, &content);
    push_bytes(&mut out, &encode_stats_section(stats));
    out
}

/// Version tag of the stats section layout.
const STATS_SECTION_VERSION: u64 = 1;

/// Serialize [`DocStats`] into the fifth snapshot section. Map entries
/// are written in sorted key order so identical stats produce identical
/// bytes. Public because the BLM2 storage format embeds the same
/// serialization as its stats section.
pub fn encode_stats_section(stats: &DocStats) -> Vec<u8> {
    let mut out = Vec::new();
    push_varint(&mut out, STATS_SECTION_VERSION);
    push_varint(&mut out, stats.element_count as u64);
    push_varint(&mut out, stats.text_count as u64);
    push_varint(&mut out, stats.max_depth as u64);
    push_varint(&mut out, stats.max_recursion as u64);
    push_varint(&mut out, stats.text_bytes as u64);
    push_varint(&mut out, stats.avg_depth.to_bits());

    let mut recursive: Vec<(&String, &u16)> = stats.recursive_tags.iter().collect();
    recursive.sort();
    push_varint(&mut out, recursive.len() as u64);
    for (name, degree) in recursive {
        push_bytes(&mut out, name.as_bytes());
        push_varint(&mut out, *degree as u64);
    }

    let mut counts: Vec<(&String, &u32)> = stats.tag_counts.iter().collect();
    counts.sort();
    push_varint(&mut out, counts.len() as u64);
    for (name, count) in counts {
        push_bytes(&mut out, name.as_bytes());
        push_varint(&mut out, *count as u64);
    }

    let mut pairs: Vec<(&(String, String), &Containment)> = stats.containment.iter().collect();
    pairs.sort_by_key(|(key, _)| *key);
    push_varint(&mut out, pairs.len() as u64);
    for ((anc, desc), c) in pairs {
        push_bytes(&mut out, anc.as_bytes());
        push_bytes(&mut out, desc.as_bytes());
        push_varint(&mut out, c.pairs);
        push_varint(&mut out, c.ancestors as u64);
        for b in c.fanout_log2 {
            push_varint(&mut out, b as u64);
        }
    }
    out
}

/// Deserialize the fifth snapshot section back into [`DocStats`].
/// Public for the same reason as [`encode_stats_section`].
pub fn decode_stats_section(bytes: &[u8]) -> Result<DocStats, DecodeError> {
    let mut pos = 0usize;
    let version = read_varint(bytes, &mut pos)?;
    if version != STATS_SECTION_VERSION {
        return Err(DecodeError(format!("unknown stats section version {version}")));
    }
    let element_count = read_varint(bytes, &mut pos)? as usize;
    let text_count = read_varint(bytes, &mut pos)? as usize;
    let max_depth = read_varint(bytes, &mut pos)? as u16;
    let max_recursion = read_varint(bytes, &mut pos)? as u16;
    let text_bytes = read_varint(bytes, &mut pos)? as usize;
    let avg_depth = f64::from_bits(read_varint(bytes, &mut pos)?);

    let n = read_varint(bytes, &mut pos)? as usize;
    let mut recursive_tags = crate::fxhash::FxHashMap::default();
    for _ in 0..n {
        let name = read_str(bytes, &mut pos)?.to_string();
        let degree = read_varint(bytes, &mut pos)? as u16;
        recursive_tags.insert(name, degree);
    }

    let n = read_varint(bytes, &mut pos)? as usize;
    let mut tag_counts = crate::fxhash::FxHashMap::default();
    for _ in 0..n {
        let name = read_str(bytes, &mut pos)?.to_string();
        let count = read_varint(bytes, &mut pos)? as u32;
        tag_counts.insert(name, count);
    }

    let n = read_varint(bytes, &mut pos)? as usize;
    let mut containment = crate::fxhash::FxHashMap::default();
    for _ in 0..n {
        let anc = read_str(bytes, &mut pos)?.to_string();
        let desc = read_str(bytes, &mut pos)?.to_string();
        let pairs = read_varint(bytes, &mut pos)?;
        let ancestors = read_varint(bytes, &mut pos)? as u32;
        let mut fanout_log2 = [0u32; FANOUT_BUCKETS];
        for b in fanout_log2.iter_mut() {
            *b = read_varint(bytes, &mut pos)? as u32;
        }
        containment.insert((anc, desc), Containment { pairs, ancestors, fanout_log2 });
    }

    let tag_count = tag_counts.len();
    Ok(DocStats {
        recursive_tags,
        tag_counts,
        containment,
        node_count: element_count + text_count,
        element_count,
        text_count,
        avg_depth,
        max_depth,
        tag_count,
        recursive: max_recursion > 1,
        max_recursion,
        text_bytes,
        structure_bytes: element_count * 4,
    })
}

/// Section sizes of an encoded buffer (without decoding it fully).
pub fn section_sizes(bytes: &[u8]) -> Result<SectionSizes, DecodeError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(DecodeError("bad magic".into()));
    }
    let mut pos = 4usize;
    let symbols = read_block(bytes, &mut pos)?.len();
    let skeleton = read_block(bytes, &mut pos)?.len();
    let tags = read_block(bytes, &mut pos)?.len();
    let content = read_block(bytes, &mut pos)?.len();
    let stats =
        if pos < bytes.len() { read_block(bytes, &mut pos)?.len() } else { 0 };
    Ok(SectionSizes { symbols, skeleton, tags, content, stats })
}

/// Reconstruct a document from the succinct format. Ignores the
/// optional stats section (and any trailing bytes); use
/// [`decode_with_stats`] to recover embedded statistics.
pub fn decode(bytes: &[u8]) -> Result<Document, DecodeError> {
    decode_inner(bytes).map(|(doc, _)| doc)
}

/// Reconstruct a document plus its embedded [`DocStats`], if the
/// snapshot carries the optional fifth section. Snapshots written before
/// the stats section return `None` (callers recompute); a present but
/// corrupt stats section is an error.
pub fn decode_with_stats(bytes: &[u8]) -> Result<(Document, Option<DocStats>), DecodeError> {
    let (doc, mut pos) = decode_inner(bytes)?;
    if pos >= bytes.len() {
        return Ok((doc, None));
    }
    let stats_sec = read_block(bytes, &mut pos)?;
    let stats = decode_stats_section(stats_sec)?;
    Ok((doc, Some(stats)))
}

/// Decode the four core sections; returns the document and the byte
/// position just past the content section.
fn decode_inner(bytes: &[u8]) -> Result<(Document, usize), DecodeError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(DecodeError("bad magic".into()));
    }
    let mut pos = 4usize;
    let symbols_sec = read_block(bytes, &mut pos)?;
    let skeleton_sec = read_block(bytes, &mut pos)?;
    let tags_sec = read_block(bytes, &mut pos)?;
    let content_sec = read_block(bytes, &mut pos)?;

    // Symbol table: index 0 is the document symbol, implicit.
    let mut spos = 0usize;
    let count = read_varint(symbols_sec, &mut spos)? as usize;
    let mut names: Vec<String> = Vec::with_capacity(count.saturating_sub(1));
    for _ in 1..count {
        names.push(read_str(symbols_sec, &mut spos)?.to_string());
    }
    let name_of = |sym: u64| -> Result<&str, DecodeError> {
        names
            .get((sym as usize).wrapping_sub(1))
            .map(String::as_str)
            .ok_or_else(|| DecodeError(format!("unknown symbol {sym}")))
    };

    let mut builder = TreeBuilder::new(ParseOptions { keep_whitespace_text: true });
    let mut reader = BitReader { bytes: skeleton_sec, pos: 0 };
    let mut tpos = 0usize;
    let mut cpos = 0usize;
    let mut depth = 0usize;
    loop {
        match reader.next() {
            EV_OPEN => {
                let sym = read_varint(tags_sec, &mut tpos)?;
                builder.start_element(name_of(sym)?);
                let n_attrs = read_varint(content_sec, &mut cpos)?;
                for _ in 0..n_attrs {
                    let attr_sym = read_varint(content_sec, &mut cpos)?;
                    let name = name_of(attr_sym)?.to_string();
                    let value = read_str(content_sec, &mut cpos)?.to_string();
                    builder.attribute(&name, &value);
                }
                depth += 1;
            }
            EV_CLOSE => {
                if depth == 0 {
                    return Err(DecodeError("unbalanced close event".into()));
                }
                builder.end_element();
                depth -= 1;
            }
            EV_TEXT => {
                let text = read_str(content_sec, &mut cpos)?.to_string();
                builder.text(&text);
            }
            EV_END => {
                if depth != 0 {
                    return Err(DecodeError("truncated skeleton".into()));
                }
                return Ok((builder.finish(), pos));
            }
            _ => unreachable!("2-bit codes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer;

    fn roundtrip(xml: &str) {
        let doc = Document::parse_str(xml).unwrap();
        let bytes = encode(&doc);
        let back = decode(&bytes).unwrap();
        assert_eq!(writer::to_string(&doc), writer::to_string(&back), "for {xml}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("<a/>");
        roundtrip("<a>text</a>");
        roundtrip(r#"<bib><book year="1994"><title>a &amp; b</title></book><x/></bib>"#);
        roundtrip("<a>x<b>y</b>z<c><d/></c></a>");
    }

    #[test]
    fn structure_is_separated_from_content() {
        let doc = Document::parse_str(
            "<r><a>some fairly long text content here</a><a>more of the same stuff</a></r>",
        )
        .unwrap();
        let bytes = encode(&doc);
        let sizes = section_sizes(&bytes).unwrap();
        // Three elements = 7 structural events (incl. END) = 2 bytes;
        // structure is tiny compared to the text blob.
        assert!(sizes.structure() < sizes.content, "{sizes:?}");
        assert!(sizes.skeleton <= 3, "{sizes:?}");
        // total() excludes the five section-length prefixes.
        assert!(sizes.total() <= bytes.len() && bytes.len() <= sizes.total() + 25);
    }

    #[test]
    fn skeleton_is_quarter_byte_per_event() {
        // 1000 empty elements: 2001 events (opens+closes+END) ≈ 501 bytes.
        let mut xml = String::from("<r>");
        for _ in 0..999 {
            xml.push_str("<e/>");
        }
        xml.push_str("</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let sizes = section_sizes(&encode(&doc)).unwrap();
        assert!((500..=502).contains(&sizes.skeleton), "{}", sizes.skeleton);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"").is_err());
        assert!(decode(b"WRNG123").is_err());
        let doc = Document::parse_str("<a><b/></a>").unwrap();
        let bytes = encode(&doc);
        // Truncating into the core sections breaks decode.
        let sizes = section_sizes(&bytes).unwrap();
        let mut core = bytes.clone();
        core.truncate(bytes.len() - sizes.stats - 2);
        assert!(decode(&core).is_err());
        // Truncating only the trailing stats section leaves the document
        // decodable, but stats recovery reports the corruption.
        let mut tail = bytes.clone();
        tail.truncate(bytes.len() - 1);
        assert!(decode(&tail).is_ok());
        assert!(decode_with_stats(&tail).is_err());
    }

    #[test]
    fn stats_section_roundtrips() {
        let doc = Document::parse_str(
            "<bib><book><title>T</title><author>A</author></book><book/><bib><book/></bib></bib>",
        )
        .unwrap();
        let (back, stats) = decode_with_stats(&encode(&doc)).unwrap();
        let stats = stats.expect("snapshot embeds stats");
        assert_eq!(stats, doc.stats());
        assert_eq!(stats, back.stats());
        let sizes = section_sizes(&encode(&doc)).unwrap();
        assert!(sizes.stats > 0);
    }

    #[test]
    fn pre_stats_snapshots_still_decode() {
        // A four-section snapshot (what older writers produced) decodes
        // with `None` stats.
        let doc = Document::parse_str("<a><b/>x</a>").unwrap();
        let with = encode(&doc);
        let sizes = section_sizes(&with).unwrap();
        let mut old = with.clone();
        // Drop the stats block and its 1-byte length prefix (section is
        // small here, so the varint prefix is a single byte).
        old.truncate(with.len() - sizes.stats - 1);
        assert_eq!(section_sizes(&old).unwrap().stats, 0);
        let (back, stats) = decode_with_stats(&old).unwrap();
        assert!(stats.is_none());
        assert_eq!(writer::to_string(&back), writer::to_string(&doc));
    }

    #[test]
    fn preserves_node_statistics() {
        let doc = Document::parse_str(
            "<bib><book><title>T</title><author>A</author></book><book/></bib>",
        )
        .unwrap();
        let back = decode(&encode(&doc)).unwrap();
        assert_eq!(doc.stats(), back.stats());
    }

    #[test]
    fn whitespace_text_preserved_exactly() {
        // The succinct format must not re-apply whitespace policies.
        let doc = Document::parse_str_with(
            "<a> <b/> </a>",
            ParseOptions { keep_whitespace_text: true },
        )
        .unwrap();
        let back = decode(&encode(&doc)).unwrap();
        assert_eq!(writer::to_string(&doc), writer::to_string(&back));
    }
}
