//! Axis navigation helpers.
//!
//! The NoK pattern-matching operator of the paper navigates with exactly
//! two primitives — `First-Child` and `Following-Sibling` (Algorithm 2) —
//! while the decomposition step cuts on the *global* axes (`//`,
//! `following`, ...). This module packages both the local primitives and
//! the global axes as iterators over [`Document`] nodes.

use crate::document::{Document, NodeId};
use crate::symbol::Sym;

/// The axes the query subset uses. Local axes stay inside a NoK pattern
/// tree; global axes become cut (join) edges during decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — children.
    Child,
    /// `//` — descendants (global).
    Descendant,
    /// `following-sibling::` — right siblings (local).
    FollowingSibling,
    /// `preceding-sibling::` — left siblings (local).
    PrecedingSibling,
    /// `following::` — everything after the subtree (global).
    Following,
    /// `preceding::` — everything strictly before the node, ancestors
    /// excluded (global).
    Preceding,
    /// `self::` — identity; appears when `.` is used in predicates.
    SelfAxis,
}

impl Axis {
    /// Local axes may stay inside a NoK pattern tree; global axes must be
    /// cut into structural joins (Section 2.1 of the paper).
    pub fn is_local(self) -> bool {
        matches!(
            self,
            Axis::Child | Axis::FollowingSibling | Axis::PrecedingSibling | Axis::SelfAxis
        )
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::SelfAxis => "self",
        };
        f.write_str(s)
    }
}

/// Does `(context, candidate)` satisfy `axis`?
pub fn axis_matches(doc: &Document, axis: Axis, context: NodeId, candidate: NodeId) -> bool {
    match axis {
        Axis::Child => doc.is_parent(context, candidate),
        Axis::Descendant => doc.is_ancestor(context, candidate),
        Axis::FollowingSibling => {
            doc.parent(context) == doc.parent(candidate) && context.0 < candidate.0
        }
        Axis::PrecedingSibling => {
            doc.parent(context) == doc.parent(candidate) && candidate.0 < context.0
        }
        Axis::Following => doc.last_descendant(context).0 < candidate.0,
        Axis::Preceding => {
            candidate.0 < context.0 && doc.last_descendant(candidate).0 < context.0
        }
        Axis::SelfAxis => context == candidate,
    }
}

/// All nodes reachable from `context` along `axis`, in document order.
pub fn axis_nodes<'d>(
    doc: &'d Document,
    axis: Axis,
    context: NodeId,
) -> Box<dyn Iterator<Item = NodeId> + 'd> {
    match axis {
        Axis::Child => Box::new(doc.children(context)),
        Axis::Descendant => Box::new(doc.descendants(context)),
        Axis::FollowingSibling => {
            let mut next = doc.next_sibling(context);
            Box::new(std::iter::from_fn(move || {
                let cur = next?;
                next = doc.next_sibling(cur);
                Some(cur)
            }))
        }
        Axis::PrecedingSibling => match doc.parent(context) {
            Some(p) => Box::new(doc.children(p).take_while(move |&c| c != context)),
            None => Box::new(std::iter::empty()),
        },
        Axis::Following => {
            let first = doc.last_descendant(context).0 + 1;
            Box::new((first..doc.len() as u32).map(NodeId))
        }
        Axis::Preceding => Box::new(
            (1..context.0)
                .map(NodeId)
                .filter(move |&n| doc.last_descendant(n).0 < context.0),
        ),
        Axis::SelfAxis => Box::new(std::iter::once(context)),
    }
}

/// Element children of `context` with tag `sym`.
pub fn element_children<'d>(
    doc: &'d Document,
    context: NodeId,
    sym: Sym,
) -> impl Iterator<Item = NodeId> + 'd {
    doc.children(context).filter(move |&c| doc.tag(c) == Some(sym))
}

/// Element descendants of `context` with tag `sym`.
pub fn element_descendants<'d>(
    doc: &'d Document,
    context: NodeId,
    sym: Sym,
) -> impl Iterator<Item = NodeId> + 'd {
    doc.descendants(context).filter(move |&c| doc.tag(c) == Some(sym))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    fn doc() -> Document {
        Document::parse_str("<a><b><c/><d/></b><e/><b/></a>").unwrap()
    }

    fn by_tag(doc: &Document, tag: &str) -> Vec<NodeId> {
        doc.elements().filter(|&n| doc.tag_name(n) == Some(tag)).collect()
    }

    #[test]
    fn axis_locality() {
        assert!(Axis::Child.is_local());
        assert!(Axis::FollowingSibling.is_local());
        assert!(Axis::SelfAxis.is_local());
        assert!(!Axis::Descendant.is_local());
        assert!(!Axis::Following.is_local());
    }

    #[test]
    fn child_axis() {
        let d = doc();
        let a = d.root_element().unwrap();
        let kids: Vec<_> = axis_nodes(&d, Axis::Child, a)
            .map(|n| d.tag_name(n).unwrap())
            .collect();
        assert_eq!(kids, vec!["b", "e", "b"]);
    }

    #[test]
    fn descendant_axis() {
        let d = doc();
        let a = d.root_element().unwrap();
        assert_eq!(axis_nodes(&d, Axis::Descendant, a).count(), 5);
        let b = by_tag(&d, "b")[0];
        let descs: Vec<_> = axis_nodes(&d, Axis::Descendant, b)
            .map(|n| d.tag_name(n).unwrap())
            .collect();
        assert_eq!(descs, vec!["c", "d"]);
    }

    #[test]
    fn following_sibling_axis() {
        let d = doc();
        let b0 = by_tag(&d, "b")[0];
        let sibs: Vec<_> = axis_nodes(&d, Axis::FollowingSibling, b0)
            .map(|n| d.tag_name(n).unwrap())
            .collect();
        assert_eq!(sibs, vec!["e", "b"]);
    }

    #[test]
    fn following_axis_excludes_descendants() {
        let d = doc();
        let b0 = by_tag(&d, "b")[0];
        let following: Vec<_> = axis_nodes(&d, Axis::Following, b0)
            .filter(|&n| d.is_element(n))
            .map(|n| d.tag_name(n).unwrap())
            .collect();
        assert_eq!(following, vec!["e", "b"]);
        let c = by_tag(&d, "c")[0];
        assert!(axis_matches(&d, Axis::Following, c, by_tag(&d, "d")[0]));
        assert!(!axis_matches(&d, Axis::Following, b0, c));
    }

    #[test]
    fn matches_agree_with_iterators() {
        let d = doc();
        let all: Vec<NodeId> = d.elements().collect();
        for &ctx in &all {
            for axis in [Axis::Child, Axis::Descendant, Axis::FollowingSibling, Axis::Following] {
                let via_iter: Vec<NodeId> =
                    axis_nodes(&d, axis, ctx).filter(|&n| d.is_element(n)).collect();
                let via_pred: Vec<NodeId> = all
                    .iter()
                    .copied()
                    .filter(|&n| axis_matches(&d, axis, ctx, n))
                    .collect();
                assert_eq!(via_iter, via_pred, "axis {axis:?} ctx {ctx:?}");
            }
        }
    }

    #[test]
    fn typed_helpers() {
        let d = doc();
        let a = d.root_element().unwrap();
        let b = d.sym("b").unwrap();
        assert_eq!(element_children(&d, a, b).count(), 2);
        assert_eq!(element_descendants(&d, a, b).count(), 2);
        let c = d.sym("c").unwrap();
        assert_eq!(element_children(&d, a, c).count(), 0);
        assert_eq!(element_descendants(&d, a, c).count(), 1);
    }
}
