//! Region labels for structural predicates.
//!
//! A region label is `(start, end, level)` where `start` is the node's
//! preorder (document-order) position, `end` is the position of the last
//! node in its subtree, and `level` is its depth. These are the classic
//! interval encodings used by structural-join algorithms: containment and
//! ordering reduce to integer comparisons, with `level` distinguishing the
//! parent/child case from general ancestor/descendant.

/// Interval + level label of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Preorder position (equals the node id in this store).
    pub start: u32,
    /// Preorder position of the last descendant (== `start` for leaves).
    pub end: u32,
    /// Depth; 0 = document node, 1 = root element.
    pub level: u16,
}

impl Region {
    /// Does `self` properly contain `other` (ancestor/descendant)?
    #[inline]
    pub fn contains(&self, other: &Region) -> bool {
        self.start < other.start && other.end <= self.end
    }

    /// Is `self` the parent region of `other`?
    #[inline]
    pub fn is_parent_of(&self, other: &Region) -> bool {
        self.contains(other) && self.level + 1 == other.level
    }

    /// Does `self` start strictly before `other` in document order
    /// (XQuery's `<<` on distinct nodes)?
    #[inline]
    pub fn before(&self, other: &Region) -> bool {
        self.start < other.start
    }

    /// Is `self` entirely before `other` (the `preceding` axis: before in
    /// document order and not an ancestor)?
    #[inline]
    pub fn preceding(&self, other: &Region) -> bool {
        self.end < other.start
    }

    /// Is `self` entirely after `other` (the `following` axis)?
    #[inline]
    pub fn following(&self, other: &Region) -> bool {
        other.end < self.start
    }

    /// Are the two regions disjoint (neither contains the other)?
    #[inline]
    pub fn disjoint(&self, other: &Region) -> bool {
        self.end < other.start || other.end < self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    fn regions(xml: &str) -> (Document, Vec<Region>) {
        let doc = Document::parse_str(xml).unwrap();
        let rs = doc.elements().map(|n| doc.region(n)).collect();
        (doc, rs)
    }

    #[test]
    fn containment() {
        // <a><b><c/></b><d/></a>
        let (_, r) = regions("<a><b><c/></b><d/></a>");
        let (a, b, c, d) = (r[0], r[1], r[2], r[3]);
        assert!(a.contains(&b) && a.contains(&c) && a.contains(&d));
        assert!(b.contains(&c));
        assert!(!c.contains(&b));
        assert!(!b.contains(&d));
        assert!(!a.contains(&a), "containment is proper");
    }

    #[test]
    fn parenthood_requires_level() {
        let (_, r) = regions("<a><b><c/></b></a>");
        let (a, b, c) = (r[0], r[1], r[2]);
        assert!(a.is_parent_of(&b));
        assert!(b.is_parent_of(&c));
        assert!(!a.is_parent_of(&c));
    }

    #[test]
    fn ordering_axes() {
        let (_, r) = regions("<a><b><c/></b><d/></a>");
        let (a, b, c, d) = (r[0], r[1], r[2], r[3]);
        assert!(b.before(&d) && c.before(&d) && a.before(&b));
        // `preceding` excludes ancestors.
        assert!(b.preceding(&d));
        assert!(!a.preceding(&d));
        assert!(d.following(&b) && d.following(&c));
        assert!(!d.following(&a));
        assert!(b.disjoint(&d));
        assert!(!a.disjoint(&b));
    }

    #[test]
    fn nesting_invariant_holds_for_all_pairs() {
        let (_, r) = regions("<a><b><c/><d><e/></d></b><f/><g><h/></g></a>");
        for x in &r {
            for y in &r {
                // Regions never partially overlap.
                let properly_nested =
                    x.contains(y) || y.contains(x) || x.disjoint(y) || x == y;
                assert!(properly_nested, "{x:?} vs {y:?}");
            }
        }
    }
}
