//! Arena-allocated XML document tree in a struct-of-arrays layout.
//!
//! All nodes live in parallel columns indexed by [`NodeId`]. Ids are
//! assigned in document (pre-) order during parsing, which gives the two
//! properties the BlossomTree operators rely on:
//!
//! 1. **Document order is id order** — comparing two nodes' positions is a
//!    `u32` compare (the `<<` operator of XQuery).
//! 2. **Subtrees are contiguous** — the descendants of node `n` are exactly
//!    the ids in `(n, n.last_descendant]`, so ancestor/descendant tests and
//!    the bounded nested-loop join's `(p1, p2)` range scans are interval
//!    checks.
//!
//! # Storage layout
//!
//! The arena is struct-of-arrays rather than a `Vec` of 40-byte node
//! records: `parent` / `first_child` / `next_sibling` / `last_desc` are
//! dense `Vec<u32>` columns, `level` is a `Vec<u16>`, and node kind plus
//! its payload (tag symbol for elements, text index for text nodes) are
//! packed into a single `Vec<u32>` with the kind in the low two bits.
//! Hot loops — tag-stream scans, region containment tests, `string_value`,
//! the partitioned `par_scan` — each touch only the one or two columns
//! they need, so a scan over a million nodes streams 4 bytes per node
//! instead of striding over full records and evicting cache lines it
//! never reads. The region label of node `n` is `(n, last_desc[n],
//! level[n])`: the `start` coordinate is the id itself and never stored.

use crate::colsrc::{Col, TextStore};
use crate::fxhash::FxHashMap;
use crate::label::Region;
use crate::parser::{Event, ParseError, Reader};
use crate::stats::DocStats;
use crate::symbol::{Sym, SymbolTable};
use std::fmt;

/// Index of a node in a [`Document`] arena. Node 0 is always the virtual
/// document node. `repr(transparent)` over `u32` so posting columns of
/// `NodeId` can be mapped directly from little-endian snapshot bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The virtual document node.
    pub const DOCUMENT: NodeId = NodeId(0);

    /// Index into arena arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The virtual document node (id 0), parent of the root element.
    Document,
    /// An element with the given interned tag.
    Element(Sym),
    /// A text node.
    Text,
}

pub(crate) const NIL: u32 = u32::MAX;

/// Kind tags stored in the low bits of the packed kind/payload column.
pub(crate) const KIND_DOCUMENT: u32 = 0;
pub(crate) const KIND_ELEMENT: u32 = 1;
pub(crate) const KIND_TEXT: u32 = 2;
pub(crate) const KIND_BITS: u32 = 2;
pub(crate) const KIND_MASK: u32 = (1 << KIND_BITS) - 1;

/// Pack a node kind and its payload (tag symbol or text index) into one
/// `u32`. Payloads are capped at 30 bits — ample, since both symbols and
/// text indexes are bounded by the `u32` node count.
#[inline]
pub(crate) fn pack(kind: u32, payload: u32) -> u32 {
    debug_assert!(payload <= (u32::MAX >> KIND_BITS), "payload overflows packed column");
    (payload << KIND_BITS) | kind
}

/// Parsing policy knobs for [`Document::parse_str_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions {
    /// Keep text nodes that consist only of whitespace (default: false;
    /// data-centric documents treat inter-element whitespace as noise).
    pub keep_whitespace_text: bool,
}

/// An immutable, arena-backed XML document in struct-of-arrays layout.
///
/// Each column is a [`Col`]: either an owned `Vec` (parse/build/splice
/// output) or a zero-copy window into a mapped BLM2 snapshot — the
/// distinction is invisible to every consumer (see [`crate::colsrc`]).
pub struct Document {
    /// Parent id per node (`NIL` for the document node).
    pub(crate) parent: Col<u32>,
    /// First-child id per node (`NIL` for leaves).
    pub(crate) first_child: Col<u32>,
    /// Next-sibling id per node (`NIL` for last children).
    pub(crate) next_sibling: Col<u32>,
    /// Region `end` column: id of the last node in each subtree.
    pub(crate) last_desc: Col<u32>,
    /// Region `level` column: depth, 0 for the document node.
    pub(crate) level: Col<u16>,
    /// Packed kind (low 2 bits) + payload (tag symbol or text index).
    pub(crate) kind_sym: Col<u32>,
    pub(crate) texts: TextStore,
    /// Sparse attribute storage: element id -> attributes in document order.
    pub(crate) attrs: FxHashMap<u32, Vec<(Sym, Box<str>)>>,
    pub(crate) symbols: SymbolTable,
    /// Process-unique identity (see [`Document::uid`]).
    pub(crate) uid: u64,
}

/// The raw columns of a [`Document`], used to reconstruct one from a
/// storage snapshot. See [`Document::from_column_parts`].
pub struct ColumnParts {
    /// Parent id per node (`NIL` for the document node).
    pub parent: Col<u32>,
    /// First-child id per node (`NIL` for leaves).
    pub first_child: Col<u32>,
    /// Next-sibling id per node (`NIL` for last children).
    pub next_sibling: Col<u32>,
    /// Region `end` column.
    pub last_desc: Col<u32>,
    /// Region `level` column.
    pub level: Col<u16>,
    /// Packed kind/payload column.
    pub kind_sym: Col<u32>,
    /// Text-node contents.
    pub texts: TextStore,
    /// Attributes per element id, in document order.
    pub attrs: FxHashMap<u32, Vec<(Sym, Box<str>)>>,
    /// The interned name table.
    pub symbols: SymbolTable,
}

/// Monotone source of [`Document::uid`] values.
static NEXT_DOC_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Mint a process-unique [`Document::uid`]. Every constructed document —
/// parsed, built, decoded, or spliced by [`crate::mutate`] — draws from
/// the same monotone counter, so uids never alias across code paths.
pub(crate) fn fresh_uid() -> u64 {
    NEXT_DOC_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Document")
            .field("nodes", &self.kind_sym.len())
            .field("tags", &(self.symbols.len().saturating_sub(1)))
            .finish()
    }
}

impl Document {
    /// Parse `input` with default options.
    pub fn parse_str(input: &str) -> Result<Document, ParseError> {
        Self::parse_str_with(input, ParseOptions::default())
    }

    /// Parse `input` with explicit [`ParseOptions`].
    pub fn parse_str_with(input: &str, options: ParseOptions) -> Result<Document, ParseError> {
        let mut builder = TreeBuilder::new(options);
        let mut reader = Reader::new(input);
        while let Some(event) = reader.next_event()? {
            builder.event(event);
        }
        Ok(builder.finish())
    }

    /// Build a document programmatically; see [`TreeBuilder`].
    pub fn builder() -> TreeBuilder {
        TreeBuilder::new(ParseOptions::default())
    }

    /// Reassemble a document from raw columns (a decoded or mapped
    /// snapshot), validating every structural invariant the navigation
    /// and operator code relies on — after this check, indexing a
    /// (possibly attacker-supplied) mapped column is as safe as
    /// indexing a parsed one:
    ///
    /// * all columns have one entry per node, and node ids fit `u32`;
    /// * node 0 is the document node (`parent == NIL`, kind document);
    /// * `parent[v] < v` for every other node (ancestor walks strictly
    ///   descend and terminate), and only node 0 may have a `NIL` parent;
    /// * `first_child`/`next_sibling` are `NIL` or strictly greater than
    ///   the node and in bounds (child/sibling walks strictly advance);
    /// * `v <= last_desc[v] < n` (descendant ranges are in bounds);
    /// * element payloads index the symbol table, text payloads the text
    ///   store, and the 2-bit kind is never the invalid value 3;
    /// * attribute keys are element ids in bounds.
    ///
    /// The checks are cheap flat column scans — O(n) with a handful of
    /// compares per node, far from the O(nodes) *allocation* work this
    /// path exists to avoid.
    pub fn from_column_parts(parts: ColumnParts) -> Result<Document, String> {
        let n = parts.kind_sym.len();
        if n == 0 {
            return Err("document must contain the document node".into());
        }
        if n >= NIL as usize {
            return Err("node count overflows u32 ids".into());
        }
        for (name, len) in [
            ("parent", parts.parent.len()),
            ("first_child", parts.first_child.len()),
            ("next_sibling", parts.next_sibling.len()),
            ("last_desc", parts.last_desc.len()),
            ("level", parts.level.len()),
        ] {
            if len != n {
                return Err(format!("column {name} has {len} entries, expected {n}"));
            }
        }
        if parts.parent[0] != NIL || parts.kind_sym[0] & KIND_MASK != KIND_DOCUMENT {
            return Err("node 0 is not a document node".into());
        }
        let nsyms = parts.symbols.len() as u32;
        let ntexts = parts.texts.len() as u32;
        for v in 0..n {
            let id = v as u32;
            let p = parts.parent[v];
            if v > 0 && p >= id {
                return Err(format!("node {id}: parent {p} does not precede it"));
            }
            let fc = parts.first_child[v];
            if fc != NIL && (fc <= id || fc as usize >= n) {
                return Err(format!("node {id}: first child {fc} out of range"));
            }
            let ns = parts.next_sibling[v];
            if ns != NIL && (ns <= id || ns as usize >= n) {
                return Err(format!("node {id}: next sibling {ns} out of range"));
            }
            let ld = parts.last_desc[v];
            if ld < id || ld as usize >= n {
                return Err(format!("node {id}: last descendant {ld} out of range"));
            }
            let packed = parts.kind_sym[v];
            let payload = packed >> KIND_BITS;
            match packed & KIND_MASK {
                KIND_DOCUMENT => {
                    if v != 0 {
                        return Err(format!("node {id}: document kind outside node 0"));
                    }
                }
                KIND_ELEMENT => {
                    if payload >= nsyms {
                        return Err(format!("node {id}: tag symbol {payload} out of range"));
                    }
                }
                KIND_TEXT => {
                    if payload >= ntexts {
                        return Err(format!("node {id}: text index {payload} out of range"));
                    }
                }
                _ => return Err(format!("node {id}: invalid node kind")),
            }
        }
        for (&eid, _) in parts.attrs.iter() {
            if eid as usize >= n {
                return Err(format!("attribute entry for node {eid} out of range"));
            }
        }
        Ok(Document {
            parent: parts.parent,
            first_child: parts.first_child,
            next_sibling: parts.next_sibling,
            last_desc: parts.last_desc,
            level: parts.level,
            kind_sym: parts.kind_sym,
            texts: parts.texts,
            attrs: parts.attrs,
            symbols: parts.symbols,
            uid: fresh_uid(),
        })
    }

    /// Total number of nodes, including the virtual document node.
    pub fn len(&self) -> usize {
        self.kind_sym.len()
    }

    /// Process-unique document identity. Two `Document` values never share
    /// a uid, even when parsed from identical bytes — anything derived from
    /// per-document state (statistics, cost-based plans) can key on it
    /// without risking cross-document aliasing.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Always false: a document has at least its virtual document node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The symbol table of this document.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Approximate heap footprint in bytes: the column vectors plus text
    /// and attribute payloads. Used by the server's document catalog to
    /// keep its LRU under a memory cap; an estimate (hash-map overhead
    /// and allocator slack are not counted), not an accounting. Mapped
    /// columns contribute **zero** — their pages live in the page cache
    /// against the snapshot file, not the process heap, so a mapped
    /// document's resident charge is just its symbol table, attributes,
    /// and fixed overhead.
    pub fn approx_heap_bytes(&self) -> usize {
        let columns = self.parent.heap_bytes()
            + self.first_child.heap_bytes()
            + self.next_sibling.heap_bytes()
            + self.last_desc.heap_bytes()
            + self.kind_sym.heap_bytes()
            + self.level.heap_bytes();
        let texts = self.texts.heap_bytes();
        let attrs: usize = self
            .attrs
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, val)| val.len() + std::mem::size_of::<(Sym, Box<str>)>())
            .sum();
        let symbols: usize = self
            .symbols
            .iter()
            .map(|(_, name)| name.len() + 2 * std::mem::size_of::<Box<str>>())
            .sum();
        columns + texts + attrs + symbols
    }

    /// Is any column of this document backed by a mapped snapshot?
    pub fn is_mapped(&self) -> bool {
        self.parent.is_mapped()
            || self.first_child.is_mapped()
            || self.next_sibling.is_mapped()
            || self.last_desc.is_mapped()
            || self.level.is_mapped()
            || self.kind_sym.is_mapped()
    }

    /// Look up the symbol for `tag`, if any element/attribute uses it.
    pub fn sym(&self, tag: &str) -> Option<Sym> {
        self.symbols.lookup(tag)
    }

    /// The root element (the single element child of the document node).
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(NodeId::DOCUMENT)
            .find(|&c| matches!(self.kind(c), NodeKind::Element(_)))
    }

    /// Node kind.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        let packed = self.kind_sym[n.index()];
        match packed & KIND_MASK {
            KIND_DOCUMENT => NodeKind::Document,
            KIND_ELEMENT => NodeKind::Element(Sym(packed >> KIND_BITS)),
            _ => NodeKind::Text,
        }
    }

    /// Is `n` an element?
    #[inline]
    pub fn is_element(&self, n: NodeId) -> bool {
        self.kind_sym[n.index()] & KIND_MASK == KIND_ELEMENT
    }

    /// The element tag symbol, if `n` is an element.
    #[inline]
    pub fn tag(&self, n: NodeId) -> Option<Sym> {
        let packed = self.kind_sym[n.index()];
        (packed & KIND_MASK == KIND_ELEMENT).then_some(Sym(packed >> KIND_BITS))
    }

    /// The element tag name, if `n` is an element.
    pub fn tag_name(&self, n: NodeId) -> Option<&str> {
        self.tag(n).map(|s| self.symbols.name(s))
    }

    /// Parent node, if any.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parent[n.index()];
        (p != NIL).then_some(NodeId(p))
    }

    /// First child, if any.
    #[inline]
    pub fn first_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.first_child[n.index()];
        (c != NIL).then_some(NodeId(c))
    }

    /// Next sibling, if any.
    #[inline]
    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        let s = self.next_sibling[n.index()];
        (s != NIL).then_some(NodeId(s))
    }

    /// Depth: 0 for the document node, 1 for the root element.
    #[inline]
    pub fn level(&self, n: NodeId) -> u16 {
        self.level[n.index()]
    }

    /// The last node id in `n`'s subtree (`n` itself for leaves).
    #[inline]
    pub fn last_descendant(&self, n: NodeId) -> NodeId {
        NodeId(self.last_desc[n.index()])
    }

    /// Region label of `n`: `(start, end, level)` with `start` the preorder
    /// id and `end` the last descendant id.
    #[inline]
    pub fn region(&self, n: NodeId) -> Region {
        Region {
            start: n.0,
            end: self.last_desc[n.index()],
            level: self.level[n.index()],
        }
    }

    /// The region `end` column (`last_desc` per node). Flat view for
    /// operators that bulk-load region labels, e.g. `TagIndex::build`.
    #[inline]
    pub fn last_desc_column(&self) -> &[u32] {
        &self.last_desc
    }

    /// The region `level` column. Flat view for bulk label loads.
    #[inline]
    pub fn level_column(&self) -> &[u16] {
        &self.level
    }

    /// The packed kind/payload column: low 2 bits are the node kind
    /// (0 document, 1 element, 2 text), high 30 bits the tag symbol
    /// (elements) or text index (text nodes). Flat view for tag scans.
    #[inline]
    pub fn kind_sym_column(&self) -> &[u32] {
        &self.kind_sym
    }

    /// The raw parent column (`NIL` = `u32::MAX` for the document node).
    /// Flat view for snapshot serialization.
    #[inline]
    pub fn parent_column(&self) -> &[u32] {
        &self.parent
    }

    /// The raw first-child column (`NIL` = `u32::MAX` for leaves).
    #[inline]
    pub fn first_child_column(&self) -> &[u32] {
        &self.first_child
    }

    /// The raw next-sibling column (`NIL` = `u32::MAX` for last children).
    #[inline]
    pub fn next_sibling_column(&self) -> &[u32] {
        &self.next_sibling
    }

    /// The text-node content store, for snapshot serialization.
    #[inline]
    pub fn text_store(&self) -> &TextStore {
        &self.texts
    }

    /// Is `a` a proper ancestor of `d`?
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        a.0 < d.0 && d.0 <= self.last_desc[a.index()]
    }

    /// Is `p` the parent of `c`?
    #[inline]
    pub fn is_parent(&self, p: NodeId, c: NodeId) -> bool {
        self.parent[c.index()] == p.0
    }

    /// Strictly-before in document order (`<<` of XQuery).
    #[inline]
    pub fn before(&self, a: NodeId, b: NodeId) -> bool {
        a.0 < b.0
    }

    /// Text content, if `n` is a text node.
    pub fn text(&self, n: NodeId) -> Option<&str> {
        let packed = self.kind_sym[n.index()];
        (packed & KIND_MASK == KIND_TEXT)
            .then(|| self.texts.get((packed >> KIND_BITS) as usize))
    }

    /// The string value of `n`: concatenation of all text in its subtree.
    pub fn string_value(&self, n: NodeId) -> String {
        let mut out = String::new();
        self.string_value_into(n, &mut out);
        out
    }

    /// Append the string value of `n` to `out` without clearing it, so
    /// callers can reuse one buffer across many nodes.
    pub fn string_value_into(&self, n: NodeId, out: &mut String) {
        let last = self.last_desc[n.index()] as usize;
        for &packed in &self.kind_sym[n.index()..=last] {
            if packed & KIND_MASK == KIND_TEXT {
                out.push_str(self.texts.get((packed >> KIND_BITS) as usize));
            }
        }
    }

    /// Attributes of an element, in document order.
    pub fn attributes(&self, n: NodeId) -> &[(Sym, Box<str>)] {
        self.attrs.get(&n.0).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Value of the attribute named `name` on `n`.
    pub fn attribute(&self, n: NodeId, name: &str) -> Option<&str> {
        let sym = self.symbols.lookup(name)?;
        self.attrs
            .get(&n.0)?
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, v)| v.as_ref())
    }

    /// Children iterator.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        Children { doc: self, next: self.first_child(n) }
    }

    /// Iterator over all nodes of the subtree rooted at `n`, excluding `n`,
    /// in document order.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let last = self.last_desc[n.index()];
        (n.0 + 1..=last).map(NodeId)
    }

    /// Iterator over `n` and all its descendants in document order.
    pub fn descendants_or_self(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let last = self.last_desc[n.index()];
        (n.0..=last).map(NodeId)
    }

    /// Iterator over all element nodes in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.kind_sym
            .iter()
            .enumerate()
            .filter(|(_, &packed)| packed & KIND_MASK == KIND_ELEMENT)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Ancestors of `n`, nearest first, ending at the document node.
    pub fn ancestors(&self, n: NodeId) -> Ancestors<'_> {
        Ancestors { doc: self, next: self.parent(n) }
    }

    /// Compute document statistics (see [`DocStats`]).
    pub fn stats(&self) -> DocStats {
        DocStats::compute(self)
    }

    /// Deep structural + textual equality of two subtrees (`fn:deep-equal`
    /// restricted to the element/text data model: same tag, same attribute
    /// set, pairwise deep-equal children).
    pub fn deep_equal(&self, a: NodeId, b: NodeId) -> bool {
        match (self.kind(a), self.kind(b)) {
            (NodeKind::Text, NodeKind::Text) => self.text(a) == self.text(b),
            (NodeKind::Element(sa), NodeKind::Element(sb)) => {
                if sa != sb || self.attributes(a) != self.attributes(b) {
                    return false;
                }
                let mut ca = self.children(a);
                let mut cb = self.children(b);
                loop {
                    match (ca.next(), cb.next()) {
                        (None, None) => return true,
                        (Some(x), Some(y)) => {
                            if !self.deep_equal(x, y) {
                                return false;
                            }
                        }
                        _ => return false,
                    }
                }
            }
            (NodeKind::Document, NodeKind::Document) => a == b,
            _ => false,
        }
    }
}

/// Iterator over a node's children.
pub struct Children<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.next_sibling(cur);
        Some(cur)
    }
}

/// Iterator over a node's ancestors, nearest first.
pub struct Ancestors<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.parent(cur);
        Some(cur)
    }
}

/// Incremental document constructor, fed by parser [`Event`]s or driven
/// programmatically via [`TreeBuilder::start_element`] and friends.
///
/// Builds the same struct-of-arrays columns as [`Document`]; `finish`
/// hands them over without copying.
pub struct TreeBuilder {
    parent: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    last_desc: Vec<u32>,
    level: Vec<u16>,
    kind_sym: Vec<u32>,
    texts: Vec<Box<str>>,
    attrs: FxHashMap<u32, Vec<(Sym, Box<str>)>>,
    symbols: SymbolTable,
    /// Stack of open element ids (document node at the bottom).
    open: Vec<u32>,
    /// Last child of each open element, for sibling linking.
    last_child: Vec<u32>,
    options: ParseOptions,
}

impl TreeBuilder {
    /// New builder; a virtual document node is created immediately.
    pub fn new(options: ParseOptions) -> Self {
        TreeBuilder {
            parent: vec![NIL],
            first_child: vec![NIL],
            next_sibling: vec![NIL],
            last_desc: vec![0],
            level: vec![0],
            kind_sym: vec![pack(KIND_DOCUMENT, Sym::DOCUMENT.0)],
            texts: Vec::new(),
            attrs: FxHashMap::default(),
            symbols: SymbolTable::new(),
            open: vec![0],
            last_child: vec![NIL],
            options,
        }
    }

    /// Number of nodes built so far (including the document node).
    pub fn len(&self) -> usize {
        self.kind_sym.len()
    }

    /// Never true: the document node always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn push_node(&mut self, packed: u32) -> u32 {
        let id = self.kind_sym.len() as u32;
        let parent = *self.open.last().expect("document node always open");
        self.parent.push(parent);
        self.first_child.push(NIL);
        self.next_sibling.push(NIL);
        self.last_desc.push(id);
        self.level.push(self.level[parent as usize] + 1);
        self.kind_sym.push(packed);
        let prev = *self.last_child.last().unwrap();
        if prev == NIL {
            self.first_child[parent as usize] = id;
        } else {
            self.next_sibling[prev as usize] = id;
        }
        *self.last_child.last_mut().unwrap() = id;
        id
    }

    /// Open an element.
    pub fn start_element(&mut self, tag: &str) {
        let sym = self.symbols.intern(tag);
        let id = self.push_node(pack(KIND_ELEMENT, sym.0));
        self.open.push(id);
        self.last_child.push(NIL);
    }

    /// Add an attribute to the currently open element.
    pub fn attribute(&mut self, name: &str, value: &str) {
        let id = *self.open.last().unwrap();
        debug_assert_ne!(id, 0, "attribute outside element");
        let sym = self.symbols.intern(name);
        self.attrs.entry(id).or_default().push((sym, value.into()));
    }

    /// Append a text node (coalesced with a preceding text sibling).
    pub fn text(&mut self, content: &str) {
        if !self.options.keep_whitespace_text && content.trim().is_empty() {
            return;
        }
        // Coalesce with the previous sibling if it is also text.
        let prev = *self.last_child.last().unwrap();
        if prev != NIL && self.kind_sym[prev as usize] & KIND_MASK == KIND_TEXT {
            let idx = (self.kind_sym[prev as usize] >> KIND_BITS) as usize;
            let mut s = String::from(std::mem::take(&mut self.texts[idx]));
            s.push_str(content);
            self.texts[idx] = s.into_boxed_str();
            return;
        }
        let text_idx = self.texts.len() as u32;
        self.texts.push(content.into());
        self.push_node(pack(KIND_TEXT, text_idx));
    }

    /// Close the current element.
    pub fn end_element(&mut self) {
        let id = self.open.pop().expect("unbalanced end_element");
        self.last_child.pop();
        debug_assert_ne!(id, 0, "cannot close the document node");
        let last = (self.kind_sym.len() - 1) as u32;
        self.last_desc[id as usize] = last;
    }

    /// Feed one parser event.
    pub fn event(&mut self, event: Event<'_>) {
        match event {
            Event::StartElement { name, attributes, self_closing } => {
                self.start_element(name);
                for (attr, value) in attributes {
                    self.attribute(attr, &value);
                }
                if self_closing {
                    self.end_element();
                }
            }
            Event::EndElement { .. } => self.end_element(),
            Event::Text(t) => self.text(&t),
            Event::Comment(_) | Event::ProcessingInstruction { .. } | Event::Doctype(_) => {}
        }
    }

    /// Finish and return the document. Panics if elements are still open
    /// (the parser guarantees balance; programmatic callers must too).
    pub fn finish(mut self) -> Document {
        assert_eq!(self.open.len(), 1, "unbalanced builder: elements still open");
        let last = (self.kind_sym.len() - 1) as u32;
        self.last_desc[0] = last;
        Document {
            parent: Col::Owned(self.parent),
            first_child: Col::Owned(self.first_child),
            next_sibling: Col::Owned(self.next_sibling),
            last_desc: Col::Owned(self.last_desc),
            level: Col::Owned(self.level),
            kind_sym: Col::Owned(self.kind_sym),
            texts: TextStore::Owned(self.texts),
            attrs: self.attrs,
            symbols: self.symbols,
            uid: fresh_uid(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = r#"<bib>
        <book year="1994"><title>TCP/IP Illustrated</title><author>Stevens</author></book>
        <book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author></book>
    </bib>"#;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse_str(BIB).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.tag_name(root), Some("bib"));
        let books: Vec<_> = doc.children(root).collect();
        assert_eq!(books.len(), 2);
        assert_eq!(doc.attribute(books[0], "year"), Some("1994"));
        assert_eq!(doc.attribute(books[1], "year"), Some("2000"));
        let title = doc.first_child(books[0]).unwrap();
        assert_eq!(doc.tag_name(title), Some("title"));
        assert_eq!(doc.string_value(title), "TCP/IP Illustrated");
    }

    #[test]
    fn preorder_ids_and_regions() {
        let doc = Document::parse_str("<a><b><c/></b><d/></a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.first_child(a).unwrap();
        let c = doc.first_child(b).unwrap();
        let d = doc.next_sibling(b).unwrap();
        assert!(a.0 < b.0 && b.0 < c.0 && c.0 < d.0);
        assert!(doc.is_ancestor(a, c));
        assert!(doc.is_ancestor(b, c));
        assert!(!doc.is_ancestor(b, d));
        assert!(!doc.is_ancestor(c, c), "ancestor is proper");
        assert!(doc.is_parent(b, c));
        assert!(!doc.is_parent(a, c));
        assert!(doc.before(b, d));
        let ra = doc.region(a);
        assert_eq!((ra.start, ra.end), (a.0, d.0));
    }

    #[test]
    fn levels() {
        let doc = Document::parse_str("<a><b><c/></b></a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.first_child(a).unwrap();
        let c = doc.first_child(b).unwrap();
        assert_eq!(doc.level(NodeId::DOCUMENT), 0);
        assert_eq!(doc.level(a), 1);
        assert_eq!(doc.level(b), 2);
        assert_eq!(doc.level(c), 3);
    }

    #[test]
    fn descendants_are_contiguous() {
        let doc = Document::parse_str("<a><b><c/><d/></b><e/></a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.first_child(a).unwrap();
        let descs: Vec<_> = doc
            .descendants(b)
            .map(|n| doc.tag_name(n).unwrap().to_string())
            .collect();
        assert_eq!(descs, vec!["c", "d"]);
        let all: Vec<_> = doc
            .descendants_or_self(a)
            .filter(|&n| doc.is_element(n))
            .map(|n| doc.tag_name(n).unwrap().to_string())
            .collect();
        assert_eq!(all, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn whitespace_text_dropped_by_default() {
        let doc = Document::parse_str("<a> <b>x</b> </a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.children(a).count(), 1);
        let kept = Document::parse_str_with(
            "<a> <b>x</b> </a>",
            ParseOptions { keep_whitespace_text: true },
        )
        .unwrap();
        let a = kept.root_element().unwrap();
        assert_eq!(kept.children(a).count(), 3);
    }

    #[test]
    fn adjacent_text_coalesces() {
        // Entity splits the raw text into segments the reader reports
        // separately only via CDATA; force it with CDATA.
        let doc = Document::parse_str("<a>one<![CDATA[ two]]> three</a>").unwrap();
        let a = doc.root_element().unwrap();
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 1);
        assert_eq!(doc.text(kids[0]), Some("one two three"));
    }

    #[test]
    fn string_value_concatenates() {
        let doc = Document::parse_str("<a>x<b>y</b>z</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.string_value(a), "xyz");
    }

    #[test]
    fn string_value_into_reuses_buffer() {
        let doc = Document::parse_str("<a>x<b>y</b>z</a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.children(a).find(|&c| doc.is_element(c)).unwrap();
        let mut buf = String::with_capacity(16);
        doc.string_value_into(a, &mut buf);
        assert_eq!(buf, "xyz");
        buf.clear();
        doc.string_value_into(b, &mut buf);
        assert_eq!(buf, "y");
    }

    #[test]
    fn ancestors_iterator() {
        let doc = Document::parse_str("<a><b><c/></b></a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.first_child(a).unwrap();
        let c = doc.first_child(b).unwrap();
        let ancs: Vec<_> = doc.ancestors(c).collect();
        assert_eq!(ancs, vec![b, a, NodeId::DOCUMENT]);
    }

    #[test]
    fn deep_equal_paper_semantics() {
        let doc = Document::parse_str(
            "<r><author><last>Knuth</last><first>Donald</first></author>\
             <author><last>Knuth</last><first>Donald</first></author>\
             <author><first>Donald</first><last>Knuth</last></author></r>",
        )
        .unwrap();
        let r = doc.root_element().unwrap();
        let auts: Vec<_> = doc.children(r).collect();
        assert!(doc.deep_equal(auts[0], auts[1]));
        // Order matters for deep-equal.
        assert!(!doc.deep_equal(auts[0], auts[2]));
    }

    #[test]
    fn deep_equal_considers_attributes() {
        let doc = Document::parse_str(r#"<r><x k="1"/><x k="1"/><x k="2"/><x/></r>"#).unwrap();
        let r = doc.root_element().unwrap();
        let xs: Vec<_> = doc.children(r).collect();
        assert!(doc.deep_equal(xs[0], xs[1]));
        assert!(!doc.deep_equal(xs[0], xs[2]));
        assert!(!doc.deep_equal(xs[0], xs[3]));
    }

    #[test]
    fn builder_programmatic() {
        let mut b = Document::builder();
        b.start_element("bib");
        b.start_element("book");
        b.attribute("year", "1968");
        b.text("TAoCP");
        b.end_element();
        b.end_element();
        let doc = b.finish();
        let root = doc.root_element().unwrap();
        let book = doc.first_child(root).unwrap();
        assert_eq!(doc.attribute(book, "year"), Some("1968"));
        assert_eq!(doc.string_value(book), "TAoCP");
    }

    #[test]
    fn elements_iterator_in_document_order() {
        let doc = Document::parse_str("<a><b/><c><d/></c></a>").unwrap();
        let tags: Vec<_> = doc.elements().map(|n| doc.tag_name(n).unwrap()).collect();
        assert_eq!(tags, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn column_views_are_consistent() {
        let doc = Document::parse_str("<a><b>t</b><c/></a>").unwrap();
        let ends = doc.last_desc_column();
        let levels = doc.level_column();
        assert_eq!(ends.len(), doc.len());
        assert_eq!(levels.len(), doc.len());
        for id in 0..doc.len() as u32 {
            let n = NodeId(id);
            assert_eq!(doc.last_descendant(n).0, ends[n.index()]);
            assert_eq!(doc.level(n), levels[n.index()]);
            let r = doc.region(n);
            assert_eq!((r.start, r.end, r.level), (id, ends[n.index()], levels[n.index()]));
        }
    }
}
