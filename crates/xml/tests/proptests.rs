//! Property-based tests for the XML substrate: serialize/parse round-trips,
//! region-label invariants, and statistics consistency over random trees.


// Gated: requires the external `proptest` crate. Build with
// `--features proptest` after restoring the dev-dependency (network).
#![cfg(feature = "proptest")]

use blossom_xml::writer;
use blossom_xml::{Document, NodeId, ParseOptions};
use proptest::prelude::*;

/// A recursively generated element tree rendered directly to markup.
#[derive(Debug, Clone)]
enum Tree {
    Element { tag: String, attrs: Vec<(String, String)>, children: Vec<Tree> },
    Text(String),
}

fn tag_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "book", "author", "title", "VP", "NP"])
        .prop_map(str::to_string)
}

fn text_content() -> impl Strategy<Value = String> {
    // Printable text including characters that require escaping; avoid
    // whitespace-only strings (dropped by default parse options).
    "[a-zA-Z<>&\"' ]{1,12}"
        .prop_filter("non-whitespace", |s: &String| !s.trim().is_empty())
}

fn attr() -> impl Strategy<Value = (String, String)> {
    (
        prop::sample::select(vec!["id", "year", "lang"]).prop_map(str::to_string),
        "[a-z<&\"0-9]{0,8}".prop_map(|s| s),
    )
}

fn tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        (tag_name(), prop::collection::vec(attr(), 0..2))
            .prop_map(|(tag, mut attrs)| {
                attrs.dedup_by(|a, b| a.0 == b.0);
                Tree::Element { tag, attrs, children: vec![] }
            }),
        text_content().prop_map(Tree::Text),
    ];
    leaf.prop_recursive(5, 64, 5, |inner| {
        (
            tag_name(),
            prop::collection::vec(attr(), 0..2),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(tag, mut attrs, children)| {
                attrs.dedup_by(|a, b| a.0 == b.0);
                Tree::Element { tag, attrs, children }
            })
    })
}

/// Root must be an element.
fn root_tree() -> impl Strategy<Value = Tree> {
    tree().prop_map(|t| match t {
        e @ Tree::Element { .. } => e,
        text => Tree::Element { tag: "root".into(), attrs: vec![], children: vec![text] },
    })
}

fn render(tree: &Tree, out: &mut String) {
    match tree {
        Tree::Text(t) => writer::escape_text(t, out),
        Tree::Element { tag, attrs, children } => {
            out.push('<');
            out.push_str(tag);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                writer::escape_attr(v, out);
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    render(c, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse(serialize(parse(x))) is a fixpoint: the second round-trip is
    /// byte-identical.
    #[test]
    fn serialize_parse_fixpoint(t in root_tree()) {
        let mut src = String::new();
        render(&t, &mut src);
        let doc = Document::parse_str(&src).unwrap();
        let one = writer::to_string(&doc);
        let doc2 = Document::parse_str(&one).unwrap();
        let two = writer::to_string(&doc2);
        prop_assert_eq!(one, two);
    }

    /// Region labels never partially overlap and parent regions contain
    /// child regions.
    #[test]
    fn region_labels_are_properly_nested(t in root_tree()) {
        let mut src = String::new();
        render(&t, &mut src);
        let doc = Document::parse_str(&src).unwrap();
        let regions: Vec<_> = doc.elements().map(|n| doc.region(n)).collect();
        for (i, x) in regions.iter().enumerate() {
            prop_assert!(x.start <= x.end);
            for y in regions.iter().skip(i + 1) {
                prop_assert!(
                    x.contains(y) || y.contains(x) || x.disjoint(y),
                    "partial overlap: {:?} vs {:?}", x, y
                );
            }
        }
        for n in doc.elements() {
            if let Some(p) = doc.parent(n) {
                if p != NodeId::DOCUMENT {
                    let (rp, rn) = (doc.region(p), doc.region(n));
                    prop_assert!(rp.is_parent_of(&rn));
                }
            }
        }
    }

    /// `is_ancestor` agrees with an independent parent-chain walk.
    #[test]
    fn ancestor_agrees_with_parent_chain(t in root_tree()) {
        let mut src = String::new();
        render(&t, &mut src);
        let doc = Document::parse_str(&src).unwrap();
        let nodes: Vec<_> = doc.elements().collect();
        for &a in nodes.iter() {
            for &d in nodes.iter() {
                let by_chain = doc.ancestors(d).any(|x| x == a);
                prop_assert_eq!(doc.is_ancestor(a, d), by_chain);
            }
        }
    }

    /// Stats are internally consistent.
    #[test]
    fn stats_consistency(t in root_tree()) {
        let mut src = String::new();
        render(&t, &mut src);
        let doc = Document::parse_str(&src).unwrap();
        let s = doc.stats();
        prop_assert_eq!(s.node_count, s.element_count + s.text_count);
        prop_assert_eq!(s.element_count, doc.elements().count());
        prop_assert!(s.avg_depth <= s.max_depth as f64);
        prop_assert_eq!(s.recursive, s.max_recursion > 1);
        // Independent recursion check via ancestor walks.
        let brute = doc.elements().any(|n| {
            doc.ancestors(n).any(|a| doc.tag(a).is_some() && doc.tag(a) == doc.tag(n))
        });
        prop_assert_eq!(s.recursive, brute);
    }

    /// Whitespace-handling options only affect text nodes.
    #[test]
    fn parse_options_only_affect_text(t in root_tree()) {
        let mut src = String::new();
        render(&t, &mut src);
        let strict = Document::parse_str_with(
            &src, ParseOptions { keep_whitespace_text: true }).unwrap();
        let lax = Document::parse_str(&src).unwrap();
        prop_assert_eq!(strict.stats().element_count, lax.stats().element_count);
        prop_assert!(strict.stats().text_count >= lax.stats().text_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The succinct storage scheme round-trips any document exactly.
    #[test]
    fn succinct_roundtrip(t in root_tree()) {
        let mut src = String::new();
        render(&t, &mut src);
        let doc = Document::parse_str(&src).unwrap();
        let bytes = blossom_xml::succinct::encode(&doc);
        let back = blossom_xml::succinct::decode(&bytes).unwrap();
        prop_assert_eq!(writer::to_string(&doc), writer::to_string(&back));
        prop_assert_eq!(doc.stats(), back.stats());
        let sizes = blossom_xml::succinct::section_sizes(&bytes).unwrap();
        prop_assert!(sizes.total() <= bytes.len());
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn succinct_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = blossom_xml::succinct::decode(&bytes);
        let _ = blossom_xml::succinct::section_sizes(&bytes);
    }

    /// The query lexer and XML parser never panic on arbitrary input.
    #[test]
    fn parsers_never_panic(input in "\\PC*") {
        let _ = Document::parse_str(&input);
    }
}
