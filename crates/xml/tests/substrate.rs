//! Direct unit tests for substrate modules that previously had no
//! dedicated coverage: Dewey identifiers, `DocStats` on degenerate
//! documents, and the parser's entity decoding.

use blossom_xml::dewey::Dewey;
use blossom_xml::parser::{decode_entities, ParseErrorKind};
use blossom_xml::{DocStats, Document};

// ------------------------------------------------------------------
// Dewey round-trips
// ------------------------------------------------------------------

#[test]
fn dewey_display_parse_round_trip_exhaustive() {
    // Every id in a small enumeration survives Display -> FromStr.
    let mut ids = vec![Dewey::root()];
    for a in 1..=3u32 {
        ids.push(Dewey::root().child(a));
        for b in 1..=3u32 {
            ids.push(Dewey::root().child(a).child(b));
            for c in [1u32, 7, 42, 1000] {
                ids.push(Dewey::root().child(a).child(b).child(c));
            }
        }
    }
    for id in &ids {
        let text = id.to_string();
        let back: Dewey = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&back, id, "round-trip of {text}");
        assert_eq!(back.depth(), id.components().len());
    }
}

#[test]
fn dewey_parse_rejects_malformed() {
    for bad in ["", ".", "1.", ".1", "1..2", "a", "1.a", "1.-2", "1. 2"] {
        assert!(bad.parse::<Dewey>().is_err(), "{bad:?} must not parse");
    }
}

#[test]
fn dewey_hierarchy_round_trips_through_parent() {
    let id: Dewey = "1.3.2.7".parse().unwrap();
    // child() then parent() is the identity...
    assert_eq!(id.child(4).parent(), Some(id.clone()));
    // ...and walking parents reaches the root in depth-1 steps.
    let mut cur = id.clone();
    let mut steps = 0;
    while let Some(p) = cur.parent() {
        assert!(p.is_parent_of(&cur));
        assert!(p.is_ancestor_of(&id));
        cur = p;
        steps += 1;
    }
    assert_eq!(steps, id.depth() - 1);
    assert_eq!(cur, Dewey::root());
}

// ------------------------------------------------------------------
// DocStats on edge documents
// ------------------------------------------------------------------

#[test]
fn stats_empty_root() {
    let doc = Document::parse_str("<r/>").unwrap();
    let s = DocStats::compute(&doc);
    assert_eq!(s.node_count, 1);
    assert_eq!(s.element_count, 1);
    assert_eq!(s.text_count, 0);
    assert_eq!(s.tag_count, 1);
    assert_eq!(s.max_depth, 1);
    assert_eq!(s.avg_depth, 1.0);
    assert!(!s.recursive);
    assert_eq!(s.max_recursion, 1);
    assert!(s.recursive_tags.is_empty());
    assert_eq!(s.text_bytes, 0);
}

#[test]
fn stats_single_text_node() {
    let doc = Document::parse_str("<r>hello</r>").unwrap();
    let s = DocStats::compute(&doc);
    assert_eq!(s.node_count, 2);
    assert_eq!(s.element_count, 1);
    assert_eq!(s.text_count, 1);
    assert_eq!(s.text_bytes, 5);
}

#[test]
fn stats_max_depth_chain() {
    // A same-tag chain of depth 40: maximally recursive.
    const DEPTH: usize = 40;
    let xml = format!("{}{}", "<a>".repeat(DEPTH), "</a>".repeat(DEPTH));
    let doc = Document::parse_str(&xml).unwrap();
    let s = DocStats::compute(&doc);
    assert_eq!(s.element_count, DEPTH);
    assert_eq!(s.max_depth, DEPTH as u16);
    assert_eq!(s.avg_depth, (1..=DEPTH).sum::<usize>() as f64 / DEPTH as f64);
    assert!(s.recursive);
    assert_eq!(s.max_recursion, DEPTH as u16);
    assert_eq!(s.recursive_tags.get("a"), Some(&(DEPTH as u16)));
}

#[test]
fn stats_distinct_tag_chain_is_not_recursive() {
    let doc = Document::parse_str("<a><b><c><d/></c></b></a>").unwrap();
    let s = DocStats::compute(&doc);
    assert_eq!(s.max_depth, 4);
    assert!(!s.recursive);
    assert_eq!(s.max_recursion, 1);
    assert_eq!(s.tag_count, 4);
}

// ------------------------------------------------------------------
// Entity decoding edge cases
// ------------------------------------------------------------------

#[test]
fn numeric_character_references() {
    assert_eq!(decode_entities("&#65;").unwrap(), "A");
    assert_eq!(decode_entities("&#x41;").unwrap(), "A");
    assert_eq!(decode_entities("&#X41;").unwrap(), "A");
    assert_eq!(decode_entities("&#xe9;").unwrap(), "\u{e9}");
    assert_eq!(decode_entities("&#128512;").unwrap(), "\u{1F600}");
    assert_eq!(decode_entities("a&#65;b&#66;c").unwrap(), "aAbBc");
    // A reference to a non-character code point fails with its offset.
    assert_eq!(decode_entities("x&#xD800;"), Err(1));
    assert_eq!(decode_entities("&#99999999;"), Err(0));
}

#[test]
fn predefined_entities_and_plain_text() {
    assert_eq!(decode_entities("&lt;&gt;&amp;&quot;&apos;").unwrap(), "<>&\"'");
    // No ampersand: borrowed pass-through.
    assert!(matches!(
        decode_entities("plain").unwrap(),
        std::borrow::Cow::Borrowed("plain")
    ));
}

#[test]
fn bare_and_unknown_ampersands_are_rejected() {
    // Bare `&` (no semicolon in the rest of the input).
    assert_eq!(decode_entities("a & b"), Err(2));
    // `&` followed by a semicolon later but no valid entity name.
    assert_eq!(decode_entities("a &nope; b"), Err(2));
    assert_eq!(decode_entities("&;"), Err(0));
    // Through the full parser both surface as InvalidEntity.
    for bad in ["<r>a & b</r>", "<r>&nosuch;</r>", "<r a=\"x & y\"/>"] {
        match Document::parse_str(bad) {
            Err(e) => assert!(
                matches!(e.kind, ParseErrorKind::InvalidEntity),
                "{bad}: unexpected error {e:?}"
            ),
            Ok(_) => panic!("{bad}: parsed but must be rejected"),
        }
    }
}

#[test]
fn entities_round_trip_through_parse_and_serialize() {
    let src = "<r k=\"a&amp;b&quot;c\">x &lt; y &gt; z &amp; w</r>";
    let doc = Document::parse_str(src).unwrap();
    assert_eq!(blossom_xml::writer::to_string(&doc), src);
}
