//! Independent document-order ranking.
//!
//! The engine's arena guarantees "node id = preorder position" and every
//! structural operator leans on that. The oracle must not: it derives
//! preorder ranks by explicitly walking the parent/child structure, so a
//! broken arena invariant shows up as a differential mismatch instead of
//! silently agreeing with the engine.

use blossom_xml::{Document, NodeId};

/// Preorder ranks for every node of one document, computed by traversal.
pub struct DocOrder {
    rank: Vec<u32>,
}

impl DocOrder {
    /// Walk the tree from the document node (children only, no
    /// `last_desc`/region shortcuts) and assign preorder ranks.
    pub fn new(doc: &Document) -> DocOrder {
        let mut rank = vec![u32::MAX; doc.len()];
        let mut next = 0u32;
        let mut stack = vec![NodeId::DOCUMENT];
        while let Some(n) = stack.pop() {
            rank[n.index()] = next;
            next += 1;
            let kids: Vec<NodeId> = doc.children(n).collect();
            for &c in kids.iter().rev() {
                stack.push(c);
            }
        }
        debug_assert_eq!(next as usize, doc.len(), "every node reachable from the root");
        DocOrder { rank }
    }

    /// The preorder rank of `n` (document node has rank 0).
    pub fn rank(&self, n: NodeId) -> u32 {
        self.rank[n.index()]
    }

    /// Is `a` strictly before `b` in document order?
    pub fn before(&self, a: NodeId, b: NodeId) -> bool {
        self.rank(a) < self.rank(b)
    }

    /// Sort a node set into document order and remove duplicates.
    pub fn sort_dedup(&self, v: &mut Vec<NodeId>) {
        v.sort_unstable_by_key(|&n| self.rank(n));
        v.dedup();
    }
}

/// Is `anc` a proper ancestor of `n`? Walks the parent chain — no region
/// containment test.
pub fn is_ancestor(doc: &Document, anc: NodeId, n: NodeId) -> bool {
    let mut cur = doc.parent(n);
    while let Some(p) = cur {
        if p == anc {
            return true;
        }
        cur = doc.parent(p);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_agrees_with_preorder() {
        let doc = Document::parse_str("<a><b><c/></b><d/><e><f/><g/></e></a>").unwrap();
        let order = DocOrder::new(&doc);
        // Collect ranks along an independent recursive traversal.
        fn walk(doc: &Document, n: NodeId, order: &DocOrder, expect: &mut u32) {
            assert_eq!(order.rank(n), *expect);
            *expect += 1;
            for c in doc.children(n) {
                walk(doc, c, order, expect);
            }
        }
        let mut expect = 0;
        walk(&doc, NodeId::DOCUMENT, &order, &mut expect);
        assert_eq!(expect as usize, doc.len());
    }

    #[test]
    fn ancestor_walks_parent_chain() {
        let doc = Document::parse_str("<a><b><c/></b><d/></a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.children(a).next().unwrap();
        let c = doc.children(b).next().unwrap();
        assert!(is_ancestor(&doc, a, c));
        assert!(is_ancestor(&doc, b, c));
        assert!(!is_ancestor(&doc, c, b));
        assert!(!is_ancestor(&doc, b, b), "ancestor is proper");
    }
}
