//! The spec-direct reference evaluator ("oracle") for differential
//! testing.
//!
//! Everything the engine computes cleverly — region-label containment,
//! structural joins, NoK pattern matching, skip-joins, plan caching,
//! parallel scans — this crate recomputes naively, straight from the
//! semantics written down in DESIGN.md:
//!
//! * **Document order** is derived by an explicit preorder walk over the
//!   parent/child structure ([`order::DocOrder`]), *not* from node-id
//!   arithmetic or region labels. If the arena's "preorder = id order"
//!   invariant ever broke, differential runs would catch it.
//! * **Axes** are implemented from their definitions (child, descendant,
//!   siblings, following/preceding via rank comparison and ancestor
//!   walks), never via `last_desc` shortcuts.
//! * **Node-set semantics**: after every location step the intermediate
//!   result is sorted by preorder rank and deduplicated.
//! * **Value comparison**, **deep-equal**, and **FLWOR** tuple semantics
//!   are re-derived in [`path`] and [`flwor`] without importing
//!   `blossom-core`.
//! * **Serialization** ([`output`]) rebuilds the writer's compact form
//!   (including entity escaping and `<x/>` self-closing) byte for byte
//!   on an independent fragment tree.
//!
//! The only shared code is the data substrate every evaluator must agree
//! on: the parsed [`Document`] tree, the XPath/FLWOR ASTs and parsers.
//! `blossom-core` is **not** a dependency — see `Cargo.toml`.

#![deny(missing_docs)]

pub mod flwor;
pub mod mutate;
pub mod order;
pub mod output;
pub mod path;

use blossom_flwor::ast::Expr;
use blossom_xml::Document;
use order::DocOrder;
use output::Frag;

/// Errors the oracle can report. Differential drivers treat "engine and
/// oracle both failed" as agreement, so exact kinds only matter for
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The query did not parse.
    Syntax(String),
    /// The query is outside the subset the oracle models.
    Unsupported(String),
    /// A variable was used before being bound.
    UnboundVariable(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Syntax(e) => write!(f, "syntax error: {e}"),
            OracleError::Unsupported(w) => write!(f, "unsupported: {w}"),
            OracleError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// The reference evaluator over one document.
pub struct Oracle<'d> {
    doc: &'d Document,
    order: DocOrder,
}

impl<'d> Oracle<'d> {
    /// Build an oracle for `doc`, computing its independent preorder
    /// ranking up front.
    pub fn new(doc: &'d Document) -> Oracle<'d> {
        Oracle { doc, order: DocOrder::new(doc) }
    }

    /// The underlying document.
    pub fn doc(&self) -> &'d Document {
        self.doc
    }

    /// The independent document-order ranking.
    pub fn order(&self) -> &DocOrder {
        &self.order
    }

    /// Evaluate a bare path query; result node-set in document order.
    pub fn eval_path_str(&self, query: &str) -> Result<Vec<blossom_xml::NodeId>, OracleError> {
        let parsed =
            blossom_xpath::parse_path(query).map_err(|e| OracleError::Syntax(e.to_string()))?;
        Ok(path::PathOracle::new(self.doc, &self.order).eval_path(&parsed, &[]))
    }

    /// Evaluate any supported query (path, FLWOR, constructor) and
    /// serialize the result exactly like `Engine::eval_query_str` +
    /// `writer::to_string` would: FLWOR and bare-path results are
    /// wrapped in a `<result>` element, a top-level constructor is not.
    pub fn eval_query_str(&self, query: &str) -> Result<String, OracleError> {
        let expr =
            blossom_flwor::parse_query(query).map_err(|e| OracleError::Syntax(e.to_string()))?;
        let ev = flwor::FlworOracle::new(self.doc, &self.order);
        let mut frags: Vec<Frag> = Vec::new();
        match &expr {
            Expr::Flwor(f) => {
                let mut inner = Vec::new();
                ev.eval_flwor_into(&mut inner, f, &[])?;
                frags.push(Frag::elem("result", Vec::new(), inner));
            }
            Expr::Path(p) => {
                let nodes = path::PathOracle::new(self.doc, &self.order).eval_path(p, &[]);
                let mut inner = Vec::new();
                for n in nodes {
                    output::copy_subtree(self.doc, n, &mut inner);
                }
                frags.push(Frag::elem("result", Vec::new(), inner));
            }
            Expr::Constructor(_) => {
                ev.construct(&mut frags, &expr, &Vec::new())?;
            }
            other => {
                return Err(OracleError::Unsupported(format!("top-level expression {other:?}")))
            }
        }
        Ok(output::serialize(&frags))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = r#"<bib>
        <book year="1994"><title>TCP/IP</title><author>Stevens</author><price>65</price></book>
        <book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>
        <book year="1999"><title>Economics</title><editor>Gerbarg</editor><price>129</price></book>
    </bib>"#;

    #[test]
    fn path_queries_match_hand_counts() {
        let doc = Document::parse_str(BIB).unwrap();
        let o = Oracle::new(&doc);
        assert_eq!(o.eval_path_str("/bib/book").unwrap().len(), 3);
        assert_eq!(o.eval_path_str("//author").unwrap().len(), 3);
        assert_eq!(o.eval_path_str("//book[author]").unwrap().len(), 2);
        assert_eq!(o.eval_path_str("//book[price < 100]").unwrap().len(), 2);
        assert_eq!(o.eval_path_str("//book[@year = \"2000\"]").unwrap().len(), 1);
        assert_eq!(o.eval_path_str("//book[2]/title").unwrap().len(), 1);
        assert_eq!(o.eval_path_str("//book[not(author)]").unwrap().len(), 1);
    }

    #[test]
    fn serialized_flwor_output() {
        let doc = Document::parse_str(BIB).unwrap();
        let o = Oracle::new(&doc);
        let out = o
            .eval_query_str("for $b in //book where $b/price < 100 order by $b/title return <t>{$b/title}</t>")
            .unwrap();
        assert_eq!(
            out,
            "<result><t><title>Data on the Web</title></t><t><title>TCP/IP</title></t></result>"
        );
    }

    #[test]
    fn bad_query_is_syntax_error() {
        let doc = Document::parse_str("<r/>").unwrap();
        let o = Oracle::new(&doc);
        assert!(matches!(o.eval_path_str("//["), Err(OracleError::Syntax(_))));
    }
}
