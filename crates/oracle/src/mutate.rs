//! The rebuild-from-scratch reference for document mutations.
//!
//! The engine applies mutations by splicing arena columns and patching
//! posting lists in place (`blossom_xml::mutate`). This module
//! re-derives the *semantics* of the same mutation script with none of
//! that machinery: the document is copied into the oracle's [`Frag`]
//! tree, each mutation edits the tree by walking Dewey components over
//! ordinary child vectors, and the result is serialized and reparsed
//! into a brand-new [`Document`]. Region labels, sibling links, text
//! tables, symbol interning — everything is rebuilt from scratch by the
//! parser, so a splice bug cannot cancel itself out.
//!
//! Only the mutation *syntax* ([`Mutation`], shared with the engine so
//! fixtures mean the same thing to both sides) is reused; validation
//! and application logic are independent.

use crate::output::Frag;
use blossom_xml::mutate::Mutation;
use blossom_xml::{Document, NodeId, ParseError};

/// Apply `muts` the reference way: Frag-tree edits, then serialize and
/// reparse. Errors are strings so differential drivers can compare
/// "both sides rejected" without matching kinds.
pub fn rebuild_with(doc: &Document, muts: &[Mutation]) -> Result<Document, String> {
    let mut roots = Vec::new();
    crate::output::copy_subtree(doc, NodeId::DOCUMENT, &mut roots);
    if roots.len() != 1 {
        return Err("document does not have a single root element".to_string());
    }
    let mut root = roots.pop().unwrap();
    for (i, m) in muts.iter().enumerate() {
        apply_frag(&mut root, m).map_err(|e| format!("mutation {}: {e}", i + 1))?;
    }
    let xml = crate::output::serialize(std::slice::from_ref(&root));
    Document::parse_str(&xml).map_err(|e: ParseError| format!("reparse after mutations: {e}"))
}

/// Walk `d`'s components below the root and return the parent element's
/// child vector plus the 0-based index of the addressed child.
fn locate<'a>(root: &'a mut Frag, d: &blossom_xml::Dewey) -> Result<(&'a mut Vec<Frag>, usize), String> {
    let comps = d.components();
    if comps[0] != 1 {
        return Err(format!("Dewey key {d} must start at 1 (the root element)"));
    }
    if comps.len() < 2 {
        return Err(format!("Dewey key {d} addresses the root element itself"));
    }
    // Descend to the parent element of the addressed node, then index
    // its child vector with the final component.
    let mut cur = root;
    for &k in &comps[1..comps.len() - 1] {
        if k == 0 {
            return Err(format!("Dewey key {d}: components are 1-based, got 0"));
        }
        let children = match cur {
            Frag::Elem { children, .. } => children,
            Frag::Text(_) => {
                return Err(format!("Dewey key {d} descends into a text node"))
            }
        };
        let idx = k as usize - 1;
        if idx >= children.len() {
            return Err(format!("Dewey key {d}: child {k} out of range"));
        }
        cur = &mut children[idx];
    }
    let last = *comps.last().unwrap();
    if last == 0 {
        return Err(format!("Dewey key {d}: components are 1-based, got 0"));
    }
    let children = match cur {
        Frag::Elem { children, .. } => children,
        Frag::Text(_) => return Err(format!("Dewey key {d} descends into a text node")),
    };
    let idx = last as usize - 1;
    if idx >= children.len() {
        return Err(format!("Dewey key {d}: child {last} out of range"));
    }
    Ok((children, idx))
}

/// Parse a mutation fragment the reference way: reuse the document
/// parser (the substrate both sides share), demand a single element.
fn parse_fragment(fragment: &str) -> Result<Frag, String> {
    let doc = Document::parse_str(fragment).map_err(|e| format!("fragment {fragment:?}: {e}"))?;
    let mut frags = Vec::new();
    crate::output::copy_subtree(&doc, NodeId::DOCUMENT, &mut frags);
    match (frags.pop(), frags.len()) {
        (Some(f @ Frag::Elem { .. }), 0) => Ok(f),
        _ => Err(format!("fragment {fragment:?} must be a single element")),
    }
}

/// Merge the text nodes around position `at` in `children` if removing
/// a node left two text siblings adjacent — the reference statement of
/// the engine's no-adjacent-text invariant.
fn coalesce_at(children: &mut Vec<Frag>, at: usize) {
    if at == 0 || at >= children.len() {
        return;
    }
    if let (Frag::Text(_), Frag::Text(b)) = (&children[at - 1], &children[at]) {
        let b = b.clone();
        if let Frag::Text(a) = &mut children[at - 1] {
            a.push_str(&b);
        }
        children.remove(at);
    }
}

fn apply_frag(root: &mut Frag, m: &Mutation) -> Result<(), String> {
    match m {
        Mutation::Insert { parent, pos, fragment } => {
            let frag = parse_fragment(fragment)?;
            let children = if parent.components() == [1] {
                match root {
                    Frag::Elem { children, .. } => children,
                    Frag::Text(_) => unreachable!("root is an element"),
                }
            } else {
                let (siblings, idx) = locate(root, parent)?;
                match &mut siblings[idx] {
                    Frag::Elem { children, .. } => children,
                    Frag::Text(_) => return Err(format!("insert parent {parent} is a text node")),
                }
            };
            if *pos as usize > children.len() {
                return Err(format!(
                    "insert position {pos} out of range: {parent} has {} children",
                    children.len()
                ));
            }
            children.insert(*pos as usize, frag);
            Ok(())
        }
        Mutation::Delete { target } => {
            if target.components() == [1] {
                return Err("cannot delete the root element".to_string());
            }
            let (children, idx) = locate(root, target)?;
            children.remove(idx);
            coalesce_at(children, idx);
            Ok(())
        }
        Mutation::Replace { target, fragment } => {
            let frag = parse_fragment(fragment)?;
            if target.components() == [1] {
                *root = frag;
                return Ok(());
            }
            let (children, idx) = locate(root, target)?;
            children[idx] = frag;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::mutate::{self, parse_mutations};
    use blossom_xml::writer;

    /// Engine splice and oracle rebuild must serialize identically.
    fn agree(src: &str, script: &str) {
        let doc = Document::parse_str(src).unwrap();
        let muts = parse_mutations(script).unwrap();
        let engine = mutate::apply_all(&doc, &muts);
        let reference = rebuild_with(&doc, &muts);
        match (engine, reference) {
            (Ok(e), Ok(r)) => assert_eq!(
                writer::to_string(&e),
                writer::to_string(&r),
                "splice vs rebuild on {src:?} with {script:?}"
            ),
            (Err(_), Err(_)) => {}
            (e, r) => panic!("one side rejected {script:?} on {src:?}: engine={e:?} ref={r:?}"),
        }
    }

    #[test]
    fn reference_matches_splice() {
        agree("<a><b/><c/></a>", "insert 1 1 <x>t</x>");
        agree("<a><b><c/></b><d/></a>", "delete 1.1");
        agree("<a>x<b/>y</a>", "delete 1.2");
        agree("<a><b/></a>", "replace 1 <r><s/></r>");
        agree(
            "<bib><book><title>a</title></book></bib>",
            "insert 1 1 <book><title>b</title></book>\nreplace 1.1.1 <title>z</title>\ndelete 1.2",
        );
    }

    #[test]
    fn both_sides_reject_invalid_scripts() {
        agree("<a><b/></a>", "delete 1");
        agree("<a><b/></a>", "delete 1.5");
        agree("<a>t</a>", "insert 1.1 0 <x/>");
        agree("<a><b/></a>", "insert 1 9 <x/>");
        agree("<a><b/></a>", "replace 1.1 <x>");
    }

    #[test]
    fn text_merge_matches() {
        let doc = Document::parse_str("<a>x<b/>y</a>").unwrap();
        let muts = parse_mutations("delete 1.2").unwrap();
        let r = rebuild_with(&doc, &muts).unwrap();
        let root = r.root_element().unwrap();
        assert_eq!(r.children(root).count(), 1, "texts merged into one node");
        assert_eq!(r.string_value(root), "xy");
    }
}
