//! Independent result construction and serialization.
//!
//! The engine materializes results through `TreeBuilder` and serializes
//! with `blossom_xml::writer`. The oracle rebuilds both behaviours on
//! its own fragment tree so a writer bug cannot cancel itself out:
//!
//! * whitespace-only text is dropped at construction time (the
//!   builder's default, used for every engine result);
//! * text escapes `& < >`, attribute values escape `& < "`;
//! * childless elements serialize self-closing (`<x/>`).

use blossom_xml::{Document, NodeId};

/// One node of the oracle's result tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frag {
    /// An element with static attributes and ordered children.
    Elem {
        /// Tag name.
        name: String,
        /// Attributes in declaration order.
        attrs: Vec<(String, String)>,
        /// Ordered content.
        children: Vec<Frag>,
    },
    /// A text node.
    Text(String),
}

impl Frag {
    /// Convenience constructor for an element fragment.
    pub fn elem(name: &str, attrs: Vec<(String, String)>, children: Vec<Frag>) -> Frag {
        Frag::Elem { name: name.to_string(), attrs, children }
    }
}

/// Append a text fragment, dropping whitespace-only content exactly like
/// the engine's result builder does.
pub fn push_text(out: &mut Vec<Frag>, content: &str) {
    if !content.trim().is_empty() {
        out.push(Frag::Text(content.to_string()));
    }
}

/// Deep-copy a document subtree into fragments (attribute order and text
/// content preserved; the document node copies its children).
pub fn copy_subtree(doc: &Document, n: NodeId, out: &mut Vec<Frag>) {
    if let Some(t) = doc.text(n) {
        push_text(out, t);
        return;
    }
    match doc.tag_name(n) {
        Some(tag) => {
            let attrs = doc
                .attributes(n)
                .iter()
                .map(|(sym, v)| (doc.symbols().name(*sym).to_string(), v.to_string()))
                .collect();
            let mut children = Vec::new();
            for c in doc.children(n) {
                copy_subtree(doc, c, &mut children);
            }
            out.push(Frag::Elem { name: tag.to_string(), attrs, children });
        }
        None => {
            // The document node: copy its children in order.
            for c in doc.children(n) {
                copy_subtree(doc, c, out);
            }
        }
    }
}

/// Serialize fragments in the writer's compact form.
pub fn serialize(frags: &[Frag]) -> String {
    let mut out = String::new();
    for f in frags {
        write_frag(f, &mut out);
    }
    out
}

fn write_frag(f: &Frag, out: &mut String) {
    match f {
        Frag::Text(t) => escape_text(t, out),
        Frag::Elem { name, attrs, children } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                escape_attr(v, out);
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    write_frag(c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn escape_text(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::writer;

    #[test]
    fn matches_writer_bytes_on_round_trip() {
        let src = "<r a=\"x &amp; &quot;y&quot;\"><e/><t>a &lt; b &gt; c &amp; d</t>mixed<u><v/></u></r>";
        let doc = Document::parse_str(src).unwrap();
        let mut frags = Vec::new();
        copy_subtree(&doc, NodeId::DOCUMENT, &mut frags);
        assert_eq!(serialize(&frags), writer::to_string(&doc));
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let mut out = Vec::new();
        push_text(&mut out, "  \n\t ");
        push_text(&mut out, " x ");
        assert_eq!(out.len(), 1);
        assert_eq!(serialize(&out), " x ");
    }

    #[test]
    fn childless_element_self_closes() {
        let f = Frag::elem("result", Vec::new(), Vec::new());
        assert_eq!(serialize(&[f]), "<result/>");
    }
}
