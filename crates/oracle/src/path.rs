//! Spec-direct XPath evaluation.
//!
//! One location step maps each context node to the axis candidates (in
//! document order), filters them by the node test, then applies each
//! predicate in sequence with 1-based positions taken from the list the
//! previous predicate produced. The union over all context nodes is
//! sorted by independent preorder rank and deduplicated.
//!
//! Subset conventions this repo fixes (documented in DESIGN.md and
//! mirrored here from the spec text, not from `crates/core` source):
//!
//! * positions count forward in document order on every axis (including
//!   the reverse axes);
//! * attributes are not nodes in the store — an attribute test matches
//!   nothing on a spine, and inside a predicate only the single-step
//!   `@name` form tests/compares the attribute string;
//! * predicate paths are always evaluated relative to the candidate
//!   node, whatever their notated start;
//! * value comparison trims both sides and compares numerically exactly
//!   when both sides parse as numbers; a numeric literal never equals an
//!   unparseable value.

use crate::order::{is_ancestor, DocOrder};
use blossom_xml::{Axis, Document, NodeId, NodeKind};
use blossom_xpath::ast::{CmpOp, Literal, NodeTest, PathExpr, PathStart, Predicate, Step};
use std::cmp::Ordering;

/// Path evaluator borrowing a document and its independent ordering.
pub struct PathOracle<'d> {
    doc: &'d Document,
    order: &'d DocOrder,
}

impl<'d> PathOracle<'d> {
    /// Construct over an existing [`DocOrder`].
    pub fn new(doc: &'d Document, order: &'d DocOrder) -> PathOracle<'d> {
        PathOracle { doc, order }
    }

    /// Evaluate `path`. `context` seeds context-relative paths; absolute
    /// paths start at the document node. Variable-rooted paths are the
    /// FLWOR evaluator's job.
    pub fn eval_path(&self, path: &PathExpr, context: &[NodeId]) -> Vec<NodeId> {
        let start: Vec<NodeId> = match &path.start {
            PathStart::Root { .. } => vec![NodeId::DOCUMENT],
            PathStart::Context => context.to_vec(),
            PathStart::Variable(v) => {
                panic!("oracle eval_path cannot resolve ${v}; use eval_steps from the binding")
            }
        };
        self.eval_steps(&path.steps, &start)
    }

    /// Evaluate a step list from explicit start nodes.
    pub fn eval_steps(&self, steps: &[Step], start: &[NodeId]) -> Vec<NodeId> {
        let mut current: Vec<NodeId> = start.to_vec();
        for step in steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &ctx in &current {
                let candidates: Vec<NodeId> = self
                    .axis_nodes(step.axis, ctx)
                    .into_iter()
                    .filter(|&n| self.test_matches(&step.test, n))
                    .collect();
                let mut filtered = candidates;
                for pred in &step.predicates {
                    filtered = filtered
                        .iter()
                        .enumerate()
                        .filter(|&(i, &n)| self.eval_predicate(pred, n, i + 1))
                        .map(|(_, &n)| n)
                        .collect();
                }
                next.extend(filtered);
            }
            self.order.sort_dedup(&mut next);
            current = next;
        }
        current
    }

    /// Axis candidates in document order, from first principles.
    fn axis_nodes(&self, axis: Axis, ctx: NodeId) -> Vec<NodeId> {
        let doc = self.doc;
        match axis {
            Axis::Child => doc.children(ctx).collect(),
            Axis::Descendant => {
                let mut out = Vec::new();
                let mut stack: Vec<NodeId> = doc.children(ctx).collect();
                stack.reverse();
                while let Some(n) = stack.pop() {
                    out.push(n);
                    let kids: Vec<NodeId> = doc.children(n).collect();
                    for &c in kids.iter().rev() {
                        stack.push(c);
                    }
                }
                out
            }
            Axis::FollowingSibling => {
                let mut out = Vec::new();
                let mut sib = doc.next_sibling(ctx);
                while let Some(s) = sib {
                    out.push(s);
                    sib = doc.next_sibling(s);
                }
                out
            }
            Axis::PrecedingSibling => match doc.parent(ctx) {
                Some(p) => doc.children(p).take_while(|&c| c != ctx).collect(),
                None => Vec::new(),
            },
            Axis::Following => {
                // Nodes after ctx in document order, minus ctx's own
                // subtree. Ancestors rank before ctx, so the rank test
                // already excludes them; enumeration order is fixed up
                // by the caller's sort.
                let ctx_rank = self.order.rank(ctx);
                let mut out: Vec<NodeId> = (1..self.doc.len() as u32)
                    .map(NodeId)
                    .filter(|&n| {
                        self.order.rank(n) > ctx_rank
                            && n != ctx
                            && !is_ancestor(doc, ctx, n)
                    })
                    .collect();
                self.order.sort_dedup(&mut out);
                out
            }
            Axis::Preceding => {
                // Nodes before ctx in document order that are not its
                // ancestors (and not the document node).
                let ctx_rank = self.order.rank(ctx);
                let mut out: Vec<NodeId> = (1..self.doc.len() as u32)
                    .map(NodeId)
                    .filter(|&n| {
                        self.order.rank(n) < ctx_rank && !is_ancestor(doc, n, ctx)
                    })
                    .collect();
                self.order.sort_dedup(&mut out);
                out
            }
            Axis::SelfAxis => vec![ctx],
        }
    }

    fn test_matches(&self, test: &NodeTest, n: NodeId) -> bool {
        match test {
            NodeTest::Name(name) => matches!(self.doc.kind(n), NodeKind::Element(sym)
                if self.doc.symbols().name(sym) == name.as_ref()),
            NodeTest::Wildcard => matches!(self.doc.kind(n), NodeKind::Element(_)),
            NodeTest::Text => matches!(self.doc.kind(n), NodeKind::Text),
            NodeTest::Attribute(_) => false,
        }
    }

    fn eval_predicate(&self, pred: &Predicate, ctx: NodeId, position: usize) -> bool {
        match pred {
            Predicate::Position(p) => position == *p as usize,
            Predicate::Exists(path) => !self.eval_pred_path(path, ctx).is_empty(),
            Predicate::Value { path, op, literal } => match path {
                None => self.node_vs_literal(ctx, *op, literal),
                Some(p) => {
                    if let Some(value) = self.single_attribute(p, ctx) {
                        return match value {
                            Some(v) => str_vs_literal(&v, *op, literal),
                            None => false,
                        };
                    }
                    self.eval_pred_path(p, ctx)
                        .iter()
                        .any(|&n| self.node_vs_literal(n, *op, literal))
                }
            },
            Predicate::And(a, b) => {
                self.eval_predicate(a, ctx, position) && self.eval_predicate(b, ctx, position)
            }
            Predicate::Or(a, b) => {
                self.eval_predicate(a, ctx, position) || self.eval_predicate(b, ctx, position)
            }
            Predicate::Not(p) => !self.eval_predicate(p, ctx, position),
        }
    }

    /// A predicate path evaluated relative to the candidate node. A bare
    /// `@attr` step is an attribute-existence test.
    fn eval_pred_path(&self, path: &PathExpr, ctx: NodeId) -> Vec<NodeId> {
        if path.steps.len() == 1 {
            if let NodeTest::Attribute(name) = &path.steps[0].test {
                return if self.doc.attribute(ctx, name).is_some() {
                    vec![ctx]
                } else {
                    Vec::new()
                };
            }
        }
        self.eval_steps(&path.steps, &[ctx])
    }

    fn single_attribute(&self, path: &PathExpr, ctx: NodeId) -> Option<Option<String>> {
        if path.steps.len() == 1 {
            if let NodeTest::Attribute(name) = &path.steps[0].test {
                return Some(self.doc.attribute(ctx, name).map(str::to_string));
            }
        }
        None
    }

    /// The string value of `n`: subtree text concatenated in document
    /// order, collected by recursive walk.
    pub fn string_value(&self, n: NodeId) -> String {
        let mut out = String::new();
        self.string_value_into(n, &mut out);
        out
    }

    fn string_value_into(&self, n: NodeId, out: &mut String) {
        if let Some(t) = self.doc.text(n) {
            out.push_str(t);
            return;
        }
        for c in self.doc.children(n) {
            self.string_value_into(c, out);
        }
    }

    /// Does `n`'s string value satisfy `op literal`?
    pub fn node_vs_literal(&self, n: NodeId, op: CmpOp, literal: &Literal) -> bool {
        str_vs_literal(&self.string_value(n), op, literal)
    }
}

/// Compare two atomic string values: trim both; numeric exactly when
/// both parse as numbers, lexicographic otherwise.
pub fn compare_atomic(left: &str, right: &str) -> Ordering {
    let (l, r) = (left.trim(), right.trim());
    match (l.parse::<f64>(), r.parse::<f64>()) {
        (Ok(a), Ok(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
        _ => l.cmp(r),
    }
}

/// Does a raw string satisfy `op literal`? Numeric literals require the
/// value to parse; otherwise the comparison is false.
pub fn str_vs_literal(value: &str, op: CmpOp, literal: &Literal) -> bool {
    let value = value.trim();
    match literal {
        Literal::Str(s) => op.eval(compare_atomic(value, s)),
        Literal::Num(n) => match value.parse::<f64>() {
            Ok(v) => op.eval(v.partial_cmp(n).unwrap_or(Ordering::Equal)),
            Err(_) => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::DocOrder;

    fn eval(doc: &Document, q: &str) -> Vec<NodeId> {
        let order = DocOrder::new(doc);
        let p = blossom_xpath::parse_path(q).unwrap();
        PathOracle::new(doc, &order).eval_path(&p, &[])
    }

    #[test]
    fn sibling_and_global_axes() {
        let doc = Document::parse_str("<r><a/><b/><a><c/></a><d/></r>").unwrap();
        assert_eq!(eval(&doc, "//b/following-sibling::a").len(), 1);
        assert_eq!(eval(&doc, "//b/preceding-sibling::a").len(), 1);
        assert_eq!(eval(&doc, "//c/following::d").len(), 1);
        assert_eq!(eval(&doc, "//c/preceding::b").len(), 1);
        // Ancestors are on neither global axis.
        assert_eq!(eval(&doc, "//c/preceding::a").len(), 1);
        assert_eq!(eval(&doc, "//c/preceding::r").len(), 0);
    }

    #[test]
    fn positional_is_per_context() {
        let doc = Document::parse_str("<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>").unwrap();
        assert_eq!(eval(&doc, "//a/b[1]").len(), 2);
        assert_eq!(eval(&doc, "//a/b[2]").len(), 1);
    }

    #[test]
    fn atomic_comparison_rules() {
        assert_eq!(compare_atomic("10", "9"), Ordering::Greater);
        assert_eq!(compare_atomic("ten", "nine"), Ordering::Greater);
        assert_eq!(compare_atomic(" 10 ", "10"), Ordering::Equal);
        assert!(!str_vs_literal("ten", CmpOp::Eq, &Literal::Num(10.0)));
    }
}
