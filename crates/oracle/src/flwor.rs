//! Spec-direct FLWOR evaluation.
//!
//! Tuple semantics re-derived from the paper's Section 3.1 grammar (plus
//! this repo's documented extensions — constructors in `return`,
//! correlated nested FLWORs):
//!
//! * bindings nest left to right; `for` iterates its node sequence one
//!   node per tuple, `let` binds the whole sequence once;
//! * variable-rooted paths continue from the bound nodes; later bindings
//!   shadow earlier ones of the same name;
//! * `where` filters tuples with existential value comparisons, node
//!   order/identity over first nodes, `deep-equal`, `count`,
//!   `exists`/`empty`;
//! * `order by` is a stable multi-key sort on the string value of each
//!   key path's first node (empty string when the path is empty), with
//!   per-key direction;
//! * `return` constructs one fragment sequence per surviving tuple.

use crate::order::DocOrder;
use crate::output::{self, Frag};
use crate::path::{compare_atomic, PathOracle};
use crate::OracleError;
use blossom_flwor::ast::{BoolExpr, Comparison, Expr, Flwor, ValueOperand};
use blossom_flwor::{BindingKind, SortOrder};
use blossom_xml::{Document, NodeId, NodeKind};
use blossom_xpath::ast::{PathExpr, PathStart};

/// One tuple environment: variable bindings in binding order.
type Env = Vec<(String, Vec<NodeId>)>;

/// FLWOR evaluator borrowing a document and its independent ordering.
pub struct FlworOracle<'d> {
    doc: &'d Document,
    order: &'d DocOrder,
    paths: PathOracle<'d>,
}

impl<'d> FlworOracle<'d> {
    /// Construct over an existing [`DocOrder`].
    pub fn new(doc: &'d Document, order: &'d DocOrder) -> FlworOracle<'d> {
        FlworOracle { doc, order, paths: PathOracle::new(doc, order) }
    }

    /// Evaluate `flwor` under `base` bindings (non-empty for correlated
    /// nested FLWORs) and append each tuple's constructed return.
    pub fn eval_flwor_into(
        &self,
        out: &mut Vec<Frag>,
        flwor: &Flwor,
        base: &[(String, Vec<NodeId>)],
    ) -> Result<(), OracleError> {
        for env in self.envs(flwor, base)? {
            self.construct_env(out, &flwor.ret, &env)?;
        }
        Ok(())
    }

    /// The ordered tuple environments of a FLWOR.
    fn envs(&self, flwor: &Flwor, base: &[(String, Vec<NodeId>)]) -> Result<Vec<Env>, OracleError> {
        let mut env: Env = base.to_vec();
        let mut envs: Vec<Env> = Vec::new();
        self.bind(&mut envs, flwor, 0, &mut env)?;
        if !flwor.order_by.is_empty() {
            let mut keyed: Vec<(Vec<String>, Env)> = Vec::with_capacity(envs.len());
            for e in envs {
                let mut keys = Vec::with_capacity(flwor.order_by.len());
                for (ob, _) in &flwor.order_by {
                    keys.push(
                        self.resolve_path(ob, &e)?
                            .first()
                            .map(|&n| self.paths.string_value(n))
                            .unwrap_or_default(),
                    );
                }
                keyed.push((keys, e));
            }
            // Stable sort: equal-key tuples keep binding order.
            keyed.sort_by(|a, b| {
                for (i, (_, direction)) in flwor.order_by.iter().enumerate() {
                    let ord = a.0[i].cmp(&b.0[i]);
                    let ord =
                        if *direction == SortOrder::Descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            return Ok(keyed.into_iter().map(|(_, e)| e).collect());
        }
        Ok(envs)
    }

    fn bind(
        &self,
        envs: &mut Vec<Env>,
        flwor: &Flwor,
        idx: usize,
        env: &mut Env,
    ) -> Result<(), OracleError> {
        if idx == flwor.bindings.len() {
            if let Some(w) = &flwor.where_clause {
                if !self.eval_where(w, env)? {
                    return Ok(());
                }
            }
            envs.push(env.clone());
            return Ok(());
        }
        let binding = &flwor.bindings[idx];
        let nodes = self.resolve_path(&binding.path, env)?;
        match binding.kind {
            BindingKind::For => {
                for n in nodes {
                    env.push((binding.var.clone(), vec![n]));
                    self.bind(envs, flwor, idx + 1, env)?;
                    env.pop();
                }
            }
            BindingKind::Let => {
                env.push((binding.var.clone(), nodes));
                self.bind(envs, flwor, idx + 1, env)?;
                env.pop();
            }
        }
        Ok(())
    }

    /// Resolve a path under an environment: variable starts continue
    /// from the bound nodes (innermost binding wins), everything else is
    /// absolute.
    fn resolve_path(&self, path: &PathExpr, env: &Env) -> Result<Vec<NodeId>, OracleError> {
        match &path.start {
            PathStart::Variable(v) => {
                let bound = env
                    .iter()
                    .rev()
                    .find(|(name, _)| name == v)
                    .map(|(_, nodes)| nodes.clone())
                    .ok_or_else(|| OracleError::UnboundVariable(v.clone()))?;
                if path.steps.is_empty() {
                    Ok(bound)
                } else {
                    Ok(self.paths.eval_steps(&path.steps, &bound))
                }
            }
            _ => Ok(self.paths.eval_path(path, &[])),
        }
    }

    fn eval_where(&self, expr: &BoolExpr, env: &Env) -> Result<bool, OracleError> {
        match expr {
            BoolExpr::And(a, b) => Ok(self.eval_where(a, env)? && self.eval_where(b, env)?),
            BoolExpr::Or(a, b) => Ok(self.eval_where(a, env)? || self.eval_where(b, env)?),
            BoolExpr::Not(e) => Ok(!self.eval_where(e, env)?),
            BoolExpr::Comparison(c) => self.eval_comparison(c, env),
        }
    }

    fn eval_comparison(&self, c: &Comparison, env: &Env) -> Result<bool, OracleError> {
        match c {
            Comparison::NodeOrder { left, before, right } => {
                let l = self.resolve_path(left, env)?;
                let r = self.resolve_path(right, env)?;
                Ok(match (l.first(), r.first()) {
                    (Some(&ln), Some(&rn)) => {
                        if *before {
                            self.order.before(ln, rn)
                        } else {
                            self.order.before(rn, ln)
                        }
                    }
                    _ => false,
                })
            }
            Comparison::Value { left, op, right } => {
                let l = self.resolve_path(left, env)?;
                match right {
                    ValueOperand::Literal(lit) => Ok(l
                        .iter()
                        .any(|&n| self.paths.node_vs_literal(n, *op, lit))),
                    ValueOperand::Path(rp) => {
                        let r = self.resolve_path(rp, env)?;
                        // Existential general comparison.
                        Ok(l.iter().any(|&ln| {
                            let lv = self.paths.string_value(ln);
                            r.iter().any(|&rn| {
                                op.eval(compare_atomic(&lv, &self.paths.string_value(rn)))
                            })
                        }))
                    }
                }
            }
            Comparison::DeepEqual { left, right } => {
                let l = self.resolve_path(left, env)?;
                let r = self.resolve_path(right, env)?;
                Ok(l.len() == r.len()
                    && l.iter().zip(&r).all(|(&a, &b)| self.deep_equal(a, b)))
            }
            Comparison::NodeIdentity { left, same, right } => {
                let l = self.resolve_path(left, env)?;
                let r = self.resolve_path(right, env)?;
                Ok(match (l.first(), r.first()) {
                    (Some(&ln), Some(&rn)) => (ln == rn) == *same,
                    _ => false,
                })
            }
            Comparison::Count { path, op, value } => {
                let n = self.resolve_path(path, env)?.len() as f64;
                Ok(op.eval(n.partial_cmp(value).unwrap_or(std::cmp::Ordering::Equal)))
            }
            Comparison::Exists { path, exists } => {
                Ok((!self.resolve_path(path, env)?.is_empty()) == *exists)
            }
        }
    }

    /// `fn:deep-equal` on two nodes, re-derived: same kind; text nodes
    /// compare content; elements compare tag, full attribute list, and
    /// children pairwise.
    fn deep_equal(&self, a: NodeId, b: NodeId) -> bool {
        match (self.doc.kind(a), self.doc.kind(b)) {
            (NodeKind::Text, NodeKind::Text) => self.doc.text(a) == self.doc.text(b),
            (NodeKind::Element(sa), NodeKind::Element(sb)) => {
                if sa != sb || self.doc.attributes(a) != self.doc.attributes(b) {
                    return false;
                }
                let ca: Vec<NodeId> = self.doc.children(a).collect();
                let cb: Vec<NodeId> = self.doc.children(b).collect();
                ca.len() == cb.len()
                    && ca.iter().zip(&cb).all(|(&x, &y)| self.deep_equal(x, y))
            }
            (NodeKind::Document, NodeKind::Document) => a == b,
            _ => false,
        }
    }

    /// Construct a return expression for one tuple.
    pub fn construct_env(
        &self,
        out: &mut Vec<Frag>,
        expr: &Expr,
        env: &Env,
    ) -> Result<(), OracleError> {
        match expr {
            Expr::Text(t) => {
                output::push_text(out, t);
                Ok(())
            }
            Expr::Sequence(items) => {
                for i in items {
                    self.construct_env(out, i, env)?;
                }
                Ok(())
            }
            Expr::Constructor(c) => {
                let mut children = Vec::new();
                for child in &c.children {
                    self.construct_env(&mut children, child, env)?;
                }
                out.push(Frag::Elem {
                    name: c.name.clone(),
                    attrs: c.attrs.clone(),
                    children,
                });
                Ok(())
            }
            Expr::Path(p) => {
                for n in self.resolve_path(p, env)? {
                    output::copy_subtree(self.doc, n, out);
                }
                Ok(())
            }
            // Correlated nested FLWOR: sees the outer environment.
            Expr::Flwor(inner) => self.eval_flwor_into(out, inner, env),
        }
    }

    /// Construct a top-level expression (no tuple environment yet).
    pub fn construct(
        &self,
        out: &mut Vec<Frag>,
        expr: &Expr,
        env: &Env,
    ) -> Result<(), OracleError> {
        self.construct_env(out, expr, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;

    #[test]
    fn let_binds_sequence_and_for_iterates() {
        let doc = Document::parse_str(
            "<bib><book><a>x</a><a>y</a></book><book><a>z</a></book></bib>",
        )
        .unwrap();
        let o = Oracle::new(&doc);
        let out = o
            .eval_query_str("for $b in //book let $a := $b/a return <n>{$a}</n>")
            .unwrap();
        assert_eq!(out, "<result><n><a>x</a><a>y</a></n><n><a>z</a></n></result>");
    }

    #[test]
    fn where_and_order_by() {
        let doc = Document::parse_str(
            "<r><p><v>2</v></p><p><v>1</v></p><p><v>3</v></p></r>",
        )
        .unwrap();
        let o = Oracle::new(&doc);
        let asc = o
            .eval_query_str("for $p in //p where exists($p/v) order by $p/v return $p/v")
            .unwrap();
        assert_eq!(asc, "<result><v>1</v><v>2</v><v>3</v></result>");
        let desc = o
            .eval_query_str("for $p in //p order by $p/v descending return $p/v")
            .unwrap();
        assert_eq!(desc, "<result><v>3</v><v>2</v><v>1</v></result>");
    }

    #[test]
    fn deep_equal_and_identity() {
        let doc = Document::parse_str(
            "<r><a><x>1</x></a><a><x>1</x></a><b><x>2</x></b></r>",
        )
        .unwrap();
        let o = Oracle::new(&doc);
        let out = o
            .eval_query_str(
                "for $a in //a for $b in //a where deep-equal($a/x, $b/x) and $a isnot $b return <m/>",
            )
            .unwrap();
        assert_eq!(out, "<result><m/><m/></result>");
    }
}
