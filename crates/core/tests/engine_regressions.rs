//! Unit tests pinned to engine bugs found by the differential harness
//! (see `tests/fixtures/diff/` at the workspace root for the original
//! minimized cases and provenance). Each test names the invariant the
//! fix established, so a failure here points at the regressed rule
//! directly instead of via an oracle diff.

use blossom_core::{Engine, Strategy};
use blossom_xml::writer;

const ALL: [Strategy; 7] = [
    Strategy::Auto,
    Strategy::Navigational,
    Strategy::TwigStack,
    Strategy::PathStack,
    Strategy::Pipelined,
    Strategy::BoundedNestedLoop,
    Strategy::NaiveNestedLoop,
];

/// Nothing is before, after, beside, or equal to the document node, so a
/// leading global or sibling axis selects nothing — in every strategy
/// that accepts the query.
#[test]
fn leading_non_vertical_axes_are_empty() {
    let engine = Engine::from_xml("<dblp><book/></dblp>").unwrap();
    for query in [
        "/preceding::dblp",
        "/following::book",
        "/preceding-sibling::dblp",
        "/following-sibling::dblp",
    ] {
        for strategy in ALL {
            if let Ok(nodes) = engine.eval_path_str(query, strategy) {
                assert!(
                    nodes.is_empty(),
                    "{query} under {strategy} selected {} node(s), expected none",
                    nodes.len()
                );
            }
        }
    }
    // Sanity: a leading child/descendant axis still anchors normally.
    assert_eq!(
        engine
            .eval_path_str("/dblp", Strategy::Navigational)
            .unwrap()
            .len(),
        1
    );
}

/// Auto is a complete strategy: when the planner's structural-join pick
/// cannot handle the query shape it must fall back, never surface the
/// specialist's capability error.
#[test]
fn auto_never_leaks_strategy_capability_errors() {
    let engine = Engine::from_xml("<dblp><book/><number/></dblp>").unwrap();
    for query in [
        "//book/following::number",
        "//number/preceding::book",
        "//book/following-sibling::number",
    ] {
        let auto = engine.eval_path_str(query, Strategy::Auto).unwrap_or_else(|e| {
            panic!("Auto must not fail on {query}: {e}");
        });
        let reference = engine
            .eval_path_str(query, Strategy::Navigational)
            .unwrap();
        assert_eq!(auto, reference, "Auto diverged on {query}");
    }
}

/// TwigStack only implements vertical (child/descendant) edges; every
/// other axis must be rejected loudly, not evaluated as parent-child.
#[test]
fn twigstack_rejects_non_vertical_axes() {
    let engine = Engine::from_xml("<a><a><b1/><c1/></a></a>").unwrap();
    let result = engine.eval_path_str("//c1/preceding-sibling::b1", Strategy::TwigStack);
    assert!(
        result.is_err(),
        "TwigStack accepted a preceding-sibling step and returned {:?}",
        result.unwrap()
    );
    // The same query through Auto must still produce the right answer.
    let auto = engine
        .eval_path_str("//c1/preceding-sibling::b1", Strategy::Auto)
        .unwrap();
    assert_eq!(auto.len(), 1);
}

/// FLWOR output under `strategy`, or `None` when the strategy rejects the
/// query as out of shape (allowed for specialists; Auto and Navigational
/// must always answer, so those unwrap at the call sites).
fn query_output(engine: &Engine, query: &str, strategy: Strategy) -> Option<String> {
    match engine.eval_query_str(query, strategy) {
        Ok(doc) => Some(writer::to_string(&doc)),
        Err(_) => {
            assert!(
                !matches!(strategy, Strategy::Auto | Strategy::Navigational),
                "{strategy} must support every query"
            );
            None
        }
    }
}

/// A `let` binds its whole sequence once per tuple: an uncorrelated let
/// must neither multiply the tuple count nor filter tuples when empty.
#[test]
fn uncorrelated_let_binds_sequence_once_per_tuple() {
    let engine = Engine::from_xml(
        "<addresses><address><country_id/></address><address><country_id/></address></addresses>",
    )
    .unwrap();
    let query = "for $v0 in //address let $v2 := //country_id return $v0";
    let expected = query_output(&engine, query, Strategy::Navigational).unwrap();
    assert_eq!(
        expected.matches("<address>").count(),
        2,
        "reference evaluation must emit one result per for-tuple"
    );
    for strategy in ALL {
        if let Some(got) = query_output(&engine, query, strategy) {
            assert_eq!(
                got, expected,
                "{strategy} multiplied or dropped tuples through the let binding"
            );
        }
    }

    // An empty let sequence keeps the tuple alive.
    let query = "for $v0 in //address let $v2 := //missing return $v0";
    let expected = query_output(&engine, query, Strategy::Navigational).unwrap();
    assert_eq!(expected.matches("<address>").count(), 2);
    for strategy in ALL {
        if let Some(got) = query_output(&engine, query, strategy) {
            assert_eq!(got, expected);
        }
    }
}

/// A `path op literal` where-atom over a let variable is an existential
/// test over the whole sequence; it must not be folded into the pattern
/// as a per-match constraint (which would narrow the bound sequence) and
/// must drop the tuple when no node satisfies it.
#[test]
fn where_atom_on_let_variable_is_existential() {
    // No book at all: the single let tuple fails the where clause.
    let engine = Engine::from_xml("<dblp/>").unwrap();
    let query = "let $v1 := //book where $v1/crossref < 1980 return <out>{ $v1/crossref }</out>";
    for strategy in ALL {
        if let Some(out) = query_output(&engine, query, strategy) {
            assert!(
                !out.contains("<out>"),
                "{strategy} emitted a tuple although the where clause fails: {out}"
            );
        }
    }

    // Mixed: the where clause passes, and $v1 still binds *every* book.
    let engine = Engine::from_xml(
        "<dblp><book><crossref>1970</crossref></book><book><crossref>1990</crossref></book></dblp>",
    )
    .unwrap();
    let expected = query_output(&engine, query, Strategy::Navigational).unwrap();
    assert!(expected.contains("1970") && expected.contains("1990"));
    for strategy in ALL {
        if let Some(got) = query_output(&engine, query, strategy) {
            assert_eq!(
                got, expected,
                "{strategy} narrowed the let sequence to the where-satisfying matches"
            );
        }
    }
}
