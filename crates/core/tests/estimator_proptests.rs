//! Property tests for the v2 planner's cardinality estimator
//! (`blossom_core::Estimator`): on arbitrary generated documents the
//! estimates must be *exact* wherever the statistics track the inputs
//! (posting lengths always; containment for frequent-tag pairs) and
//! stay within the trivial structural bounds everywhere else, judged
//! against oracle counts from brute-force ancestor walks.


// Gated: requires the external `proptest` crate. Build with
// `--features proptest` after restoring the dev-dependency (network).
#![cfg(feature = "proptest")]

use blossom_core::{Decomposition, Estimator};
use blossom_flwor::BlossomTree;
use blossom_xml::stats::FREQUENT_TAG_LIMIT;
use blossom_xml::{DocStats, Document};
use blossom_xmlgen::{generate, Dataset};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::parse_path;
use proptest::prelude::*;
use std::collections::HashMap;

fn dataset() -> impl Strategy<Value = Dataset> {
    prop::sample::select(Dataset::all().to_vec())
}

fn name_test(tag: &str) -> NodeTest {
    NodeTest::Name(tag.into())
}

/// The tags whose containment the stats track, recomputed the same way
/// `DocStats::compute` ranks them (count desc, name asc, top K).
fn frequent(stats: &DocStats) -> Vec<String> {
    let mut ranked: Vec<(&String, u32)> =
        stats.tag_counts.iter().map(|(t, &c)| (t, c)).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    ranked.truncate(FREQUENT_TAG_LIMIT);
    ranked.into_iter().map(|(t, _)| t.clone()).collect()
}

/// Oracle: proper-ancestor `(a, d)` pairs, counted the slow way.
fn oracle_pairs(doc: &Document, a: &str, d: &str) -> u64 {
    doc.elements()
        .filter(|&n| doc.tag_name(n) == Some(d))
        .map(|n| doc.ancestors(n).filter(|&x| doc.tag_name(x) == Some(a)).count() as u64)
        .sum()
}

/// Oracle: `a` elements with at least one proper `d` descendant.
fn oracle_ancestors(doc: &Document, a: &str, d: &str) -> u64 {
    doc.elements()
        .filter(|&n| doc.tag_name(n) == Some(a))
        .filter(|&n| doc.descendants(n).any(|c| c != n && doc.tag_name(c) == Some(d)))
        .count() as u64
}

/// Deterministically pick a tag of the document from random bits.
fn pick_tag(stats: &DocStats, bits: u64) -> String {
    let mut tags: Vec<&String> = stats.tag_counts.keys().collect();
    tags.sort();
    tags[(bits % tags.len() as u64) as usize].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Posting-length estimates are exact for every tag that occurs,
    /// zero for one that does not, and the wildcard/text populations
    /// match the stats.
    #[test]
    fn posting_estimates_are_exact((ds, nodes, seed) in (
        dataset(),
        300usize..3_000,
        any::<u64>(),
    )) {
        let doc = generate(ds, nodes, seed);
        let stats = doc.stats();
        let est = Estimator::new(&stats);
        let mut brute: HashMap<&str, u64> = HashMap::new();
        for n in doc.elements() {
            *brute.entry(doc.tag_name(n).expect("element has a tag")).or_insert(0) += 1;
        }
        for (tag, &count) in &brute {
            prop_assert_eq!(est.test_count(&name_test(tag)) as u64, count);
        }
        prop_assert_eq!(est.test_count(&name_test("no-such-tag")) as u64, 0);
        prop_assert_eq!(est.test_count(&NodeTest::Wildcard) as u64, stats.element_count as u64);
        prop_assert_eq!(est.test_count(&NodeTest::Text) as u64, stats.text_count as u64);
    }

    /// `pairs` and `survival` match brute-force ancestor walks exactly
    /// for tracked (frequent) tag pairs, and stay within the trivial
    /// upper bounds for the independence-estimated tail.
    #[test]
    fn containment_estimates_match_oracle((ds, nodes, seed, bits) in (
        dataset(),
        300usize..2_000,
        any::<u64>(),
        any::<u64>(),
    )) {
        let doc = generate(ds, nodes, seed);
        let stats = doc.stats();
        let est = Estimator::new(&stats);
        let freq = frequent(&stats);
        let a = pick_tag(&stats, bits);
        let d = pick_tag(&stats, bits >> 16);
        let test = name_test(&d);

        let pairs = est.pairs(Some(a.as_str()), &test);
        let survival = est.survival(Some(a.as_str()), &test);
        prop_assert!((0.0..=1.0).contains(&survival), "survival {survival} out of range");

        if freq.contains(&a) && freq.contains(&d) {
            prop_assert_eq!(pairs as u64, oracle_pairs(&doc, &a, &d));
            let survivors = survival * f64::from(stats.occurrences(&a));
            let oracle = oracle_ancestors(&doc, &a, &d) as f64;
            prop_assert!(
                (survivors - oracle).abs() < 1e-6 * (oracle + 1.0),
                "survivors {survivors} vs oracle {oracle}"
            );
        } else {
            // Independence estimate: bounded by the cross product.
            let bound =
                f64::from(stats.occurrences(&a)) * f64::from(stats.occurrences(&d));
            prop_assert!(pairs <= bound + 1e-9, "pairs {pairs} above bound {bound}");
        }
    }

    /// Whole-component estimates for `//a//b`: anchors equal the `a`
    /// posting length always; the output cardinality equals the number
    /// of `a` elements with a `b` descendant when both tags are tracked
    /// (±1 for float truncation), and never exceeds the anchors.
    #[test]
    fn component_estimates_match_oracle((ds, nodes, seed, bits) in (
        dataset(),
        300usize..2_000,
        any::<u64>(),
        any::<u64>(),
    )) {
        let doc = generate(ds, nodes, seed);
        let stats = doc.stats();
        let est = Estimator::new(&stats);
        let freq = frequent(&stats);
        let a = pick_tag(&stats, bits);
        let b = pick_tag(&stats, bits >> 16);

        let path = format!("//{a}//{b}");
        let tree = BlossomTree::from_path(&parse_path(&path).unwrap()).unwrap();
        let d = Decomposition::decompose(&tree);
        let comp_of = d.components();
        let c = est.component_costs(&d, &comp_of, 0);

        prop_assert_eq!(c.est_anchors, u64::from(stats.occurrences(&a)));
        prop_assert!(
            c.est_output <= c.est_anchors,
            "output {} above anchors {}", c.est_output, c.est_anchors
        );
        if freq.contains(&a) && freq.contains(&b) {
            let oracle = oracle_ancestors(&doc, &a, &b);
            prop_assert!(
                c.est_output.abs_diff(oracle) <= 1,
                "est_output {} vs oracle {}", c.est_output, oracle
            );
        }
        // Cost floors: every strategy at least touches the anchors.
        prop_assert!(c.bounded >= c.est_anchors);
        prop_assert!(c.naive >= c.est_anchors);
    }
}
