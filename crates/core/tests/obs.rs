//! Integration tests for the observability subsystem: operator counters
//! reflect the skip-join ablation, strategy decisions and fallbacks are
//! recorded faithfully, and tracing never changes a query's result.

use blossom_core::{Engine, EngineOptions, Strategy};
use blossom_xml::writer;

fn engine(xml: &str, skip_joins: bool, trace: bool) -> Engine {
    Engine::with_options(
        blossom_xml::Document::parse_str(xml).unwrap(),
        EngineOptions { threads: 1, skip_joins, trace, ..EngineOptions::default() },
    )
}

/// With skip joins on, the gallop sites report skipped elements on
/// skip-heavy inputs; with them off, `skipped` is exactly zero for every
/// operator (the counter measures gallops only, never linear work).
#[test]
fn gallop_counters_follow_the_skip_joins_switch() {
    // Bounded NLJ: the inner NoK's range probe for each outer `a` region
    // gallops past the four `b`s living under `x`.
    let bnlj_xml = "<r><a><b/></a><x><b/><b/><b/><b/></x><a><b/></a></r>";
    // TwigStack: six childless `a`s close before the first `c` begins, so
    // the root stream leaps over them via the block max-end summary.
    let ts_xml = "<r><a/><a/><a/><a/><a/><a/><a><c/></a></r>";
    // PathStack: four `c`s precede every `a`, an unpushable prefix the
    // inner stream gallops past.
    let ps_xml = "<r><c/><c/><c/><c/><a><c/></a></r>";
    // Pipelined: the right stream skips the three `c`s before the outer
    // `a` region wholesale.
    let pl_xml = "<r><c/><c/><c/><a><c/></a></r>";
    let cases = [
        (bnlj_xml, "//a//b", Strategy::BoundedNestedLoop),
        (ts_xml, "//a//c", Strategy::TwigStack),
        (ps_xml, "//a//c", Strategy::PathStack),
        (pl_xml, "//a[//c]", Strategy::Pipelined),
    ];
    for (xml, query, strategy) in cases {
        let with_skip = engine(xml, true, true);
        let (nodes_skip, trace_skip) = with_skip.eval_path_traced(query, strategy).unwrap();
        assert!(
            trace_skip.totals().skipped > 0,
            "{strategy} on {query}: expected galloped elements, trace {:?}",
            trace_skip.ops
        );

        let without_skip = engine(xml, false, true);
        let (nodes_linear, trace_linear) =
            without_skip.eval_path_traced(query, strategy).unwrap();
        assert_eq!(
            trace_linear.totals().skipped,
            0,
            "{strategy} on {query}: skipped must be 0 with skip_joins off, trace {:?}",
            trace_linear.ops
        );
        assert_eq!(nodes_skip, nodes_linear, "{strategy} on {query}");
    }
}

/// The component-level Pipelined -> naive-NLJ downgrade on a
/// non-descendant cut edge leaves a fallback event in the trace.
#[test]
fn pipelined_downgrade_records_a_fallback_event() {
    let e = engine("<r><a/><b/><b/></r>", true, true);
    let (nodes, trace) = e.eval_path_traced("//a/following::b", Strategy::Pipelined).unwrap();
    assert_eq!(nodes.len(), 2);
    assert!(
        trace.fallbacks.iter().any(|f| {
            f.from == Strategy::Pipelined && f.to == Strategy::NaiveNestedLoop
        }),
        "expected a Pipelined -> NaiveNestedLoop downgrade event, got {:?}",
        trace.fallbacks
    );
}

/// A TwigStack-incompatible axis is recorded as a plan verdict: the
/// planner never resolves Auto to TwigStack for it, and the trace carries
/// `twigstack_compatible == Some(false)` so profiles explain why.
#[test]
fn twigstack_incompatible_axis_recorded_in_plan() {
    let e = engine("<a><a><b1/><c1/></a></a>", true, true);
    let (nodes, trace) =
        e.eval_path_traced("//c1/preceding-sibling::b1", Strategy::Auto).unwrap();
    assert_eq!(nodes.len(), 1);
    assert_eq!(trace.twigstack_compatible, Some(false), "reason: {}", trace.plan_reason);
    assert_ne!(trace.resolved, Strategy::TwigStack);
    // The specialist itself still rejects the query loudly.
    assert!(e.eval_path_str("//c1/preceding-sibling::b1", Strategy::TwigStack).is_err());
}

/// Auto falls back to the navigational evaluator for FLWOR queries
/// outside the BlossomTree subset, and the trace records both the event
/// (with its reason) and the navigational executor.
#[test]
fn auto_fallback_events_fire_for_unsupported_flwor() {
    let e = engine("<bib><book><t>x</t></book><book><t>y</t></book></bib>", true, true);
    // A nested FLWOR in the return clause is outside the BlossomTree
    // subset entirely.
    let (_, trace) = e
        .eval_query_traced(
            "for $a in //book return <o>{ for $b in //t return $b }</o>",
            Strategy::Auto,
        )
        .unwrap();
    assert_eq!(trace.executed, Strategy::Navigational);
    assert!(
        trace.fallbacks.iter().any(|f| f.reason.contains("outside the BlossomTree subset")),
        "fallbacks: {:?}",
        trace.fallbacks
    );

    // A where-atom over a let-bound operand needs per-tuple existential
    // filtering, the other Auto fallback site.
    let e2 = engine("<dblp><book><crossref>1970</crossref></book></dblp>", true, true);
    let (_, trace2) = e2
        .eval_query_traced(
            "let $v1 := //book where $v1/crossref < 1980 return <out>{ $v1/crossref }</out>",
            Strategy::Auto,
        )
        .unwrap();
    assert_eq!(trace2.executed, Strategy::Navigational);
    assert!(!trace2.fallbacks.is_empty(), "expected a recorded fallback event");
}

/// A BlossomTree-supported FLWOR run records tuple-iteration counters.
#[test]
fn flwor_tuple_counters_are_recorded() {
    let e = engine(
        "<bib><book><title>A</title></book><book><title>B</title></book></bib>",
        true,
        true,
    );
    let (_, trace) = e
        .eval_query_traced("for $b in //book return <t>{$b/title}</t>", Strategy::Auto)
        .unwrap();
    let tuples = trace
        .ops
        .iter()
        .find(|o| o.op == "flwor-tuples")
        .unwrap_or_else(|| panic!("no flwor-tuples op in {:?}", trace.ops));
    assert_eq!(tuples.counters.output, 2);
}

/// Tracing is observational only: traced and untraced engines produce
/// byte-identical results for every strategy, on both path and FLWOR
/// queries.
#[test]
fn tracing_never_changes_results() {
    const ALL: [Strategy; 7] = [
        Strategy::Auto,
        Strategy::Navigational,
        Strategy::TwigStack,
        Strategy::PathStack,
        Strategy::Pipelined,
        Strategy::BoundedNestedLoop,
        Strategy::NaiveNestedLoop,
    ];
    let xml = "<bib><book><title>A</title><price>10</price></book>\
               <book><title>B</title><price>20</price></book><note/></bib>";
    let paths = ["//book//title", "//book/title", "//book[//price]", "//bib//note"];
    let flwors = [
        "for $b in //book return <t>{$b/title}</t>",
        "for $b in //book where $b/price > 15 return $b",
    ];
    for strategy in ALL {
        let plain = engine(xml, true, false);
        let traced = engine(xml, true, true);
        for query in paths {
            let want = plain.eval_path_str(query, strategy);
            let got = traced.eval_path_traced(query, strategy);
            match (want, got) {
                (Ok(w), Ok((g, _))) => assert_eq!(g, w, "{strategy} on {query}"),
                (Err(_), Err(_)) => {}
                (w, g) => panic!("{strategy} on {query}: {w:?} vs {:?}", g.map(|x| x.0)),
            }
        }
        for query in flwors {
            let want = plain.eval_query_str(query, strategy).map(|d| writer::to_string(&d));
            let got = traced
                .eval_query_traced(query, strategy)
                .map(|(d, _)| writer::to_string(&d));
            match (want, got) {
                (Ok(w), Ok(g)) => assert_eq!(g, w, "{strategy} on {query}"),
                (Err(_), Err(_)) => {}
                (w, g) => panic!("{strategy} on {query}: {w:?} vs {g:?}"),
            }
        }
    }
}

/// The JSON profile is schema-stable and the render mentions the
/// executed strategy and cache statistics.
#[test]
fn profile_outputs_cover_the_trace() {
    let e = engine("<r><a><b/></a></r>", true, true);
    let (_, trace) = e.eval_path_traced("//a//b", Strategy::Auto).unwrap();
    let json = trace.to_json();
    for key in ["\"blossom_profile\"", "\"operators\"", "\"phases_us\"", "\"cache\""] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let text = trace.render();
    assert!(text.contains("strategy:"), "{text}");
    assert!(text.contains("plan cache:"), "{text}");
}
