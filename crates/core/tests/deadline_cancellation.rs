//! A deadline must be able to interrupt *combinatorially explosive*
//! stages, not just operator boundaries: three uncorrelated `for`
//! bindings form a pure Cartesian product (|a|^3 tuples) that
//! materializes inside the disconnected-component join and the tuple
//! enumeration. Before the cancellation hooks, this query allocated
//! gigabytes irrespective of any deadline — the server's occupier
//! tests hung on exactly this.

use blossom_core::engine::{Engine, EngineError};
use blossom_core::plan::Strategy;
use std::time::{Duration, Instant};

#[test]
fn runaway_cartesian_product_cancels_at_the_deadline() {
    let mut xml = String::from("<r>");
    for i in 0..500 {
        xml.push_str(&format!("<a>{i}</a>"));
    }
    xml.push_str("</r>");
    let mut engine = Engine::from_xml(&xml).unwrap();
    engine.set_deadline(Some(Instant::now() + Duration::from_millis(600)));
    let t0 = Instant::now();
    let out = engine.eval_query_bytes(
        "for $x in //a for $y in //a for $z in //a return <t>{$x}</t>",
        Strategy::Auto,
    );
    let elapsed = t0.elapsed();
    assert!(
        matches!(out, Err(EngineError::Deadline)),
        "expected a deadline abort, got {:?}",
        out.map(|(bytes, _)| bytes.len())
    );
    // Budget 600ms + generous cancellation latency; an uncancellable
    // product runs for minutes (125M NestedLists) before this fires.
    assert!(elapsed < Duration::from_secs(5), "cancellation took {elapsed:?}");
}
