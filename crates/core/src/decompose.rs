//! Decomposing a BlossomTree into interconnected NoK pattern trees
//! (Algorithm 1 of the paper).
//!
//! Tree edges labelled with *local* axes (`/`, `following-sibling`) stay
//! inside a NoK pattern tree; edges labelled with *global* axes (`//`,
//! `following`) are cut and become structural joins. Crossing edges
//! (value / `<<` / `deep-equal` joins from the `where` clause) are carried
//! over with their endpoints re-addressed to `(nok, shape)` positions.

use crate::shape::{Shape, ShapeId};
use blossom_flwor::{BlossomTree, CrossRel};
use blossom_xml::Axis;
use blossom_xpath::pattern::{EdgeMode, PatternNodeId, PatternTree};
use std::sync::Arc;

/// One NoK pattern tree carved out of the BlossomTree.
#[derive(Debug, Clone)]
pub struct NokTree {
    /// The NoK pattern: a fresh [`PatternTree`] whose virtual root has a
    /// single child (local id 1) — the target of the cut edge. All
    /// internal edges are local axes.
    pub pattern: PatternTree,
    /// For each local node id, the originating BlossomTree node id
    /// (`orig[0]` is the virtual root and maps to the BlossomTree root).
    pub orig: Vec<PatternNodeId>,
    /// For each local node id, the shape position when the node is
    /// returning.
    pub shape_of: Vec<Option<ShapeId>>,
}

impl NokTree {
    /// The local node id for an original BlossomTree node, if present.
    pub fn local_of(&self, orig: PatternNodeId) -> Option<PatternNodeId> {
        self.orig
            .iter()
            .position(|&o| o == orig)
            .map(|i| PatternNodeId(i as u16))
    }

    /// The NoK root (always local id 1).
    pub fn root(&self) -> PatternNodeId {
        PatternNodeId(1)
    }
}

/// A structural join edge between two NoK trees, produced by cutting a
/// global-axis tree edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutEdge {
    /// NoK holding the parent endpoint.
    pub parent_nok: usize,
    /// Local id of the parent endpoint inside `parent_nok`.
    pub parent_node: PatternNodeId,
    /// NoK whose root is the child endpoint.
    pub child_nok: usize,
    /// The cut axis (always global: `//` or `following`).
    pub axis: Axis,
    /// Matching mode of the cut edge (`l` ⇒ the join is left-outer).
    pub mode: EdgeMode,
}

/// A crossing-edge join with endpoints re-addressed to NoK + shape ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossJoin {
    /// Left endpoint.
    pub left: (usize, ShapeId),
    /// Right endpoint.
    pub right: (usize, ShapeId),
    /// The relationship.
    pub rel: CrossRel,
}

/// The full decomposition result.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The shared returning-tree shape.
    pub shape: Arc<Shape>,
    /// The NoK pattern trees, in discovery (pre-order) order. NoK 0's
    /// ancestors: roots of the BlossomTree appear before their cut
    /// children.
    pub noks: Vec<NokTree>,
    /// NoKs that hang directly off the BlossomTree super-root, with the
    /// axis connecting them to the document root.
    pub roots: Vec<(usize, Axis)>,
    /// Structural joins from cut tree edges.
    pub cut_edges: Vec<CutEdge>,
    /// Predicate joins from crossing edges.
    pub crossing: Vec<CrossJoin>,
}

impl Decomposition {
    /// Decompose `bt`. This is Algorithm 1: a depth-first traversal that
    /// extends the current NoK along local-axis edges and opens a new NoK
    /// (plus a [`CutEdge`]) at every global-axis edge.
    ///
    /// Both endpoints of every cut edge are marked returning first (the
    /// paper assigns Dewey IDs to join nodes before decomposition,
    /// Section 3.3), so structural joins can project them.
    pub fn decompose(bt: &BlossomTree) -> Decomposition {
        let mut bt = bt.clone();
        // Edges from the super-root are not joins (anchors are filtered by
        // the entry axis instead), so only true cut edges get marked.
        let cut_endpoint_pairs: Vec<(PatternNodeId, PatternNodeId)> = bt
            .pattern
            .ids()
            .skip(1)
            .filter(|&id| !bt.pattern.node(id).axis.is_local())
            .filter_map(|id| match bt.pattern.node(id).parent {
                Some(p) if p != PatternNodeId::ROOT => Some((p, id)),
                _ => None,
            })
            .collect();
        for (parent, child) in cut_endpoint_pairs {
            bt.pattern.set_returning(parent, true);
            bt.pattern.set_returning(child, true);
        }
        bt.reassign_deweys();
        let bt = &bt;
        let shape = Shape::from_blossom(bt);
        let mut noks: Vec<NokTree> = Vec::new();
        let mut roots = Vec::new();
        let mut cut_edges = Vec::new();
        // Pending NoK seeds: (orig node, Some((parent nok, parent local)) | None for roots).
        // Use a queue so NoKs are numbered in discovery order.
        struct Seed {
            orig: PatternNodeId,
            parent: Option<(usize, PatternNodeId)>,
        }
        let mut seeds: std::collections::VecDeque<Seed> = bt
            .pattern
            .node(PatternNodeId::ROOT)
            .children
            .iter()
            .map(|&c| Seed { orig: c, parent: None })
            .collect();

        while let Some(seed) = seeds.pop_front() {
            let nok_idx = noks.len();
            let seed_node = bt.pattern.node(seed.orig);
            match seed.parent {
                None => roots.push((nok_idx, seed_node.axis)),
                Some((parent_nok, parent_node)) => cut_edges.push(CutEdge {
                    parent_nok,
                    parent_node,
                    child_nok: nok_idx,
                    axis: seed_node.axis,
                    mode: seed_node.mode,
                }),
            }
            // Build the NoK by DFS along local edges.
            let mut pattern = PatternTree::new();
            let mut orig = vec![PatternNodeId::ROOT];
            let mut shape_of: Vec<Option<ShapeId>> = vec![None];
            // (orig node, local parent) — the root enters with the virtual
            // root as parent and a Child placeholder axis (the real entry
            // axis lives on the cut edge / roots list).
            let mut stack = vec![(seed.orig, PatternNodeId::ROOT, Axis::Child)];
            while let Some((o, local_parent, axis)) = stack.pop() {
                let on = bt.pattern.node(o);
                let local =
                    pattern.add_node(local_parent, axis, on.mode, on.test.clone());
                if let Some(v) = &on.value {
                    pattern.set_value(local, v.clone());
                }
                if on.returning {
                    pattern.set_returning(local, true);
                }
                for var in &on.vars {
                    pattern.set_var(local, var);
                }
                orig.push(o);
                shape_of.push(shape.by_pattern(o));
                debug_assert_eq!(orig.len() - 1, local.index());
                // Children: local axes stay, global axes seed new NoKs.
                // Reverse to keep pattern order on the stack.
                for &c in on.children.iter().rev() {
                    let cn = bt.pattern.node(c);
                    if cn.axis.is_local() {
                        stack.push((c, local, cn.axis));
                    } else {
                        seeds.push_back(Seed { orig: c, parent: Some((nok_idx, local)) });
                    }
                }
            }
            noks.push(NokTree { pattern, orig, shape_of });
        }

        // Fix up cut edges seeded before their parent NoK existed: seeds
        // reference (nok_idx, local) captured at push time, which is valid
        // because parents are always created before their seeds are popped.

        // Crossing edges: locate each endpoint's NoK.
        let locate = |orig: PatternNodeId| -> (usize, ShapeId) {
            for (i, nok) in noks.iter().enumerate() {
                if let Some(local) = nok.local_of(orig) {
                    let sid = nok.shape_of[local.index()]
                        .expect("crossing endpoints are returning");
                    return (i, sid);
                }
            }
            unreachable!("crossing endpoint not found in any NoK")
        };
        let crossing = bt
            .crossing
            .iter()
            .map(|c| CrossJoin { left: locate(c.left), right: locate(c.right), rel: c.rel })
            .collect();

        Decomposition { shape, noks, roots, cut_edges, crossing }
    }

    /// Are all cut edges `//`-joins with mandatory mode (the prerequisite
    /// for a fully pipelined plan, Theorem 2)?
    pub fn pipelinable(&self) -> bool {
        self.cut_edges
            .iter()
            .all(|e| e.axis == Axis::Descendant && e.mode == EdgeMode::Mandatory)
    }

    /// Component id per NoK: NoK `roots[i].0` and everything reachable
    /// from it through cut edges belongs to component `i`. Cut edges are
    /// in discovery order, so every parent's component is resolved
    /// before its children's.
    pub fn components(&self) -> Vec<usize> {
        let mut comp_of = vec![usize::MAX; self.noks.len()];
        for (ci, &(nok, _)) in self.roots.iter().enumerate() {
            comp_of[nok] = ci;
        }
        for cut in &self.cut_edges {
            comp_of[cut.child_nok] = comp_of[cut.parent_nok];
        }
        comp_of
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_flwor::{parse_query, BlossomTree, Expr};
    use blossom_xpath::ast::NodeTest;
    use blossom_xpath::parse_path;

    fn decompose_path(path: &str) -> Decomposition {
        let p = parse_path(path).unwrap();
        Decomposition::decompose(&BlossomTree::from_path(&p).unwrap())
    }

    fn decompose_flwor(q: &str) -> Decomposition {
        let q = parse_query(q).unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        Decomposition::decompose(&BlossomTree::from_flwor(&f).unwrap())
    }

    #[test]
    fn single_nok_for_local_only_path() {
        let d = decompose_path("/a/b[c]/d");
        assert_eq!(d.noks.len(), 1);
        assert!(d.cut_edges.is_empty());
        assert_eq!(d.roots, vec![(0, Axis::Child)]);
        assert!(d.noks[0].pattern.is_nok());
        // a, b, c, d + virtual root.
        assert_eq!(d.noks[0].pattern.len(), 5);
    }

    #[test]
    fn paper_section21_example() {
        // doc("bib.xml")/book[//author="Smith"]/title decomposes into
        // book/title and author[.="Smith"] NoKs (Section 2.1).
        let d = decompose_path(r#"/book[//author="Smith"]/title"#);
        assert_eq!(d.noks.len(), 2);
        assert_eq!(d.cut_edges.len(), 1);
        let cut = &d.cut_edges[0];
        assert_eq!(cut.axis, Axis::Descendant);
        assert_eq!(cut.parent_nok, 0);
        assert_eq!(cut.child_nok, 1);
        // Parent endpoint is the book node.
        let parent_local = d.noks[0].pattern.node(cut.parent_node);
        assert_eq!(parent_local.test, NodeTest::Name("book".into()));
        // Child NoK root is author with the value constraint.
        let author = d.noks[1].pattern.node(d.noks[1].root());
        assert_eq!(author.test, NodeTest::Name("author".into()));
        assert!(author.value.is_some());
        assert!(d.pipelinable());
    }

    #[test]
    fn chain_of_descendants() {
        let d = decompose_path("//a//b//c");
        assert_eq!(d.noks.len(), 3);
        assert_eq!(d.cut_edges.len(), 2);
        assert_eq!(d.roots, vec![(0, Axis::Descendant)]);
        // Discovery order: a, b, c.
        let tags: Vec<_> = d
            .noks
            .iter()
            .map(|n| format!("{}", n.pattern.node(n.root()).test))
            .collect();
        assert_eq!(tags, vec!["a", "b", "c"]);
        assert!(d.pipelinable());
    }

    #[test]
    fn branching_query_q4_style() {
        // //a/b[//c][//d][//e] — NoK(a/b) + three descendant NoKs.
        let d = decompose_path("//a/b[//c][//d][//e]");
        assert_eq!(d.noks.len(), 4);
        assert_eq!(d.cut_edges.len(), 3);
        // All three cuts hang off the same parent node (b in NoK 0).
        let parents: Vec<_> =
            d.cut_edges.iter().map(|e| (e.parent_nok, e.parent_node)).collect();
        assert!(parents.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(d.noks[0].pattern.len(), 3); // root + a + b
    }

    #[test]
    fn example1_decomposition() {
        let d = decompose_flwor(
            r#"for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
               let $aut1 := $book1/author let $aut2 := $book2/author
               where $book1 << $book2
                 and not($book1/title = $book2/title)
                 and deep-equal($aut1, $aut2)
               return <p>{ $book1/title }{ $book2/title }</p>"#,
        );
        // Two NoKs (book,(author,title)) with no structural cut edges —
        // both are roots; three crossing joins.
        assert_eq!(d.noks.len(), 2);
        assert!(d.cut_edges.is_empty());
        assert_eq!(d.roots.len(), 2);
        assert_eq!(d.crossing.len(), 3);
        for nok in &d.noks {
            assert_eq!(nok.pattern.len(), 4); // root + book + author + title
            assert!(nok.pattern.is_nok());
        }
        // Crossing endpoints live in different NoKs.
        for c in &d.crossing {
            assert_ne!(c.left.0, c.right.0);
        }
        // << is between the two book blossoms.
        let before = d
            .crossing
            .iter()
            .find(|c| c.rel == CrossRel::Before)
            .unwrap();
        let l_shape = d.shape.node(before.left.1);
        assert_eq!(l_shape.vars, vec!["book1".to_string()]);
    }

    #[test]
    fn optional_cut_edge_mode() {
        // let $a := $b//x makes the cut edge optional.
        let d = decompose_flwor("for $b in //book let $a := $b//x return $a");
        assert_eq!(d.noks.len(), 2); // the book NoK (a root) and the x NoK
        assert_eq!(d.roots.len(), 1);
        assert_eq!(d.cut_edges.len(), 1);
        assert_eq!(d.cut_edges[0].mode, EdgeMode::Optional);
        assert!(!d.pipelinable());
    }

    #[test]
    fn shape_mapping_is_consistent() {
        let d = decompose_path("//a[//b]//c");
        for nok in &d.noks {
            for id in nok.pattern.ids().skip(1) {
                let returning = nok.pattern.node(id).returning;
                assert_eq!(nok.shape_of[id.index()].is_some(), returning);
            }
        }
        // c is returning in the query; a and b were additionally marked as
        // join endpoints of the two cut edges.
        let total_shape_positions: usize = d
            .noks
            .iter()
            .flat_map(|n| n.shape_of.iter())
            .filter(|s| s.is_some())
            .count();
        assert_eq!(total_shape_positions, 3);
    }

    #[test]
    fn components_partition_noks_by_root() {
        let d = decompose_flwor(
            "for $a in //x//y, $b in //z return <p>{$a}{$b}</p>",
        );
        let comp = d.components();
        assert_eq!(d.roots.len(), 2);
        assert_eq!(comp.len(), d.noks.len());
        assert_eq!(comp[d.roots[0].0], 0);
        assert_eq!(comp[d.roots[1].0], 1);
        // Cut children inherit their parent's component.
        for cut in &d.cut_edges {
            assert_eq!(comp[cut.parent_nok], comp[cut.child_nok]);
        }
        assert!(comp.iter().all(|&c| c != usize::MAX));
    }

    #[test]
    fn local_of_roundtrip() {
        let d = decompose_path("//a/b[c]//d");
        for nok in &d.noks {
            for (i, &o) in nok.orig.iter().enumerate().skip(1) {
                assert_eq!(nok.local_of(o), Some(PatternNodeId(i as u16)));
            }
        }
    }
}
